//! Offline stand-in for the `rand_distr` crate.
//!
//! Supplies the one distribution this workspace samples — [`Normal`] —
//! behind the upstream [`Distribution`] trait. Sampling uses Box-Muller
//! (two uniform draws per sample, the second discarded), which keeps the
//! generator state advance deterministic and state-free: cloning a
//! `Normal` never carries cached values, so identical seeds always
//! produce identical streams.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};

/// A sampleable distribution (`rand_distr::Distribution`).
pub trait Distribution<T> {
    /// Draws one value using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Normal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or not finite.
    BadVariance,
    /// The mean was not finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => f.write_str("standard deviation is not finite and >= 0"),
            NormalError::MeanTooSmall => f.write_str("mean is not finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev^2)`.
    ///
    /// # Errors
    ///
    /// Fails when `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller; u1 is kept strictly positive so ln() stays finite.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_close() {
        let n = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn negative_std_dev_is_rejected() {
        assert_eq!(Normal::new(0.0, -1.0), Err(NormalError::BadVariance));
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let n = Normal::new(0.0, 1.0).unwrap();
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(n.sample(&mut a).to_bits(), n.sample(&mut b).to_bits());
        }
    }
}
