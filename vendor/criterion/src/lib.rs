//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `Criterion` / `Bencher` API surface, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros used by this workspace's
//! benches (all declared with `harness = false`). Instead of criterion's
//! statistical machinery, each benchmark is calibrated to a target wall
//! time and reported as a mean ns/iter on stdout.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
///
/// Uses the `read_volatile` trick rather than `std::hint::black_box`
/// so the crate stays warning-free on older toolchains too.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Hands the benchmark body a timing loop (`criterion::Bencher`).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark driver (`criterion::Criterion`).
pub struct Criterion {
    /// Wall-clock budget each benchmark's measurement loop aims for.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Sets the measurement budget per benchmark (chainable, like upstream).
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Runs one benchmark: calibrates an iteration count to the
    /// measurement budget, measures, and prints the mean time per
    /// iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Calibration: grow the iteration count until the routine runs
        // long enough to time meaningfully.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 30 {
                break b.elapsed.as_secs_f64() / iters as f64;
            }
            iters = iters.saturating_mul(8);
        };

        // Measurement: one pass sized to the time budget.
        let target = self.measurement_time.as_secs_f64();
        let iters = ((target / per_iter.max(1e-12)) as u64).clamp(1, 1 << 32);
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_secs_f64() * 1e9 / iters as f64;

        println!("{id:<40} {:>12}/iter ({} iterations)", format_ns(ns), iters);
        self
    }

    /// Accepted for API compatibility; configuration comes from the
    /// group definition in this stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Upstream prints a summary here; the stand-in prints per-bench lines
    /// as it goes, so this is a no-op kept for `criterion_main!`.
    pub fn final_summary(&self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group (`criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point (`criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial", |b| b.iter(|| black_box(2u64).wrapping_mul(3)));
    }

    criterion_group!(group, trivial);

    #[test]
    fn group_runs() {
        group();
    }

    #[test]
    fn bench_function_reports() {
        Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .bench_function("noop", |b| b.iter(|| black_box(1)));
    }
}
