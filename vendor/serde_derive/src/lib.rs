//! Offline stand-in for the `serde_derive` crate.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually declares — non-generic structs with
//! named fields, tuple structs, and enums whose variants are unit,
//! tuple, or struct-like — without `syn`/`quote` (unavailable offline).
//! The token stream is parsed by hand and the impl is emitted as a
//! string, reproducing upstream serde's default externally tagged
//! representation: unit variants as bare strings, data variants as
//! single-key objects, newtype structs as their inner value.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("serde_derive emitted invalid Rust")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("serde_derive emitted invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected a type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected an enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Advances past attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // '#' + [...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names from the body of a braced struct or struct variant.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Skip `:` and the type, up to a comma outside angle brackets.
        skip_past_comma(&tokens, &mut i);
    }
    fields
}

/// Number of fields in a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma does not add a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

/// Advances past the next top-level comma (angle brackets tracked so
/// commas inside `Map<K, V>` types do not terminate early).
fn skip_past_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional explicit discriminant, then the comma.
        skip_past_comma(&tokens, &mut i);
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        // Newtype structs serialize transparently, like upstream serde.
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__obj, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "let __obj = __value.as_object()\
                     .ok_or_else(|| ::serde::Error::expected(\"struct {name}\", __value))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(\
                             __items.get({i}).ok_or_else(|| \
                                 ::serde::Error::custom(\"tuple struct {name} too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "let ::serde::Value::Array(__items) = __value else {{\n\
                     return ::std::result::Result::Err(\
                         ::serde::Error::expected(\"tuple struct {name}\", __value));\n\
                 }};\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vn} => \
                     ::serde::Value::String(::std::string::String::from(\"{vn}\"))"
                ),
                Fields::Tuple(1) => format!(
                    "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::to_value(__f0))])"
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!(
                        "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Array(::std::vec![{}]))])",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let binds = fs.join(", ");
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(::std::vec![{}]))])",
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {} }}\n\
             }}\n\
         }}",
        arms.join(",\n")
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| {
            let vn = &v.name;
            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn})")
        })
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => None,
                Fields::Tuple(1) => Some(format!(
                    "\"{vn}\" => ::std::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_value(__inner)?))"
                )),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_value(\
                                     __items.get({i}).ok_or_else(|| ::serde::Error::custom(\
                                         \"variant {name}::{vn} too short\"))?)?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                             let ::serde::Value::Array(__items) = __inner else {{\n\
                                 return ::std::result::Result::Err(::serde::Error::expected(\
                                     \"variant {name}::{vn}\", __inner));\n\
                             }};\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n\
                         }}",
                        inits.join(", ")
                    ))
                }
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::__field(__obj, \"{f}\", \"{name}::{vn}\")?")
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                             let __obj = __inner.as_object().ok_or_else(|| \
                                 ::serde::Error::expected(\"variant {name}::{vn}\", __inner))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                         }}",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();

    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __value {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__tag, __inner) = &__pairs[0];\n\
                         match __tag.as_str() {{\n\
                             {data}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(\
                         ::serde::Error::expected(\"enum {name}\", __other)),\n\
                 }}\n\
             }}\n\
         }}",
        unit = if unit_arms.is_empty() {
            String::new()
        } else {
            format!("{},", unit_arms.join(",\n"))
        },
        data = if data_arms.is_empty() {
            String::new()
        } else {
            format!("{},", data_arms.join(",\n"))
        },
    )
}
