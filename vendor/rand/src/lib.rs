//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of `rand`'s API it actually
//! uses: [`Rng`], [`SeedableRng`], and [`rngs::StdRng`]. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic across
//! platforms and releases, which is exactly the property the experiment
//! harness's reproducibility guarantee rests on. The streams differ from
//! upstream `rand`'s ChaCha12-based `StdRng`, but nothing in this
//! workspace depends on upstream's exact streams, only on seed-stable
//! determinism.

#![forbid(unsafe_code)]

pub mod rngs {
    //! Concrete generator types, mirroring `rand::rngs`.

    /// A deterministic pseudo-random generator (xoshiro256**).
    ///
    /// Drop-in for `rand::rngs::StdRng` within this workspace: same name,
    /// same constructors, deterministic for a given seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            StdRng::next_u64(self)
        }
    }

    impl crate::SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

/// SplitMix64, used to expand `u64` seeds into generator state.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The raw-output half of the generator interface (`rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator (`rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed;

    /// Builds the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it via SplitMix64
    /// (same scheme upstream `rand` documents for `seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self
    where
        Self: SeedableRng<Seed = [u8; 32]>,
    {
        let mut state = seed;
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        Self::from_seed(bytes)
    }
}

/// Types `Rng::gen_range` can produce over range arguments.
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                let span = (high as i128 - low as i128) as u128;
                // Debiased multiply-shift (Lemire); span is far below 2^64
                // for every call in this workspace, so one draw suffices.
                let draw = rng.next_u64() as u128;
                low.wrapping_add(((draw * span) >> 64) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low must be <= high");
                if low == high {
                    return low;
                }
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = rng.next_u64() as u128;
                low.wrapping_add(((draw * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = low + (high - low) * unit;
                // Floating-point rounding can land exactly on `high`.
                if v >= high { <$t>::min(low.max(v), high - (high - low) * 1e-16) } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low must be <= high");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + (high - low) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (`rand::distributions::Standard`-style).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing generator interface (`rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A value of `T` drawn from its standard distribution.
    #[allow(clippy::should_implement_trait)] // mirrors the upstream name
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
