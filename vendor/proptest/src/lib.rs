//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, ranges
//! and tuples as strategies, `prop::sample::select`,
//! `prop::collection::vec`, [`any`], and the `prop_assert*` /
//! `prop_assume!` macros. Differences from upstream: cases are sampled
//! from a seed derived deterministically from the test name (fully
//! reproducible runs), and failing cases are reported without shrinking.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a property test case ends early.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*` failed; the test fails with this message.
    Fail(String),
}

/// The `Result` alias property-test bodies are wrapped in.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration (`proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test inputs (`proptest::strategy::Strategy`).
///
/// Upstream strategies produce shrinkable value trees; this stand-in
/// samples plain values.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Types with a canonical "anything" strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The strategy behind [`any`] for primitives.
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn sample_value(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive {
            _marker: std::marker::PhantomData,
        }
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;
    fn sample_value(&self, rng: &mut StdRng) -> f64 {
        // Finite floats over a wide symmetric range.
        rng.gen_range(-1e12..1e12)
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive {
            _marker: std::marker::PhantomData,
        }
    }
}

/// The canonical strategy for `T` (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod sample {
    //! `proptest::sample`: choosing among explicit values.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// The strategy returned by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample_value(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// Uniformly selects one of `options`.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

pub mod collection {
    //! `proptest::collection`: container strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Admissible length specifications for [`vec`].
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The `prop::` module path used in test files (`use proptest::prelude::*`
/// brings `prop` in scope).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Derives the per-test RNG seed from the test's name, so every property
/// test is deterministic run-to-run yet decorrelated from its siblings.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs `cases` samples of a property body (the engine behind
/// [`proptest!`]; not part of upstream's public API).
pub fn run_property<F: FnMut(&mut StdRng) -> TestCaseResult>(
    name: &str,
    config: &ProptestConfig,
    mut body: F,
) {
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    let mut ran = 0u32;
    let mut rejected = 0u32;
    while ran < config.cases {
        match body(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < config.cases.saturating_mul(64).max(1024),
                    "property `{name}`: too many prop_assume! rejections \
                     ({rejected} rejects for {ran} accepted cases)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {ran}: {msg}")
            }
        }
    }
}

/// Declares property tests (`proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::run_property(stringify!($name), &__config, |__rng| {
                    $(let $pat = $crate::Strategy::sample_value(&$strategy, __rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// `prop_assert!`: fails the current case (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!`: equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// `prop_assert_ne!`: inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// `prop_assume!`: skips the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.5..=2.5f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..=2.5).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            (a, b) in (0u64..100, 0u64..100).prop_map(|(x, y)| (x.min(y), x.max(y))),
            v in prop::collection::vec(any::<bool>(), 1..8),
        ) {
            prop_assert!(a <= b);
            prop_assert!(!v.is_empty() && v.len() < 8);
        }

        #[test]
        fn select_draws_from_options(x in prop::sample::select(vec![1, 2, 3])) {
            prop_assert!([1, 2, 3].contains(&x));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
    }
}
