//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of serde it relies on: `#[derive(Serialize,
//! Deserialize)]` on plain (non-generic) structs and enums, and the
//! `serde_json` functions layered on top. Instead of upstream's
//! visitor-based architecture, this stand-in routes everything through a
//! JSON-shaped [`Value`] tree: [`Serialize`] renders a value into the
//! tree, [`Deserialize`] reads it back. The derive macros (re-exported
//! from the companion `serde_derive` crate) emit the same externally
//! tagged representation upstream serde uses by default, so JSON written
//! by earlier builds keeps round-tripping.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped tree: the interchange format between [`Serialize`],
/// [`Deserialize`], and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A negative integer (non-negative integers parse as [`Value::UInt`]).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A number with a fractional part or exponent.
    Float(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// A short label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) | Value::UInt(_) => "an integer",
            Value::Float(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// "expected X, found Y" for a mismatched value shape.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error(format!("expected {what}, found {}", found.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`] tree (`serde::Serialize`).
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree (`serde::Deserialize`).
pub trait Deserialize: Sized {
    /// Reads `Self` out of the tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree does not encode a `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up a struct field by name in an object (used by the derive).
///
/// # Errors
///
/// Returns an [`Error`] when the field is missing or mistyped.
pub fn __field<T: Deserialize>(obj: &[(String, Value)], name: &str, ty: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| Error(format!("field `{name}` of `{ty}`: {e}")))
        }
        None => Err(Error(format!("missing field `{name}` of `{ty}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("a boolean", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => Ok(*u),
                    Value::Int(i) if *i >= 0 => Ok(*i as u64),
                    other => Err(Error::expected("an unsigned integer", other)),
                }?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} overflows {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::Int(i) => Ok(*i),
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} overflows i64"))),
                    other => Err(Error::expected("an integer", other)),
                }?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} overflows {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::Null => Ok(<$t>::NAN), // serde_json writes NaN/inf as null
                    other => Err(Error::expected("a number", other)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("a string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::expected("a one-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("an array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected an array of {N} elements, found {n}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let tuple = ($(
                            $name::from_value(
                                it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                            )?,
                        )+);
                        if it.next().is_some() {
                            return Err(Error::custom("tuple too long"));
                        }
                        Ok(tuple)
                    }
                    other => Err(Error::expected("an array (tuple)", other)),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys must render to JSON object keys (strings).
pub trait MapKey: Sized {
    /// The string form of the key.
    fn to_key(&self) -> String;
    /// Parses the key back from its string form.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when `key` does not encode `Self`.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::custom(format!("bad integer key `{key}`")))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Serialized enums whose unit form is a bare string can key maps, the
/// way upstream serde allows string-like enum keys.
impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("an object (map)", other)),
        }
    }
}

impl<K: MapKey, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, matching upstream's BTreeMap-like
        // ordering guarantees closely enough for tests and diffs.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("an object (map)", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
