//! Offline stand-in for the `serde_json` crate.
//!
//! Provides `to_string`, `to_string_pretty`, `to_vec`, and `from_str`
//! over the vendored `serde`'s [`Value`] model. Output matches upstream
//! serde_json's conventions: floats always carry a fractional part or
//! exponent (`1.0`, not `1`), non-finite floats render as `null`, and
//! floats print in Rust's shortest round-trip form.

#![forbid(unsafe_code)]

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON encoding or decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the value model this workspace uses; the `Result`
/// mirrors upstream's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
///
/// # Errors
///
/// Infallible for the value model this workspace uses.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Serializes `value` to JSON bytes.
///
/// # Errors
///
/// Infallible for the value model this workspace uses.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a `T` from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_value(&value).map_err(Error::from)
}

/// Deserializes a `T` from JSON bytes.
///
/// # Errors
///
/// Returns an [`Error`] on invalid UTF-8, malformed JSON, or a shape
/// mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // Upstream serde_json serializes NaN and infinities as null.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Keep the number recognizably a float, as upstream does (`1.0`).
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest run without escapes or quotes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    s.push(self.parse_escape()?);
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char, Error> {
        let c = self
            .peek()
            .ok_or_else(|| Error("unterminated escape".into()))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b't' => '\t',
            b'r' => '\r',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'u' => {
                let hi = self.parse_hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: expect \uXXXX for the low half.
                    if self.bytes.get(self.pos) == Some(&b'\\')
                        && self.bytes.get(self.pos + 1) == Some(&b'u')
                    {
                        self.pos += 2;
                        let lo = self.parse_hex4()?;
                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                    } else {
                        return Err(Error("lone leading surrogate".into()));
                    }
                } else {
                    hi
                };
                char::from_u32(code)
                    .ok_or_else(|| Error(format!("invalid escape code point {code:#x}")))?
            }
            other => return Err(Error(format!("invalid escape `\\{}`", other as char))),
        })
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error("bad \\u escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v: Vec<f64> = from_str("[1.5, 2.0, -3.25e2]").unwrap();
        assert_eq!(v, vec![1.5, 2.0, -325.0]);
        assert_eq!(to_string(&v).unwrap(), "[1.5,2.0,-325.0]");
        let s: String = from_str(r#""a\nbA""#).unwrap();
        assert_eq!(s, "a\nbA");
        let opt: Option<u32> = from_str("null").unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn floats_keep_a_fractional_marker() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn pretty_printing_indents() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
    }
}
