//! Payload transfer costs: the latency and energy of one offloaded
//! round-trip, per the paper's eq. (4).

use serde::{Deserialize, Serialize};

use crate::link::LinkModel;
use crate::rssi::Rssi;

/// The cost of moving one inference's input out and its output back over a
/// wireless link, exclusive of remote compute time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// Transmit (uplink) time in milliseconds (`t_TX`).
    pub tx_ms: f64,
    /// Receive (downlink) time in milliseconds (`t_RX`).
    pub rx_ms: f64,
    /// Link round-trip/protocol time in milliseconds.
    pub rtt_ms: f64,
    /// Radio energy while transmitting, in millijoules (`P_TX^S · t_TX`).
    pub tx_energy_mj: f64,
    /// Radio energy while receiving, in millijoules (`P_RX^S · t_RX`).
    pub rx_energy_mj: f64,
    /// Fixed radio wake/association energy, in millijoules.
    pub wake_energy_mj: f64,
    /// Fixed radio wake time, in milliseconds.
    pub wake_ms: f64,
    /// Extra radio power while waiting for the remote result, in watts.
    pub wait_power_w: f64,
}

impl Transfer {
    /// Computes the transfer cost of a round-trip carrying `input_bytes`
    /// up and `output_bytes` down at signal strength `rssi`.
    ///
    /// # Example
    ///
    /// ```
    /// use autoscale_net::{LinkKind, LinkModel, Rssi, Transfer};
    /// let link = LinkModel::for_kind(LinkKind::Wlan);
    /// let t = Transfer::compute(&link, 64 * 1024, 4 * 1024, Rssi::STRONG);
    /// assert!(t.tx_ms > t.rx_ms); // uplink carries the big payload
    /// ```
    pub fn compute(link: &LinkModel, input_bytes: u64, output_bytes: u64, rssi: Rssi) -> Self {
        let tx_ms = link.transfer_ms(input_bytes, rssi);
        let rx_ms = link.transfer_ms(output_bytes, rssi);
        Transfer {
            tx_ms,
            rx_ms,
            rtt_ms: link.rtt_ms(),
            tx_energy_mj: link.tx_power_w(rssi) * tx_ms,
            rx_energy_mj: link.rx_power_w(rssi) * rx_ms,
            wake_energy_mj: link.wake_energy_mj(),
            wake_ms: link.wake_ms(),
            wait_power_w: link.wait_power_w(),
        }
    }

    /// Total wire time (radio wake, both directions, protocol RTT), in
    /// milliseconds.
    pub fn wire_ms(&self) -> f64 {
        self.wake_ms + self.tx_ms + self.rx_ms + self.rtt_ms
    }

    /// Radio energy: the wake ramp plus both transfer directions, in
    /// millijoules. The idle-wait term of eq. (4) is added by the
    /// simulator, which knows the remote compute time.
    pub fn radio_energy_mj(&self) -> f64 {
        self.wake_energy_mj + self.tx_energy_mj + self.rx_energy_mj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkKind;

    #[test]
    fn weak_signal_costs_more_time_and_energy() {
        let link = LinkModel::for_kind(LinkKind::Wlan);
        let strong = Transfer::compute(&link, 64 * 1024, 4 * 1024, Rssi::STRONG);
        let weak = Transfer::compute(&link, 64 * 1024, 4 * 1024, Rssi::WEAK);
        assert!(weak.wire_ms() > 4.0 * strong.wire_ms());
        assert!(weak.radio_energy_mj() > 4.0 * strong.radio_energy_mj());
    }

    #[test]
    fn wire_time_includes_rtt_and_wake() {
        let link = LinkModel::for_kind(LinkKind::Wlan);
        let t = Transfer::compute(&link, 0, 0, Rssi::STRONG);
        // Zero payload still pays the wake ramp and protocol round trip.
        assert!((t.wire_ms() - link.rtt_ms() - link.wake_ms()).abs() < 1e-9);
        assert!((t.radio_energy_mj() - link.wake_energy_mj()).abs() < 1e-9);
    }

    #[test]
    fn tiny_payloads_make_offload_cheap() {
        // MobileBERT's sentence payload vs a camera frame: the wire cost
        // difference behind "heavy NNs favour the cloud".
        let link = LinkModel::for_kind(LinkKind::Wlan);
        let text = Transfer::compute(&link, 2 * 1024, 2 * 1024, Rssi::STRONG);
        let image = Transfer::compute(&link, 64 * 1024, 4 * 1024, Rssi::STRONG);
        assert!(
            text.radio_energy_mj() - text.wake_energy_mj
                < (image.radio_energy_mj() - image.wake_energy_mj) / 5.0
        );
    }

    #[test]
    fn p2p_round_trip_is_quicker_at_strength() {
        let p2p = LinkModel::for_kind(LinkKind::PeerToPeer);
        let wlan = LinkModel::for_kind(LinkKind::Wlan);
        let a = Transfer::compute(&p2p, 64 * 1024, 4 * 1024, Rssi::STRONG);
        let b = Transfer::compute(&wlan, 64 * 1024, 4 * 1024, Rssi::STRONG);
        assert!(a.wire_ms() < b.wire_ms());
    }
}
