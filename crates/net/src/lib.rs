//! Wireless network models for the AutoScale reproduction.
//!
//! Offloading an inference to the cloud (over a wireless LAN) or to a
//! locally connected edge device (over a Wi-Fi Direct peer-to-peer link)
//! costs transmission latency and energy that depend strongly on signal
//! strength: "the data transmission latency and energy increase
//! exponentially at weak signal strength" (paper Section I, citing \[19\]
//! and \[61\]), and 43% of real-world data is transmitted under weak signal.
//!
//! This crate models:
//!
//! * [`Rssi`] — received signal strength with the paper's Table I
//!   regular/weak bucketing at −80 dBm;
//! * [`LinkModel`] — an RSSI→data-rate curve (exponential fall-off), the
//!   RSSI-dependent transmit/receive powers of the paper's eq. (4), and a
//!   fixed round-trip time;
//! * [`Transfer`] — the latency/energy cost of moving a payload;
//! * [`FailedTransfer`] — the cost of an offload attempt that *fails*
//!   (link dropout or stalled transfer), which resilience policies
//!   charge back to the request;
//! * [`SignalProcess`] — fixed or Gaussian-varying signal strength (the
//!   paper emulates random signal with a Gaussian distribution, Section
//!   V-B).
//!
//! Latencies are in **milliseconds**, energies in **millijoules**, powers
//! in **watts**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod outage;
pub mod process;
pub mod rssi;
pub mod transfer;

pub use link::{LinkKind, LinkModel};
pub use outage::{FailedTransfer, OutageKind};
pub use process::SignalProcess;
pub use rssi::{Rssi, SignalBucket};
pub use transfer::Transfer;
