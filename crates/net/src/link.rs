//! Link models: data rate, transmit/receive power, and round-trip time as
//! functions of signal strength.

use serde::{Deserialize, Serialize};

use crate::rssi::Rssi;

/// The two wireless link types of the paper's testbed (Table I rows
/// `S_RSSI_W` and `S_RSSI_P`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LinkKind {
    /// Wireless LAN to an access point and onward to the cloud
    /// (Wi-Fi / LTE / 5G in the paper).
    Wlan,
    /// Peer-to-peer link to the locally connected edge device
    /// (Wi-Fi Direct / Bluetooth in the paper).
    PeerToPeer,
}

impl LinkKind {
    /// Both link kinds.
    pub const ALL: [LinkKind; 2] = [LinkKind::Wlan, LinkKind::PeerToPeer];

    /// Name as used in the paper's prose.
    pub fn paper_name(self) -> &'static str {
        match self {
            LinkKind::Wlan => "Wi-Fi",
            LinkKind::PeerToPeer => "Wi-Fi Direct",
        }
    }
}

impl std::fmt::Display for LinkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// An analytical wireless link model.
///
/// The data rate falls exponentially as the signal weakens (halving every
/// `rate_halving_dbm` below the reference RSSI), which produces the
/// paper's "transmission time exponentially increases with decreased data
/// rate" behaviour. Transmit and receive powers rise linearly below the
/// reference, reproducing "the network interface consumes more power to
/// transmit data with stronger signals \[at weak RSSI\]" (Section III-B,
/// model of \[61\]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    kind: LinkKind,
    max_rate_mbps: f64,
    min_rate_mbps: f64,
    reference_dbm: f64,
    knee_dbm: f64,
    rate_halving_dbm: f64,
    weak_halving_dbm: f64,
    tx_power_base_w: f64,
    tx_power_slope_w_per_db: f64,
    rx_power_base_w: f64,
    rx_power_slope_w_per_db: f64,
    rtt_ms: f64,
    wait_power_w: f64,
    wake_ms: f64,
    wake_energy_mj: f64,
}

impl LinkModel {
    /// The calibrated model for a link kind.
    ///
    /// The WLAN path includes WAN latency to the cloud in its RTT; the
    /// peer-to-peer path is a single local hop with a faster peak rate and
    /// a shorter usable range (its rate falls off more steeply).
    pub fn for_kind(kind: LinkKind) -> Self {
        match kind {
            LinkKind::Wlan => LinkModel {
                kind,
                max_rate_mbps: 80.0,
                min_rate_mbps: 0.5,
                reference_dbm: -50.0,
                knee_dbm: -70.0,
                rate_halving_dbm: 10.0,
                weak_halving_dbm: 3.5,
                tx_power_base_w: 0.8,
                tx_power_slope_w_per_db: 0.04,
                rx_power_base_w: 0.6,
                rx_power_slope_w_per_db: 0.02,
                rtt_ms: 20.0,
                wait_power_w: 0.4,
                wake_ms: 3.0,
                wake_energy_mj: 25.0,
            },
            LinkKind::PeerToPeer => LinkModel {
                kind,
                max_rate_mbps: 150.0,
                min_rate_mbps: 0.5,
                reference_dbm: -45.0,
                knee_dbm: -70.0,
                rate_halving_dbm: 9.0,
                weak_halving_dbm: 3.5,
                tx_power_base_w: 0.9,
                tx_power_slope_w_per_db: 0.035,
                rx_power_base_w: 0.7,
                rx_power_slope_w_per_db: 0.018,
                rtt_ms: 4.0,
                wait_power_w: 0.35,
                wake_ms: 2.0,
                wake_energy_mj: 18.0,
            },
        }
    }

    /// Which link this models.
    pub fn kind(&self) -> LinkKind {
        self.kind
    }

    /// Achievable data rate at the given signal strength, in Mbit/s.
    ///
    /// The curve is piecewise exponential with a knee: above `knee_dbm`
    /// the rate halves gently (every `rate_halving_dbm` dB); below the
    /// knee it halves steeply (every `weak_halving_dbm` dB), producing the
    /// paper's collapse of cloud viability under weak signal.
    pub fn data_rate_mbps(&self, rssi: Rssi) -> f64 {
        let dbm = rssi.dbm();
        let gentle_db = (self.reference_dbm - dbm.max(self.knee_dbm)).max(0.0);
        let steep_db = (self.knee_dbm - dbm).max(0.0);
        let rate = self.max_rate_mbps
            * (2.0_f64).powf(-gentle_db / self.rate_halving_dbm)
            * (2.0_f64).powf(-steep_db / self.weak_halving_dbm);
        rate.max(self.min_rate_mbps)
    }

    /// Power drawn by the radio while transmitting at the given signal
    /// strength (`P_TX^S` in the paper's eq. (4)), in watts.
    pub fn tx_power_w(&self, rssi: Rssi) -> f64 {
        let deficit_db = (self.reference_dbm - rssi.dbm()).max(0.0);
        self.tx_power_base_w + self.tx_power_slope_w_per_db * deficit_db
    }

    /// Power drawn by the radio while receiving (`P_RX^S`), in watts.
    pub fn rx_power_w(&self, rssi: Rssi) -> f64 {
        let deficit_db = (self.reference_dbm - rssi.dbm()).max(0.0);
        self.rx_power_base_w + self.rx_power_slope_w_per_db * deficit_db
    }

    /// Fixed round-trip time of the link (protocol handshakes and, for the
    /// WLAN path, the WAN segment to the cloud), in milliseconds.
    pub fn rtt_ms(&self) -> f64 {
        self.rtt_ms
    }

    /// Extra power the radio draws while waiting for a remote result
    /// (active-idle/tail state), in watts. Added on top of the device's
    /// base power during the remote-compute interval.
    pub fn wait_power_w(&self) -> f64 {
        self.wait_power_w
    }

    /// Time to wake the radio out of power-save and obtain a transmit
    /// opportunity, paid once per offloaded inference, in milliseconds.
    pub fn wake_ms(&self) -> f64 {
        self.wake_ms
    }

    /// Energy of the radio wake/association ramp, paid once per offloaded
    /// inference, in millijoules. This fixed cost is what keeps tiny
    /// inferences (light NNs) cheaper on-device even when remote compute
    /// itself is nearly free.
    pub fn wake_energy_mj(&self) -> f64 {
        self.wake_energy_mj
    }

    /// Time to move `bytes` over the link at the given signal strength,
    /// in milliseconds.
    pub fn transfer_ms(&self, bytes: u64, rssi: Rssi) -> f64 {
        let bits = bytes as f64 * 8.0;
        bits / (self.data_rate_mbps(rssi) * 1e6) * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_falls_exponentially_with_signal() {
        let link = LinkModel::for_kind(LinkKind::Wlan);
        let strong = link.data_rate_mbps(Rssi::new(-50.0));
        let mid = link.data_rate_mbps(Rssi::new(-60.0));
        let weak = link.data_rate_mbps(Rssi::new(-70.0));
        assert!((strong / mid - 2.0).abs() < 0.01);
        assert!((mid / weak - 2.0).abs() < 0.01);
    }

    #[test]
    fn rate_is_clamped_at_minimum() {
        let link = LinkModel::for_kind(LinkKind::Wlan);
        assert_eq!(link.data_rate_mbps(Rssi::new(-95.0)), 0.5);
    }

    #[test]
    fn rate_collapses_below_the_knee() {
        // Halving is much steeper past the knee: -70 dBm to -80 dBm loses
        // far more than a single 10 dB halving.
        let link = LinkModel::for_kind(LinkKind::Wlan);
        let at_knee = link.data_rate_mbps(Rssi::new(-70.0));
        let weak = link.data_rate_mbps(Rssi::new(-80.0));
        assert!(at_knee / weak > 6.0, "ratio={}", at_knee / weak);
    }

    #[test]
    fn rate_saturates_above_reference() {
        let link = LinkModel::for_kind(LinkKind::Wlan);
        assert_eq!(link.data_rate_mbps(Rssi::new(-40.0)), 80.0);
    }

    #[test]
    fn weak_signal_raises_tx_and_rx_power() {
        for kind in LinkKind::ALL {
            let link = LinkModel::for_kind(kind);
            assert!(
                link.tx_power_w(Rssi::WEAK) > 1.5 * link.tx_power_w(Rssi::STRONG),
                "{kind}"
            );
            assert!(
                link.rx_power_w(Rssi::WEAK) > link.rx_power_w(Rssi::STRONG),
                "{kind}"
            );
        }
    }

    #[test]
    fn p2p_is_faster_and_closer_than_wlan() {
        let p2p = LinkModel::for_kind(LinkKind::PeerToPeer);
        let wlan = LinkModel::for_kind(LinkKind::Wlan);
        assert!(p2p.data_rate_mbps(Rssi::STRONG) > wlan.data_rate_mbps(Rssi::STRONG));
        assert!(p2p.rtt_ms() < wlan.rtt_ms());
    }

    #[test]
    fn wake_costs_are_fixed_per_offload() {
        let wlan = LinkModel::for_kind(LinkKind::Wlan);
        let p2p = LinkModel::for_kind(LinkKind::PeerToPeer);
        assert!(wlan.wake_energy_mj() > 0.0);
        assert!(p2p.wake_energy_mj() < wlan.wake_energy_mj());
        assert!(wlan.wake_ms() > 0.0);
    }

    #[test]
    fn transfer_time_scales_with_payload() {
        let link = LinkModel::for_kind(LinkKind::Wlan);
        let one = link.transfer_ms(64 * 1024, Rssi::STRONG);
        let two = link.transfer_ms(128 * 1024, Rssi::STRONG);
        assert!((two / one - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weak_signal_transfer_explodes() {
        // 64 KiB at strong vs weak WLAN signal: the paper's exponential
        // blow-up that makes cloud offloading unattractive at weak RSSI.
        let link = LinkModel::for_kind(LinkKind::Wlan);
        let strong = link.transfer_ms(64 * 1024, Rssi::STRONG);
        let weak = link.transfer_ms(64 * 1024, Rssi::WEAK);
        assert!(weak > 8.0 * strong, "strong={strong} weak={weak}");
    }
}
