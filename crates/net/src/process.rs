//! Stochastic signal-strength processes.
//!
//! Section V-B of the paper: "since the signal strength variance is
//! typically modeled by a Gaussian distribution \[19\], we emulate the random
//! signal strength with a Gaussian distribution". A process is stepped once
//! per inference; the fixed variant reproduces the static environments
//! (S1/S4/S5 of Table IV) and the Gaussian variant the dynamic D3.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::rssi::Rssi;

/// A source of per-inference signal-strength samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SignalProcess {
    /// Constant signal strength (static environments).
    Fixed {
        /// The constant level in dBm.
        dbm: f64,
    },
    /// Gaussian-distributed signal strength, sampled independently per
    /// inference (dynamic environment D3).
    Gaussian {
        /// Mean level in dBm.
        mean_dbm: f64,
        /// Standard deviation in dB.
        std_db: f64,
    },
}

impl SignalProcess {
    /// A constant strong signal.
    pub fn strong() -> Self {
        SignalProcess::Fixed {
            dbm: Rssi::STRONG.dbm(),
        }
    }

    /// A constant weak signal (past the −80 dBm threshold).
    pub fn weak() -> Self {
        SignalProcess::Fixed {
            dbm: Rssi::WEAK.dbm(),
        }
    }

    /// The paper's D3 environment: random Wi-Fi signal, Gaussian around a
    /// mid-range mean so both regular and weak buckets occur.
    pub fn random_walkabout() -> Self {
        SignalProcess::Gaussian {
            mean_dbm: -72.0,
            std_db: 9.0,
        }
    }

    /// Draws the signal strength for the next inference.
    pub fn sample(&self, rng: &mut StdRng) -> Rssi {
        match *self {
            SignalProcess::Fixed { dbm } => Rssi::new(dbm),
            SignalProcess::Gaussian { mean_dbm, std_db } => {
                let normal = Normal::new(mean_dbm, std_db) // lint:hot-exempt(Normal::new stores (mean, std): allocation-free)
                    // lint:allow(panic-in-lib): the environment tables only use finite, non-negative std_db
                    .expect("standard deviation is finite and non-negative");
                Rssi::new(normal.sample(rng))
            }
        }
    }

    /// Convenience: a seeded RNG suitable for driving processes
    /// deterministically in tests and experiments.
    pub fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// The long-run mean level of the process in dBm.
    pub fn mean_dbm(&self) -> f64 {
        match *self {
            SignalProcess::Fixed { dbm } => Rssi::new(dbm).dbm(),
            SignalProcess::Gaussian { mean_dbm, .. } => mean_dbm,
        }
    }

    /// Whether the process ever varies between samples.
    pub fn is_stochastic(&self) -> bool {
        match self {
            SignalProcess::Fixed { .. } => false,
            SignalProcess::Gaussian { std_db, .. } => *std_db > 0.0,
        }
    }
}

/// Samples a uniformly random RSSI in a range — used by characterization
/// sweeps that need coverage rather than realism.
pub fn uniform_rssi(rng: &mut StdRng, low_dbm: f64, high_dbm: f64) -> Rssi {
    Rssi::new(rng.gen_range(low_dbm..=high_dbm))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_process_is_constant() {
        let p = SignalProcess::strong();
        let mut rng = SignalProcess::rng(1);
        let a = p.sample(&mut rng);
        let b = p.sample(&mut rng);
        assert_eq!(a, b);
        assert!(!p.is_stochastic());
    }

    #[test]
    fn gaussian_process_varies_and_respects_mean() {
        let p = SignalProcess::random_walkabout();
        let mut rng = SignalProcess::rng(42);
        let samples: Vec<f64> = (0..2_000).map(|_| p.sample(&mut rng).dbm()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - p.mean_dbm()).abs() < 1.0, "mean={mean}");
        assert!(p.is_stochastic());
        // Both buckets must occur for the D3 environment to be interesting.
        assert!(samples.iter().any(|&s| s > -80.0));
        assert!(samples.iter().any(|&s| s <= -80.0));
    }

    #[test]
    fn gaussian_samples_are_clamped() {
        let p = SignalProcess::Gaussian {
            mean_dbm: -92.0,
            std_db: 20.0,
        };
        let mut rng = SignalProcess::rng(7);
        for _ in 0..500 {
            let s = p.sample(&mut rng).dbm();
            assert!((-95.0..=-30.0).contains(&s));
        }
    }

    #[test]
    fn same_seed_reproduces_sequence() {
        let p = SignalProcess::random_walkabout();
        let seq = |seed| {
            let mut rng = SignalProcess::rng(seed);
            (0..10)
                .map(|_| p.sample(&mut rng).dbm())
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(5), seq(5));
        assert_ne!(seq(5), seq(6));
    }

    #[test]
    fn uniform_rssi_stays_in_range() {
        let mut rng = SignalProcess::rng(3);
        for _ in 0..200 {
            let r = uniform_rssi(&mut rng, -90.0, -50.0);
            assert!((-90.0..=-50.0).contains(&r.dbm()));
        }
    }
}
