//! Failed-transfer costs: what an offload attempt that never completes
//! still costs the phone.
//!
//! [`Transfer`](crate::Transfer) prices the happy path of eq. (4). Real
//! links also *fail*: the access point drops the association (a
//! **dropout**, detected quickly at the protocol level) or the transfer
//! stalls mid-flight and the phone only gives up at its deadline (a
//! **timeout**). Either way the radio was up and burning power, and that
//! latency and energy must be charged to the request — it is the penalty
//! a resilience policy feeds back into the scheduler's reward.

use serde::{Deserialize, Serialize};

use crate::link::LinkModel;
use crate::rssi::Rssi;

/// How one offload attempt fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OutageKind {
    /// The link is down or the association fails: the radio wakes,
    /// probes, and learns quickly (about one protocol round trip) that
    /// nothing is listening.
    Dropout,
    /// The transfer starts but stalls: the phone transmits (some of) the
    /// payload, then waits for a reply that never arrives until its
    /// deadline expires.
    Timeout,
}

impl std::fmt::Display for OutageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutageKind::Dropout => f.write_str("dropout"),
            OutageKind::Timeout => f.write_str("timeout"),
        }
    }
}

/// The phone-side cost of one offload attempt that did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailedTransfer {
    /// Time from starting the attempt to declaring it failed, in
    /// milliseconds.
    pub detect_ms: f64,
    /// Radio energy burned by the failed attempt (wake ramp plus probe
    /// or partial transmit plus stalled wait), in millijoules.
    pub radio_energy_mj: f64,
    /// Extra radio power drawn while stalled-waiting, in watts — the
    /// caller adds the device's base power over `detect_ms` itself, the
    /// same split [`Transfer`](crate::Transfer) uses for the wait term.
    pub wait_power_w: f64,
}

impl FailedTransfer {
    /// Prices a failed offload attempt of `input_bytes` over `link` at
    /// signal strength `rssi`.
    ///
    /// * A [`OutageKind::Dropout`] is detected after the radio wake ramp
    ///   plus one protocol round trip of probing at transmit power.
    /// * A [`OutageKind::Timeout`] transmits the uplink payload (or as
    ///   much as fits before `timeout_ms`) and then stall-waits at the
    ///   link's wait power until the deadline; detection is at
    ///   `timeout_ms` past the wake ramp, never earlier than a dropout.
    pub fn compute(
        link: &LinkModel,
        rssi: Rssi,
        kind: OutageKind,
        input_bytes: u64,
        timeout_ms: f64,
    ) -> Self {
        let probe_ms = link.rtt_ms();
        match kind {
            OutageKind::Dropout => FailedTransfer {
                detect_ms: link.wake_ms() + probe_ms,
                radio_energy_mj: link.wake_energy_mj() + link.tx_power_w(rssi) * probe_ms,
                wait_power_w: link.wait_power_w(),
            },
            OutageKind::Timeout => {
                let budget_ms = timeout_ms.max(probe_ms);
                let tx_ms = link.transfer_ms(input_bytes, rssi).min(budget_ms);
                let stall_ms = budget_ms - tx_ms;
                FailedTransfer {
                    detect_ms: link.wake_ms() + budget_ms,
                    radio_energy_mj: link.wake_energy_mj()
                        + link.tx_power_w(rssi) * tx_ms
                        + link.wait_power_w() * stall_ms,
                    wait_power_w: link.wait_power_w(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkKind;

    #[test]
    fn dropout_is_detected_fast_and_cheap() {
        let link = LinkModel::for_kind(LinkKind::Wlan);
        let f = FailedTransfer::compute(&link, Rssi::STRONG, OutageKind::Dropout, 64 * 1024, 200.0);
        assert!((f.detect_ms - link.wake_ms() - link.rtt_ms()).abs() < 1e-9);
        assert!(f.radio_energy_mj > link.wake_energy_mj());
        // Never more than the timeout path for the same payload.
        let t = FailedTransfer::compute(&link, Rssi::STRONG, OutageKind::Timeout, 64 * 1024, 200.0);
        assert!(f.detect_ms < t.detect_ms);
        assert!(f.radio_energy_mj < t.radio_energy_mj);
    }

    #[test]
    fn timeout_burns_the_full_deadline() {
        let link = LinkModel::for_kind(LinkKind::Wlan);
        let f = FailedTransfer::compute(&link, Rssi::STRONG, OutageKind::Timeout, 64 * 1024, 150.0);
        assert!((f.detect_ms - link.wake_ms() - 150.0).abs() < 1e-9);
        // Energy covers wake + (partial) tx + stalled wait.
        assert!(f.radio_energy_mj > link.wake_energy_mj());
    }

    #[test]
    fn timeout_deadline_is_floored_at_a_probe_round_trip() {
        let link = LinkModel::for_kind(LinkKind::Wlan);
        let f = FailedTransfer::compute(&link, Rssi::STRONG, OutageKind::Timeout, 1024, 0.0);
        assert!(f.detect_ms >= link.wake_ms() + link.rtt_ms() - 1e-9);
    }

    #[test]
    fn weak_signal_makes_failures_costlier() {
        // Probing and partial transmission at weak signal draw more
        // transmit power, so a failed attempt hurts more — the same
        // gradient the scheduler already learns for successful offloads.
        let link = LinkModel::for_kind(LinkKind::Wlan);
        for kind in [OutageKind::Dropout, OutageKind::Timeout] {
            let strong = FailedTransfer::compute(&link, Rssi::STRONG, kind, 64 * 1024, 100.0);
            let weak = FailedTransfer::compute(&link, Rssi::WEAK, kind, 64 * 1024, 100.0);
            assert!(weak.radio_energy_mj > strong.radio_energy_mj, "{kind}");
        }
    }
}
