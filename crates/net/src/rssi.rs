//! Received signal strength indication (RSSI) and its Table I bucketing.

use serde::{Deserialize, Serialize};

/// The paper's Table I threshold between "regular" and "weak" signal.
pub const WEAK_THRESHOLD_DBM: f64 = -80.0;

/// Received signal strength in dBm.
///
/// Values are negative in practice (−40 dBm is excellent, −90 dBm barely
/// usable); the constructor clamps to the physically sensible range
/// [−95, −30] so stochastic processes cannot wander off the model's
/// calibrated domain.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Rssi(f64);

impl Rssi {
    /// A strong signal (device next to the access point / peer).
    pub const STRONG: Rssi = Rssi(-50.0);
    /// A weak signal, just past the paper's −80 dBm threshold.
    pub const WEAK: Rssi = Rssi(-85.0);

    /// Creates an RSSI value, clamping to [−95, −30] dBm.
    ///
    /// ```
    /// use autoscale_net::Rssi;
    /// assert_eq!(Rssi::new(-70.0).dbm(), -70.0);
    /// assert_eq!(Rssi::new(-200.0).dbm(), -95.0); // clamped
    /// ```
    pub fn new(dbm: f64) -> Self {
        Rssi(dbm.clamp(-95.0, -30.0))
    }

    /// The value in dBm.
    pub fn dbm(self) -> f64 {
        self.0
    }

    /// The paper's Table I bucket: regular above −80 dBm, weak at or below.
    pub fn bucket(self) -> SignalBucket {
        if self.0 > WEAK_THRESHOLD_DBM {
            SignalBucket::Regular
        } else {
            SignalBucket::Weak
        }
    }

    /// Whether this signal falls in the weak bucket.
    pub fn is_weak(self) -> bool {
        self.bucket() == SignalBucket::Weak
    }
}

impl std::fmt::Display for Rssi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.0} dBm", self.0)
    }
}

/// The discretized signal-strength state of the paper's Table I
/// (`S_RSSI_W` / `S_RSSI_P`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SignalBucket {
    /// RSSI above −80 dBm.
    Regular,
    /// RSSI at or below −80 dBm.
    Weak,
}

impl SignalBucket {
    /// Both buckets, regular first.
    pub const ALL: [SignalBucket; 2] = [SignalBucket::Regular, SignalBucket::Weak];

    /// Bucket index (0 = regular, 1 = weak) for state encoding.
    pub fn index(self) -> usize {
        match self {
            SignalBucket::Regular => 0,
            SignalBucket::Weak => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_threshold_matches_table_i() {
        assert_eq!(Rssi::new(-79.9).bucket(), SignalBucket::Regular);
        assert_eq!(Rssi::new(-80.0).bucket(), SignalBucket::Weak);
        assert_eq!(Rssi::new(-90.0).bucket(), SignalBucket::Weak);
    }

    #[test]
    fn constructor_clamps() {
        assert_eq!(Rssi::new(0.0).dbm(), -30.0);
        assert_eq!(Rssi::new(-150.0).dbm(), -95.0);
    }

    #[test]
    fn named_levels() {
        assert!(!Rssi::STRONG.is_weak());
        assert!(Rssi::WEAK.is_weak());
    }

    #[test]
    fn display_format() {
        assert_eq!(Rssi::new(-72.4).to_string(), "-72 dBm");
    }

    #[test]
    fn bucket_indices_are_distinct() {
        assert_ne!(SignalBucket::Regular.index(), SignalBucket::Weak.index());
    }
}
