//! Property tests for the wireless link models.

use autoscale_net::{LinkKind, LinkModel, Rssi, SignalProcess, Transfer};
use proptest::prelude::*;

fn arb_link() -> impl Strategy<Value = LinkKind> {
    prop::sample::select(LinkKind::ALL.to_vec())
}

fn arb_rssi() -> impl Strategy<Value = Rssi> {
    (-95.0..=-30.0f64).prop_map(Rssi::new)
}

proptest! {
    /// Data rate decreases (weakly) as the signal weakens.
    #[test]
    fn rate_is_monotone_in_rssi(kind in arb_link(), a in -95.0..=-30.0f64, b in -95.0..=-30.0f64) {
        let link = LinkModel::for_kind(kind);
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert!(
            link.data_rate_mbps(Rssi::new(hi)) >= link.data_rate_mbps(Rssi::new(lo)) - 1e-12
        );
    }

    /// TX and RX power increase (weakly) as the signal weakens.
    #[test]
    fn radio_power_is_monotone_in_rssi(kind in arb_link(), a in -95.0..=-30.0f64, b in -95.0..=-30.0f64) {
        let link = LinkModel::for_kind(kind);
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert!(link.tx_power_w(Rssi::new(lo)) >= link.tx_power_w(Rssi::new(hi)) - 1e-12);
        prop_assert!(link.rx_power_w(Rssi::new(lo)) >= link.rx_power_w(Rssi::new(hi)) - 1e-12);
    }

    /// Transfer time is additive in payload size.
    #[test]
    fn transfer_time_is_additive(
        kind in arb_link(),
        rssi in arb_rssi(),
        a in 0u64..10_000_000,
        b in 0u64..10_000_000,
    ) {
        let link = LinkModel::for_kind(kind);
        let joint = link.transfer_ms(a + b, rssi);
        let split = link.transfer_ms(a, rssi) + link.transfer_ms(b, rssi);
        prop_assert!((joint - split).abs() < 1e-6 * joint.max(1.0));
    }

    /// Transfers always cost at least the wake-and-RTT floor, and the
    /// energy decomposition is consistent.
    #[test]
    fn transfer_costs_are_consistent(
        kind in arb_link(),
        rssi in arb_rssi(),
        up in 0u64..5_000_000,
        down in 0u64..1_000_000,
    ) {
        let link = LinkModel::for_kind(kind);
        let t = Transfer::compute(&link, up, down, rssi);
        prop_assert!(t.wire_ms() >= link.rtt_ms() + link.wake_ms() - 1e-12);
        let parts = t.wake_energy_mj + t.tx_energy_mj + t.rx_energy_mj;
        prop_assert!((t.radio_energy_mj() - parts).abs() < 1e-9);
        prop_assert!(t.tx_energy_mj >= 0.0 && t.rx_energy_mj >= 0.0);
    }

    /// RSSI construction clamps to the modelled domain and bucket
    /// classification is consistent with the threshold.
    #[test]
    fn rssi_clamps_and_buckets(dbm in -500.0..500.0f64) {
        let r = Rssi::new(dbm);
        prop_assert!((-95.0..=-30.0).contains(&r.dbm()));
        prop_assert_eq!(r.is_weak(), r.dbm() <= -80.0);
    }

    /// Signal processes only emit values in the clamped domain, and fixed
    /// processes are constant.
    #[test]
    fn signal_processes_stay_in_domain(mean in -95.0..=-40.0f64, std in 0.1..=20.0f64, seed in any::<u64>()) {
        let mut rng = SignalProcess::rng(seed);
        let gauss = SignalProcess::Gaussian { mean_dbm: mean, std_db: std };
        for _ in 0..50 {
            let v = gauss.sample(&mut rng).dbm();
            prop_assert!((-95.0..=-30.0).contains(&v));
        }
        let fixed = SignalProcess::Fixed { dbm: mean };
        let first = fixed.sample(&mut rng);
        for _ in 0..10 {
            prop_assert_eq!(fixed.sample(&mut rng), first);
        }
    }
}
