//! Calibration probe: prints latency/energy across targets (dev tool).

use autoscale_nn::{Precision, Workload};
use autoscale_platform::{DeviceId, ProcessorKind};
use autoscale_sim::{Placement, Request, Simulator, Snapshot};

fn main() {
    let placements = [
        (Placement::OnDevice(ProcessorKind::Cpu), Precision::Fp32),
        (Placement::OnDevice(ProcessorKind::Cpu), Precision::Int8),
        (Placement::OnDevice(ProcessorKind::Gpu), Precision::Fp32),
        (Placement::OnDevice(ProcessorKind::Gpu), Precision::Fp16),
        (Placement::OnDevice(ProcessorKind::Dsp), Precision::Int8),
        (
            Placement::ConnectedEdge(ProcessorKind::Gpu),
            Precision::Fp32,
        ),
        (
            Placement::ConnectedEdge(ProcessorKind::Dsp),
            Precision::Int8,
        ),
        (Placement::Cloud(ProcessorKind::Cpu), Precision::Fp32),
        (Placement::Cloud(ProcessorKind::Gpu), Precision::Fp32),
    ];
    for dev in [DeviceId::Mi8Pro, DeviceId::MotoXForce] {
        let sim = Simulator::new(dev);
        println!("=== {dev:?} (calm, max freq) ===");
        for w in [
            Workload::MobileNetV3,
            Workload::InceptionV1,
            Workload::ResNet50,
            Workload::MobileBert,
        ] {
            println!("  {w}:");
            for (p, prec) in placements {
                let req = Request::at_max_frequency(&sim, p, prec);
                if let Ok(o) = sim.execute_expected(w, &req, &Snapshot::calm()) {
                    println!(
                        "    {:32} {:7.1} ms {:8.1} mJ  acc {:4.1}",
                        format!("{p} {prec}"),
                        o.latency_ms,
                        o.energy_mj,
                        o.accuracy
                    )
                }
            }
        }
    }
    // DVFS sweep: best energy on Mi8Pro CPU for MobileNet v3 under 50ms QoS.
    let sim = Simulator::new(DeviceId::Mi8Pro);
    let cpu = sim.host().processor(ProcessorKind::Cpu).unwrap();
    println!("=== Mi8Pro CPU INT8 DVFS sweep, MobileNet v3 ===");
    for i in (0..cpu.dvfs().len()).step_by(4) {
        let req = Request {
            placement: Placement::OnDevice(ProcessorKind::Cpu),
            precision: Precision::Int8,
            freq_index: i,
        };
        let o = sim
            .execute_expected(Workload::MobileNetV3, &req, &Snapshot::calm())
            .unwrap();
        println!(
            "  step {i:2}: {:6.1} ms {:7.1} mJ",
            o.latency_ms, o.energy_mj
        );
    }
}
