//! Property tests for the simulator: physicality, determinism, and
//! environment invariants.

use autoscale_nn::{Precision, Workload};
use autoscale_platform::{DeviceId, ProcessorKind};
use autoscale_sim::{
    Environment, EnvironmentId, InterferenceProcess, Placement, Request, Scenario, Simulator,
    Snapshot,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop::sample::select(Workload::ALL.to_vec())
}

fn arb_phone() -> impl Strategy<Value = DeviceId> {
    prop::sample::select(DeviceId::PHONES.to_vec())
}

fn arb_env() -> impl Strategy<Value = EnvironmentId> {
    prop::sample::select(EnvironmentId::ALL.to_vec())
}

fn arb_placement() -> impl Strategy<Value = (Placement, Precision)> {
    prop::sample::select(vec![
        (Placement::OnDevice(ProcessorKind::Cpu), Precision::Fp32),
        (Placement::OnDevice(ProcessorKind::Cpu), Precision::Int8),
        (Placement::OnDevice(ProcessorKind::Gpu), Precision::Fp16),
        (Placement::OnDevice(ProcessorKind::Dsp), Precision::Int8),
        (
            Placement::ConnectedEdge(ProcessorKind::Dsp),
            Precision::Int8,
        ),
        (Placement::Cloud(ProcessorKind::Gpu), Precision::Fp32),
    ])
}

proptest! {
    /// execute_expected is a pure function: same inputs, same outputs.
    #[test]
    fn expected_execution_is_deterministic(
        w in arb_workload(),
        phone in arb_phone(),
        (placement, precision) in arb_placement(),
    ) {
        let sim = Simulator::new(phone);
        let request = Request::at_max_frequency(&sim, placement, precision);
        let snapshot = Snapshot::calm();
        let a = sim.execute_expected(w, &request, &snapshot);
        let b = sim.execute_expected(w, &request, &snapshot);
        prop_assert_eq!(a, b);
    }

    /// Measured execution with the same seed is reproducible.
    #[test]
    fn measured_execution_is_seed_deterministic(w in arb_workload(), seed in any::<u64>()) {
        let sim = Simulator::new(DeviceId::Mi8Pro);
        let request = Request::at_max_frequency(
            &sim,
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Fp32,
        );
        let run = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            sim.execute_measured(w, &request, &Snapshot::calm(), &mut rng)
        };
        prop_assert_eq!(run(), run());
    }

    /// Feasibility is consistent with execution: checked requests run,
    /// unchecked ones error.
    #[test]
    fn feasibility_matches_execution(
        w in arb_workload(),
        phone in arb_phone(),
        (placement, precision) in arb_placement(),
    ) {
        let sim = Simulator::new(phone);
        let request = Request::at_max_frequency(&sim, placement, precision);
        let feasible = sim.is_feasible(w, &request);
        let ran = sim.execute_expected(w, &request, &Snapshot::calm()).is_ok();
        prop_assert_eq!(feasible, ran);
    }

    /// Environments generate snapshots consistent with their Table IV
    /// definition, indefinitely.
    #[test]
    fn environment_snapshots_stay_in_spec(env_id in arb_env(), seed in any::<u64>()) {
        let mut env = Environment::for_id(env_id);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..40 {
            let s = env.sample(&mut rng);
            prop_assert!((0.0..=1.0).contains(&s.co_cpu));
            prop_assert!((0.0..=1.0).contains(&s.co_mem));
            match env_id {
                EnvironmentId::S1 => {
                    prop_assert_eq!(s.co_cpu, 0.0);
                    prop_assert!(!s.wlan.is_weak());
                }
                EnvironmentId::S4 => prop_assert!(s.wlan.is_weak()),
                EnvironmentId::S5 => prop_assert!(s.p2p.is_weak()),
                _ => {}
            }
        }
    }

    /// Environment sampling is reproducible under a seed.
    #[test]
    fn environments_are_seed_deterministic(env_id in arb_env(), seed in any::<u64>()) {
        let sample = || {
            let mut env = Environment::for_id(env_id);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            (0..10).map(|_| env.sample(&mut rng)).collect::<Vec<_>>()
        };
        prop_assert_eq!(sample(), sample());
    }

    /// Interference processes never leave the unit square.
    #[test]
    fn interference_is_bounded(seed in any::<u64>(), period in 1u64..50) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for p in [
            InterferenceProcess::None,
            InterferenceProcess::cpu_intensive(),
            InterferenceProcess::mem_intensive(),
            InterferenceProcess::MusicPlayer,
            InterferenceProcess::WebBrowser,
            InterferenceProcess::Alternating { period },
        ] {
            for step in 0..30 {
                let (c, m) = p.sample(step, &mut rng);
                prop_assert!((0.0..=1.0).contains(&c));
                prop_assert!((0.0..=1.0).contains(&m));
            }
        }
    }

    /// QoS classification agrees with the scenario target.
    #[test]
    fn qos_violation_is_consistent(latency in 0.1..500.0f64) {
        for s in Scenario::ALL {
            prop_assert_eq!(s.violates(latency), latency > s.qos_ms());
        }
    }

    /// Remote execution latency decomposes sensibly: it is never below
    /// the link's floor (wake + RTT) plus the remote serving overhead.
    #[test]
    fn remote_latency_has_a_floor(w in arb_workload()) {
        let sim = Simulator::new(DeviceId::Mi8Pro);
        let request = Request::at_max_frequency(
            &sim,
            Placement::Cloud(ProcessorKind::Gpu),
            Precision::Fp32,
        );
        let o = sim.execute_expected(w, &request, &Snapshot::calm()).expect("cloud GPU runs all");
        let floor = sim.wlan().rtt_ms() + sim.wlan().wake_ms() + sim.cloud().serving_overhead_ms();
        prop_assert!(o.latency_ms > floor);
    }
}
