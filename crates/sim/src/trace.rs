//! Inference traces: a serializable record of what a scheduler did.
//!
//! The paper's evaluation is built from logs of (state, decision, result)
//! triples collected on the phones. This module is the equivalent
//! artifact for the simulated testbed: every executed inference can be
//! appended to a [`Trace`], serialized with serde, summarized, and
//! replayed through the simulator to validate that a recorded run is
//! reproducible.

use autoscale_nn::Workload;
use serde::{Deserialize, Serialize};

use crate::executor::{Outcome, Simulator};
use crate::request::Request;
use crate::snapshot::Snapshot;

/// One recorded inference: the observed variance, the decision taken, and
/// the measured outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Monotonic inference index within the trace.
    pub step: u64,
    /// The workload executed.
    pub workload: Workload,
    /// The runtime variance observed at decision time.
    pub snapshot: Snapshot,
    /// The request the scheduler issued.
    pub request: Request,
    /// The measured outcome.
    pub outcome: Outcome,
}

/// An append-only log of executed inferences.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

/// Aggregate statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of recorded inferences.
    pub entries: usize,
    /// Mean latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Mean energy in millijoules.
    pub mean_energy_mj: f64,
    /// Total energy in millijoules.
    pub total_energy_mj: f64,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends one executed inference.
    pub fn record(
        &mut self,
        workload: Workload,
        snapshot: Snapshot,
        request: Request,
        outcome: Outcome,
    ) {
        let step = self.entries.len() as u64;
        self.entries.push(TraceEntry {
            step,
            workload,
            snapshot,
            request,
            outcome,
        });
    }

    /// The recorded entries in execution order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded inferences.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Aggregate statistics.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn summary(&self) -> TraceSummary {
        assert!(!self.entries.is_empty(), "cannot summarize an empty trace");
        let n = self.entries.len() as f64;
        let total_energy_mj: f64 = self.entries.iter().map(|e| e.outcome.energy_mj).sum();
        TraceSummary {
            entries: self.entries.len(),
            mean_latency_ms: self
                .entries
                .iter()
                .map(|e| e.outcome.latency_ms)
                .sum::<f64>()
                / n,
            mean_energy_mj: total_energy_mj / n,
            total_energy_mj,
        }
    }

    /// Re-executes every recorded decision under its recorded snapshot
    /// and reports the worst relative deviation between the recorded and
    /// replayed *expected* outcome. A trace recorded from this simulator
    /// replays within measurement noise; a large deviation means the
    /// trace came from a differently-configured testbed.
    ///
    /// # Errors
    ///
    /// Returns the index of the first entry whose request is infeasible
    /// on `sim` (e.g. a trace from an NPU testbed replayed on a stock
    /// phone).
    pub fn replay_deviation(&self, sim: &Simulator) -> Result<f64, usize> {
        let mut worst: f64 = 0.0;
        for (i, e) in self.entries.iter().enumerate() {
            let replayed = sim
                .execute_expected(e.workload, &e.request, &e.snapshot)
                .map_err(|_| i)?;
            let dev = ((replayed.energy_mj - e.outcome.energy_mj) / e.outcome.energy_mj).abs();
            worst = worst.max(dev);
        }
        Ok(worst)
    }
}

impl Extend<TraceEntry> for Trace {
    fn extend<T: IntoIterator<Item = TraceEntry>>(&mut self, iter: T) {
        for mut e in iter {
            e.step = self.entries.len() as u64;
            // lint:hot-exempt(trace recording buffer: one amortized push per recorded entry)
            self.entries.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Placement;
    use autoscale_nn::Precision;
    use autoscale_platform::{DeviceId, ProcessorKind};
    use rand::SeedableRng;

    fn recorded_trace(sim: &Simulator, runs: usize) -> Trace {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut trace = Trace::new();
        let request = Request::at_max_frequency(
            sim,
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Fp32,
        );
        for _ in 0..runs {
            let snapshot = Snapshot::calm();
            let outcome = sim
                .execute_measured(Workload::MobileNetV1, &request, &snapshot, &mut rng)
                .expect("feasible");
            trace.record(Workload::MobileNetV1, snapshot, request, outcome);
        }
        trace
    }

    #[test]
    fn records_in_order_with_steps() {
        let sim = Simulator::new(DeviceId::Mi8Pro);
        let trace = recorded_trace(&sim, 5);
        assert_eq!(trace.len(), 5);
        for (i, e) in trace.entries().iter().enumerate() {
            assert_eq!(e.step, i as u64);
        }
    }

    #[test]
    fn summary_aggregates() {
        let sim = Simulator::new(DeviceId::Mi8Pro);
        let trace = recorded_trace(&sim, 10);
        let s = trace.summary();
        assert_eq!(s.entries, 10);
        assert!(s.mean_latency_ms > 0.0);
        assert!((s.total_energy_mj - s.mean_energy_mj * 10.0).abs() < 1e-9);
    }

    #[test]
    fn replays_within_measurement_noise() {
        let sim = Simulator::new(DeviceId::Mi8Pro);
        let trace = recorded_trace(&sim, 20);
        let dev = trace.replay_deviation(&sim).expect("trace is feasible");
        // Measurement noise is ~5.5% relative sigma; 4 sigma bounds it.
        assert!(dev < 0.25, "deviation {dev}");
    }

    #[test]
    fn replay_rejects_foreign_testbeds() {
        // A trace using the Mi8Pro DSP cannot replay on the DSP-less S10e.
        let mi8 = Simulator::new(DeviceId::Mi8Pro);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut trace = Trace::new();
        let dsp = Request::at_max_frequency(
            &mi8,
            Placement::OnDevice(ProcessorKind::Dsp),
            Precision::Int8,
        );
        let outcome = mi8
            .execute_measured(Workload::InceptionV1, &dsp, &Snapshot::calm(), &mut rng)
            .expect("feasible");
        trace.record(Workload::InceptionV1, Snapshot::calm(), dsp, outcome);
        let s10e = Simulator::new(DeviceId::GalaxyS10e);
        assert_eq!(trace.replay_deviation(&s10e), Err(0));
    }

    #[test]
    fn serde_round_trip() {
        let sim = Simulator::new(DeviceId::Mi8Pro);
        let trace = recorded_trace(&sim, 3);
        let json = serde_json::to_string(&trace).expect("serializes");
        let back: Trace = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(trace, back);
    }

    #[test]
    fn extend_renumbers_steps() {
        let sim = Simulator::new(DeviceId::Mi8Pro);
        let a = recorded_trace(&sim, 2);
        let b = recorded_trace(&sim, 2);
        let mut merged = a.clone();
        merged.extend(b.entries().iter().copied());
        assert_eq!(merged.len(), 4);
        assert_eq!(merged.entries()[3].step, 3);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_summary_panics() {
        let _ = Trace::new().summary();
    }
}
