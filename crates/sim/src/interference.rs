//! Co-running application generators.
//!
//! The paper's interference sources (Sections III-B and V-B): synthetic
//! CPU- and memory-intensive loads for the static environments, and two
//! real applications — a music player and a web browser driven by an
//! automatic input generator — for the dynamic ones. Here each source is a
//! stochastic process sampled once per inference: it yields the
//! co-runner's CPU utilization and memory usage, the two quantities the
//! kernel exposes through procfs on the real system.

use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// A generator of co-runner (CPU utilization, memory usage) pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum InterferenceProcess {
    /// No co-running application.
    #[default]
    None,
    /// A synthetic co-runner with fixed CPU and memory pressure (the
    /// paper's S2/S3 environments use "co-running apps with constant CPU
    /// and memory usages").
    Constant {
        /// CPU utilization in [0, 1].
        cpu: f64,
        /// Memory usage in [0, 1].
        mem: f64,
    },
    /// A background music player: light, steady CPU with small jitter
    /// (environment D1).
    MusicPlayer,
    /// A web browser replaying generated user input: bursty CPU with
    /// moderate memory pressure (environment D2).
    WebBrowser,
    /// Alternates between the music player and the web browser every
    /// `period` inferences (environment D4, "varying co-running apps from
    /// the music player to the web browser").
    Alternating {
        /// Number of inferences before switching apps.
        period: u64,
    },
}

impl InterferenceProcess {
    /// The paper's synthetic CPU-intensive co-runner (S2).
    pub fn cpu_intensive() -> Self {
        InterferenceProcess::Constant {
            cpu: 0.85,
            mem: 0.10,
        }
    }

    /// The paper's synthetic memory-intensive co-runner (S3).
    pub fn mem_intensive() -> Self {
        InterferenceProcess::Constant {
            cpu: 0.20,
            mem: 0.80,
        }
    }

    /// Samples the co-runner state for inference number `step`.
    ///
    /// Returns `(cpu_utilization, memory_usage)`, both clamped to [0, 1].
    pub fn sample(&self, step: u64, rng: &mut StdRng) -> (f64, f64) {
        let (cpu, mem) = match self {
            InterferenceProcess::None => (0.0, 0.0),
            InterferenceProcess::Constant { cpu, mem } => (*cpu, *mem),
            InterferenceProcess::MusicPlayer => {
                // lint:allow(panic-in-lib): literal (mean, std) pairs are valid Normal parameters
                let cpu = Normal::new(0.15, 0.05).expect("valid normal").sample(rng); // lint:hot-exempt(Normal::new stores (mean, std): allocation-free)
                                                                                      // lint:allow(panic-in-lib): literal (mean, std) pairs are valid Normal parameters
                let mem = Normal::new(0.10, 0.03).expect("valid normal").sample(rng); // lint:hot-exempt(Normal::new stores (mean, std): allocation-free)
                (cpu, mem)
            }
            InterferenceProcess::WebBrowser => {
                // Page loads are bursts; idle reading is light.
                let bursting = rng.gen::<f64>() < 0.35;
                let cpu = if bursting {
                    rng.gen_range(0.60..0.95)
                } else {
                    rng.gen_range(0.10..0.40)
                };
                let mem = rng.gen_range(0.25..0.55);
                (cpu, mem)
            }
            InterferenceProcess::Alternating { period } => {
                let period = (*period).max(1);
                let phase = (step / period) % 2;
                let inner = if phase == 0 {
                    InterferenceProcess::MusicPlayer
                } else {
                    InterferenceProcess::WebBrowser
                };
                return inner.sample(step, rng);
            }
        };
        (cpu.clamp(0.0, 1.0), mem.clamp(0.0, 1.0))
    }

    /// Whether successive samples can differ.
    pub fn is_stochastic(&self) -> bool {
        !matches!(
            self,
            InterferenceProcess::None | InterferenceProcess::Constant { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn none_is_silent() {
        let mut r = rng();
        assert_eq!(InterferenceProcess::None.sample(0, &mut r), (0.0, 0.0));
        assert!(!InterferenceProcess::None.is_stochastic());
    }

    #[test]
    fn constant_is_constant() {
        let p = InterferenceProcess::cpu_intensive();
        let mut r = rng();
        assert_eq!(p.sample(0, &mut r), p.sample(99, &mut r));
    }

    #[test]
    fn cpu_intensive_presses_cpu_not_memory() {
        let (cpu, mem) = InterferenceProcess::cpu_intensive().sample(0, &mut rng());
        assert!(cpu > 0.75);
        assert!(mem < 0.25);
    }

    #[test]
    fn mem_intensive_presses_memory() {
        let (cpu, mem) = InterferenceProcess::mem_intensive().sample(0, &mut rng());
        assert!(mem > 0.7);
        assert!(cpu < 0.3);
    }

    #[test]
    fn music_player_is_light() {
        let p = InterferenceProcess::MusicPlayer;
        let mut r = rng();
        let mean_cpu: f64 = (0..500).map(|i| p.sample(i, &mut r).0).sum::<f64>() / 500.0;
        assert!((mean_cpu - 0.15).abs() < 0.03, "mean_cpu={mean_cpu}");
    }

    #[test]
    fn web_browser_bursts() {
        let p = InterferenceProcess::WebBrowser;
        let mut r = rng();
        let samples: Vec<f64> = (0..500).map(|i| p.sample(i, &mut r).0).collect();
        let heavy = samples.iter().filter(|&&c| c > 0.6).count() as f64 / 500.0;
        assert!(heavy > 0.2 && heavy < 0.5, "burst fraction {heavy}");
    }

    #[test]
    fn alternating_switches_phase_by_step() {
        let p = InterferenceProcess::Alternating { period: 25 };
        let mut r = rng();
        // Average CPU in the first phase (music) is far below the second
        // phase (browser).
        let phase0: f64 = (0..25).map(|i| p.sample(i, &mut r).0).sum::<f64>() / 25.0;
        let phase1: f64 = (25..50).map(|i| p.sample(i, &mut r).0).sum::<f64>() / 25.0;
        assert!(phase1 > phase0 + 0.1, "phase0={phase0} phase1={phase1}");
    }

    #[test]
    fn samples_stay_in_unit_interval() {
        let mut r = rng();
        for p in [
            InterferenceProcess::MusicPlayer,
            InterferenceProcess::WebBrowser,
            InterferenceProcess::Alternating { period: 10 },
        ] {
            for i in 0..300 {
                let (c, m) = p.sample(i, &mut r);
                assert!((0.0..=1.0).contains(&c));
                assert!((0.0..=1.0).contains(&m));
            }
        }
    }

    #[test]
    fn zero_period_alternation_does_not_panic() {
        let p = InterferenceProcess::Alternating { period: 0 };
        let _ = p.sample(5, &mut rng());
    }
}
