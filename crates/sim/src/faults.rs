//! Deterministic fault injection for the serving stack.
//!
//! The paper's testbed only *degrades* links (weak RSSI makes offloads
//! slow); real edge deployments also see offloads **fail**: access
//! points drop associations, transfers stall past their deadline, a
//! co-runner ignites a thermal burst that throttles the CPU for the
//! next several inferences, and remote servers straggle. This module
//! injects exactly those faults, deterministically:
//!
//! * a [`FaultProfile`] describes *how often* each fault class occurs
//!   (link dropouts and disconnection windows for the edge and cloud
//!   links independently, transfer timeouts, straggler spikes, thermal
//!   bursts);
//! * a [`FaultInjector`] turns a profile plus a seed into a per-request
//!   stream of [`RequestFaults`] plans. The injector owns its own RNG
//!   stream and draws a **fixed number of values per request**, so the
//!   fault schedule is a pure function of `(profile, seed, request
//!   index)` — independent of what the scheduler decides, which shard
//!   runs the session, or whether any fault is ever consumed;
//! * a [`ResiliencePolicy`] describes what the executor does about a
//!   failed offload: deadline-aware per-attempt timeouts, bounded retry
//!   with exponential backoff, and a penalty budget past which it stops
//!   retrying and falls back to the best feasible local target.
//!
//! The executor charges every failed attempt's latency and energy to
//! the request (see
//! [`Simulator::execute_resilient`](crate::Simulator::execute_resilient)),
//! so the Q-learner's reward sees flaky targets exactly the way it sees
//! weak-signal targets — and learns to avoid them.

use autoscale_net::OutageKind;
use autoscale_platform::{ThermalHysteresis, ThermalTracker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Maximum offload attempts per request the fault plan covers: one
/// initial attempt plus up to three retries. [`ResiliencePolicy`]
/// values above this are clamped.
pub const MAX_ATTEMPTS: usize = 4;

/// Exactly how many RNG values [`FaultInjector::next_faults`] consumes
/// per request, one per possible fault site: two disconnection-window
/// draws, [`MAX_ATTEMPTS`] per-attempt draws for each of the two links,
/// one straggler draw, one thermal draw. The stream-discipline lint
/// pass (`autoscale-lint`, rule `divergent-rng-draws`) exists to keep
/// this count branch-independent; change it only together with the
/// pinned `draws_exactly_the_documented_count_per_request` test.
pub const FAULT_DRAWS_PER_REQUEST: usize = 2 + 2 * MAX_ATTEMPTS + 2;

/// Ambient die temperature the burst model decays toward, in °C.
const AMBIENT_TEMP_C: f64 = 30.0;
/// Per-request exponential cooling ratio of the excess die temperature.
const THERMAL_DECAY_RATIO: f64 = 0.7;

/// How often each fault class strikes. All `*_rate` fields are
/// per-draw probabilities; values outside [0, 1] are treated as their
/// clamp (a rate of 2.0 behaves like 1.0), so arbitrary profiles are
/// safe to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Per-attempt probability the peer-to-peer (tablet) link drops.
    pub edge_dropout_rate: f64,
    /// Per-attempt probability the WLAN (cloud) link drops.
    pub cloud_dropout_rate: f64,
    /// Per-attempt probability a peer-to-peer transfer stalls to its
    /// deadline.
    pub edge_timeout_rate: f64,
    /// Per-attempt probability a WLAN transfer stalls to its deadline.
    pub cloud_timeout_rate: f64,
    /// Per-request probability a peer-to-peer disconnection window
    /// opens (the tablet walks out of range for a while).
    pub edge_disconnect_rate: f64,
    /// Per-request probability a WLAN disconnection window opens.
    pub cloud_disconnect_rate: f64,
    /// Length of a disconnection window, in requests. While a window is
    /// open every attempt on that link is a dropout.
    pub disconnect_len: usize,
    /// Per-request probability the remote server straggles.
    pub straggler_rate: f64,
    /// Multiplier on remote compute time during a straggler spike
    /// (values below 1 are treated as 1 — a straggler never speeds
    /// anything up).
    pub straggler_scale: f64,
    /// Per-request probability a thermal burst ignites on the host.
    pub thermal_burst_rate: f64,
    /// Peak die temperature of a burst, in °C. Throttling then follows
    /// the [`ThermalHysteresis`] band as the die cools.
    pub thermal_burst_temp_c: f64,
}

impl FaultProfile {
    /// No faults at all — the zero-cost default. Sessions built with
    /// this profile skip the injector entirely and behave bit-for-bit
    /// like the fault-free serving stack.
    pub fn none() -> Self {
        FaultProfile {
            edge_dropout_rate: 0.0,
            cloud_dropout_rate: 0.0,
            edge_timeout_rate: 0.0,
            cloud_timeout_rate: 0.0,
            edge_disconnect_rate: 0.0,
            cloud_disconnect_rate: 0.0,
            disconnect_len: 0,
            straggler_rate: 0.0,
            straggler_scale: 1.0,
            thermal_burst_rate: 0.0,
            thermal_burst_temp_c: AMBIENT_TEMP_C,
        }
    }

    /// A flaky tablet: the peer-to-peer link drops, stalls, and
    /// occasionally disconnects for several requests; the cloud path is
    /// clean.
    pub fn lossy_edge() -> Self {
        FaultProfile {
            edge_dropout_rate: 0.15,
            edge_timeout_rate: 0.05,
            edge_disconnect_rate: 0.02,
            disconnect_len: 5,
            ..FaultProfile::none()
        }
    }

    /// A flaky WLAN: the cloud path drops, stalls, and occasionally
    /// disconnects; the tablet link is clean.
    pub fn lossy_cloud() -> Self {
        FaultProfile {
            cloud_dropout_rate: 0.15,
            cloud_timeout_rate: 0.05,
            cloud_disconnect_rate: 0.02,
            disconnect_len: 5,
            ..FaultProfile::none()
        }
    }

    /// Both links moderately flaky.
    pub fn flaky() -> Self {
        FaultProfile {
            edge_dropout_rate: 0.08,
            cloud_dropout_rate: 0.08,
            edge_timeout_rate: 0.03,
            cloud_timeout_rate: 0.03,
            edge_disconnect_rate: 0.01,
            cloud_disconnect_rate: 0.01,
            disconnect_len: 4,
            ..FaultProfile::none()
        }
    }

    /// Slow-but-alive failures: remote stragglers and local thermal
    /// bursts, no hard link failures.
    pub fn stragglers() -> Self {
        FaultProfile {
            straggler_rate: 0.2,
            straggler_scale: 4.0,
            thermal_burst_rate: 0.1,
            thermal_burst_temp_c: 48.0,
            ..FaultProfile::none()
        }
    }

    /// Everything at once: both links flaky, stragglers, thermal
    /// bursts.
    pub fn chaos() -> Self {
        FaultProfile {
            straggler_rate: 0.15,
            straggler_scale: 4.0,
            thermal_burst_rate: 0.08,
            thermal_burst_temp_c: 48.0,
            ..FaultProfile::flaky()
        }
    }

    /// The named profiles `--faults` accepts, in display order.
    pub const NAMES: [&'static str; 6] = [
        "none",
        "lossy-edge",
        "lossy-cloud",
        "flaky",
        "stragglers",
        "chaos",
    ];

    /// Resolves a named profile (`none`, `lossy-edge`, `lossy-cloud`,
    /// `flaky`, `stragglers`, `chaos`), case-insensitively.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "none" => Some(FaultProfile::none()),
            "lossy-edge" => Some(FaultProfile::lossy_edge()),
            "lossy-cloud" => Some(FaultProfile::lossy_cloud()),
            "flaky" => Some(FaultProfile::flaky()),
            "stragglers" => Some(FaultProfile::stragglers()),
            "chaos" => Some(FaultProfile::chaos()),
            _ => None,
        }
    }

    /// Whether every fault rate is zero — the profile can never inject
    /// anything, so sessions skip the injector entirely.
    pub fn is_none(&self) -> bool {
        self.edge_dropout_rate <= 0.0
            && self.cloud_dropout_rate <= 0.0
            && self.edge_timeout_rate <= 0.0
            && self.cloud_timeout_rate <= 0.0
            && self.edge_disconnect_rate <= 0.0
            && self.cloud_disconnect_rate <= 0.0
            && self.straggler_rate <= 0.0
            && self.thermal_burst_rate <= 0.0
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

/// The fault plan for one link on one request: what happens to each of
/// up to [`MAX_ATTEMPTS`] offload attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Per-attempt outcome: `None` means the attempt goes through.
    pub attempts: [Option<OutageKind>; MAX_ATTEMPTS],
}

impl LinkFaults {
    /// A link with no faults this request.
    pub fn clean() -> Self {
        LinkFaults {
            attempts: [None; MAX_ATTEMPTS],
        }
    }

    /// A fully disconnected link: every attempt drops.
    pub fn disconnected() -> Self {
        LinkFaults {
            attempts: [Some(OutageKind::Dropout); MAX_ATTEMPTS],
        }
    }

    /// Whether any attempt fails.
    pub fn any(&self) -> bool {
        self.attempts.iter().any(|a| a.is_some())
    }
}

/// The complete fault plan for one request, drawn up front so the
/// schedule never depends on what the scheduler decides.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestFaults {
    /// Index of the request in the session's stream.
    pub index: u64,
    /// Fault plan for the peer-to-peer (tablet) link.
    pub edge: LinkFaults,
    /// Fault plan for the WLAN (cloud) link.
    pub cloud: LinkFaults,
    /// Multiplier on remote compute time this request (1.0 = none).
    pub straggler_ratio: f64,
    /// Thermal frequency cap in force on the host this request, if the
    /// burst model left the die throttled.
    pub thermal_cap: Option<f64>,
}

impl RequestFaults {
    /// A plan that injects nothing — what the fault-free serving path
    /// behaves like.
    pub fn none(index: u64) -> Self {
        RequestFaults {
            index,
            edge: LinkFaults::clean(),
            cloud: LinkFaults::clean(),
            straggler_ratio: 1.0,
            thermal_cap: None,
        }
    }

    /// Whether this plan injects anything at all.
    pub fn any(&self) -> bool {
        self.edge.any()
            || self.cloud.any()
            || self.straggler_ratio > 1.0
            || self.thermal_cap.is_some()
    }
}

impl std::fmt::Display for RequestFaults {
    /// One fixed-width schedule line (`#0007 edge=[D,T,-,-]
    /// cloud=[-,-,-,-] straggle=x1.0 thermal=-`), the format the golden
    /// fault-trace fixture pins.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let link = |l: &LinkFaults| -> String {
            l.attempts
                .iter()
                .map(|a| match a {
                    None => "-",
                    Some(OutageKind::Dropout) => "D",
                    Some(OutageKind::Timeout) => "T",
                })
                .collect::<Vec<_>>()
                .join(",")
        };
        let thermal = match self.thermal_cap {
            Some(cap) => format!("{cap:.2}"),
            None => "-".to_string(),
        };
        write!(
            f,
            "#{:04} edge=[{}] cloud=[{}] straggle=x{:.1} thermal={}",
            self.index,
            link(&self.edge),
            link(&self.cloud),
            self.straggler_ratio,
            thermal
        )
    }
}

/// What the executor does about a failed offload: per-attempt deadline,
/// bounded exponential-backoff retry, and a total penalty budget past
/// which it stops retrying and falls back locally.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResiliencePolicy {
    /// Retries after the first failed attempt (clamped so total
    /// attempts never exceed [`MAX_ATTEMPTS`]).
    pub max_retries: usize,
    /// Backoff before the first retry, in milliseconds.
    pub backoff_base_ms: f64,
    /// Multiplier on the backoff for each further retry.
    pub backoff_factor: f64,
    /// Deadline after which one stalled transfer is abandoned, in
    /// milliseconds.
    pub attempt_timeout_ms: f64,
    /// Total fault penalty past which the executor stops retrying and
    /// falls back to the best local target, in milliseconds.
    pub give_up_ms: f64,
}

impl ResiliencePolicy {
    /// The deadline-aware policy for a scenario with QoS target
    /// `qos_ms`: a stalled transfer is abandoned at the QoS deadline
    /// (waiting longer cannot save the request), retries back off
    /// 2 ms → 4 ms, and the executor gives up once the accumulated
    /// penalty exceeds twice the deadline.
    pub fn for_qos(qos_ms: f64) -> Self {
        ResiliencePolicy {
            max_retries: 2,
            backoff_base_ms: 2.0,
            backoff_factor: 2.0,
            attempt_timeout_ms: qos_ms,
            give_up_ms: 2.0 * qos_ms,
        }
    }

    /// Offload attempts this policy allows per request (initial attempt
    /// plus retries, clamped to the plan depth [`MAX_ATTEMPTS`]).
    pub fn max_attempts(&self) -> usize {
        (self.max_retries + 1).min(MAX_ATTEMPTS)
    }

    /// The backoff before retry number `retry` (0-based), in
    /// milliseconds.
    pub fn backoff_ms(&self, retry: usize) -> f64 {
        self.backoff_base_ms * self.backoff_factor.powi(retry as i32)
    }
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy::for_qos(50.0)
    }
}

/// The seeded per-session fault source.
///
/// Owns a private RNG stream (never shared with the session's
/// environment/exploration stream) and draws a fixed
/// [`FAULT_DRAWS_PER_REQUEST`] values per request — one per possible
/// fault site — so the schedule for request `i` depends only on
/// `(profile, seed, i)`. Disconnection windows and the thermal
/// burst/decay trajectory are the only state, and both advance once
/// per request.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    profile: FaultProfile,
    rng: StdRng,
    /// Requests remaining in an open peer-to-peer disconnection window.
    edge_window_left: usize,
    /// Requests remaining in an open WLAN disconnection window.
    cloud_window_left: usize,
    /// Modelled die temperature, in °C.
    temp_c: f64,
    tracker: ThermalTracker,
    next_index: u64,
}

impl FaultInjector {
    /// Builds an injector for a profile from the session's fault seed.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        FaultInjector {
            profile,
            rng: StdRng::seed_from_u64(seed),
            edge_window_left: 0,
            cloud_window_left: 0,
            temp_c: AMBIENT_TEMP_C,
            tracker: ThermalTracker::new(ThermalHysteresis::phone_default()),
            next_index: 0,
        }
    }

    /// The profile this injector draws from.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// How many requests have been planned so far.
    pub fn planned(&self) -> u64 {
        self.next_index
    }

    /// Draws the fault plan for the next request.
    pub fn next_faults(&mut self) -> RequestFaults {
        let p = self.profile;
        // Fixed draw order, one draw per site, every request:
        // window(edge), window(cloud), 4x attempt(edge),
        // 4x attempt(cloud), straggler, thermal. Keeping the count
        // constant makes the schedule independent of scheduler
        // decisions and of which faults are actually consumed.
        let edge_window_draw: f64 = self.rng.gen();
        let cloud_window_draw: f64 = self.rng.gen();
        if self.edge_window_left == 0 && edge_window_draw < p.edge_disconnect_rate {
            self.edge_window_left = p.disconnect_len;
        }
        if self.cloud_window_left == 0 && cloud_window_draw < p.cloud_disconnect_rate {
            self.cloud_window_left = p.disconnect_len;
        }
        let edge = self.draw_link(
            p.edge_dropout_rate,
            p.edge_timeout_rate,
            self.edge_window_left > 0,
        );
        let cloud = self.draw_link(
            p.cloud_dropout_rate,
            p.cloud_timeout_rate,
            self.cloud_window_left > 0,
        );
        self.edge_window_left = self.edge_window_left.saturating_sub(1);
        self.cloud_window_left = self.cloud_window_left.saturating_sub(1);

        let straggler_draw: f64 = self.rng.gen();
        let straggler_ratio = if straggler_draw < p.straggler_rate {
            p.straggler_scale.max(1.0)
        } else {
            1.0
        };

        let thermal_draw: f64 = self.rng.gen();
        self.temp_c = AMBIENT_TEMP_C + (self.temp_c - AMBIENT_TEMP_C) * THERMAL_DECAY_RATIO;
        if thermal_draw < p.thermal_burst_rate {
            self.temp_c = self.temp_c.max(p.thermal_burst_temp_c);
        }
        let thermal_cap = self.tracker.observe(self.temp_c);

        let index = self.next_index;
        self.next_index += 1;
        RequestFaults {
            index,
            edge,
            cloud,
            straggler_ratio,
            thermal_cap,
        }
    }

    /// Draws one link's per-attempt outcomes. Always consumes exactly
    /// [`MAX_ATTEMPTS`] values; an open disconnection window overrides
    /// them all with dropouts.
    fn draw_link(&mut self, dropout_rate: f64, timeout_rate: f64, window_open: bool) -> LinkFaults {
        let mut attempts = [None; MAX_ATTEMPTS];
        for slot in &mut attempts {
            let draw: f64 = self.rng.gen();
            *slot = if window_open || draw < dropout_rate {
                Some(OutageKind::Dropout)
            } else if draw < dropout_rate + timeout_rate {
                Some(OutageKind::Timeout)
            } else {
                None
            };
        }
        LinkFaults { attempts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_profiles_parse_and_none_is_none() {
        for name in FaultProfile::NAMES {
            assert!(FaultProfile::parse(name).is_some(), "{name}");
        }
        assert!(FaultProfile::parse("CHAOS").is_some(), "case-insensitive");
        assert!(FaultProfile::parse("hurricane").is_none());
        assert!(FaultProfile::none().is_none());
        assert!(FaultProfile::default().is_none());
        for name in &FaultProfile::NAMES[1..] {
            let p = FaultProfile::parse(name).unwrap();
            assert!(!p.is_none(), "{name} must inject something");
        }
    }

    #[test]
    fn same_seed_reproduces_the_schedule() {
        let plan = |seed: u64| -> Vec<RequestFaults> {
            let mut inj = FaultInjector::new(FaultProfile::chaos(), seed);
            (0..64).map(|_| inj.next_faults()).collect()
        };
        assert_eq!(plan(9), plan(9));
        assert_ne!(plan(9), plan(10));
    }

    #[test]
    fn zero_rates_plan_nothing() {
        let mut inj = FaultInjector::new(FaultProfile::none(), 3);
        for i in 0..32 {
            let plan = inj.next_faults();
            assert!(!plan.any(), "{plan}");
            assert_eq!(plan.index, i);
        }
    }

    #[test]
    fn saturated_rates_fail_every_attempt() {
        let profile = FaultProfile {
            edge_dropout_rate: 1.0,
            cloud_dropout_rate: 1.0,
            ..FaultProfile::none()
        };
        let mut inj = FaultInjector::new(profile, 5);
        for _ in 0..16 {
            let plan = inj.next_faults();
            assert_eq!(plan.edge, LinkFaults::disconnected());
            assert_eq!(plan.cloud, LinkFaults::disconnected());
        }
    }

    #[test]
    fn disconnect_window_blankets_attempts_for_its_length() {
        // Force a window on the first request, then nothing else.
        let profile = FaultProfile {
            edge_disconnect_rate: 1.0,
            disconnect_len: 3,
            ..FaultProfile::none()
        };
        let mut inj = FaultInjector::new(profile, 11);
        for i in 0..16 {
            let plan = inj.next_faults();
            // Rate 1.0 reopens the window as soon as it closes, so every
            // request is blanketed; the cloud link stays clean.
            assert_eq!(plan.edge, LinkFaults::disconnected(), "request {i}");
            assert_eq!(plan.cloud, LinkFaults::clean(), "request {i}");
        }
    }

    #[test]
    fn disconnect_window_closes_after_its_length() {
        // One guaranteed window of length 2, then rate 0: requests 0-1
        // are blanketed, request 2 onward is clean.
        let profile = FaultProfile {
            edge_disconnect_rate: 1.0,
            disconnect_len: 2,
            ..FaultProfile::none()
        };
        let mut inj = FaultInjector::new(profile, 13);
        let first = inj.next_faults();
        assert_eq!(first.edge, LinkFaults::disconnected());
        // Close the tap: copy the injector state but zero the rate.
        inj.profile.edge_disconnect_rate = 0.0;
        let second = inj.next_faults();
        assert_eq!(second.edge, LinkFaults::disconnected(), "window persists");
        let third = inj.next_faults();
        assert_eq!(third.edge, LinkFaults::clean(), "window expired");
    }

    #[test]
    fn thermal_burst_throttles_and_decays_through_hysteresis() {
        let profile = FaultProfile {
            thermal_burst_rate: 1.0,
            thermal_burst_temp_c: 48.0,
            ..FaultProfile::none()
        };
        let mut inj = FaultInjector::new(profile, 17);
        let plan = inj.next_faults();
        assert_eq!(plan.thermal_cap, Some(0.6), "burst engages the cap");
        // Stop igniting bursts; the cap must persist while the die cools
        // through the hysteresis band, then lift.
        inj.profile.thermal_burst_rate = 0.0;
        let mut capped = 0;
        let mut released = false;
        for _ in 0..10 {
            match inj.next_faults().thermal_cap {
                Some(_) if !released => capped += 1,
                Some(_) => panic!("cap re-engaged without a burst"),
                None => released = true,
            }
        }
        assert!(capped >= 1, "hysteresis keeps the cap through cooling");
        assert!(released, "the die eventually recovers");
    }

    #[test]
    fn stragglers_stretch_and_never_shrink() {
        let profile = FaultProfile {
            straggler_rate: 1.0,
            straggler_scale: 0.25, // adversarial: below 1 must clamp up
            ..FaultProfile::none()
        };
        let mut inj = FaultInjector::new(profile, 23);
        for _ in 0..8 {
            assert!(inj.next_faults().straggler_ratio >= 1.0);
        }
    }

    #[test]
    fn draw_count_is_fixed_so_sites_are_independent() {
        // Turning one fault class off must not shift any other class's
        // draws: the edge schedule is identical whether or not the
        // thermal/straggler sites fire.
        let with_thermal = FaultProfile {
            edge_dropout_rate: 0.3,
            thermal_burst_rate: 1.0,
            thermal_burst_temp_c: 48.0,
            straggler_rate: 1.0,
            straggler_scale: 3.0,
            ..FaultProfile::none()
        };
        let without = FaultProfile {
            edge_dropout_rate: 0.3,
            ..FaultProfile::none()
        };
        let edges = |profile: FaultProfile| -> Vec<LinkFaults> {
            let mut inj = FaultInjector::new(profile, 29);
            (0..64).map(|_| inj.next_faults().edge).collect()
        };
        assert_eq!(edges(with_thermal), edges(without));
    }

    #[test]
    fn draws_exactly_the_documented_count_per_request() {
        // Pin FAULT_DRAWS_PER_REQUEST against the implementation with a
        // shadow RNG: advancing a fresh stream by exactly that many
        // values per request must keep it bit-identical to the
        // injector's own stream (StdRng implements PartialEq).
        assert_eq!(FAULT_DRAWS_PER_REQUEST, 2 + 2 * MAX_ATTEMPTS + 2);
        let mut inj = FaultInjector::new(FaultProfile::chaos(), 37);
        let mut shadow = StdRng::seed_from_u64(37);
        for request in 0..16 {
            inj.next_faults();
            for _ in 0..FAULT_DRAWS_PER_REQUEST {
                let _: f64 = shadow.gen();
            }
            assert_eq!(
                inj.rng, shadow,
                "draw count drifted from FAULT_DRAWS_PER_REQUEST at request {request}"
            );
        }
    }

    #[test]
    fn schedule_lines_render_fixed_width() {
        let mut inj = FaultInjector::new(FaultProfile::chaos(), 31);
        let line = inj.next_faults().to_string();
        assert!(line.starts_with("#0000 edge=["), "{line}");
        assert!(line.contains("straggle=x"), "{line}");
    }

    #[test]
    fn policy_backoff_is_exponential_and_attempts_clamped() {
        let policy = ResiliencePolicy::for_qos(50.0);
        assert_eq!(policy.backoff_ms(0), 2.0);
        assert_eq!(policy.backoff_ms(1), 4.0);
        assert_eq!(policy.backoff_ms(2), 8.0);
        assert_eq!(policy.max_attempts(), 3);
        let greedy = ResiliencePolicy {
            max_retries: 100,
            ..policy
        };
        assert_eq!(greedy.max_attempts(), MAX_ATTEMPTS);
        assert_eq!(policy.attempt_timeout_ms, 50.0);
        assert_eq!(policy.give_up_ms, 100.0);
    }
}
