//! Inference scenarios and their QoS (latency) targets.
//!
//! Section V-B of the paper: non-streaming vision uses a 50 ms target
//! (below which "users cannot perceive any difference" for interactive
//! responses), streaming vision uses 30 FPS (33.3 ms per frame), and the
//! MobileBERT translation scenario uses 100 ms.

use autoscale_nn::Task;
use serde::{Deserialize, Serialize};

/// A real-time inference scenario with its QoS constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Single camera image in, response expected within 50 ms.
    NonStreaming,
    /// Live camera stream at 30 FPS: each frame within 33.3 ms.
    Streaming,
    /// Keyboard-entered sentence translated within 100 ms.
    Translation,
}

impl Scenario {
    /// All three scenarios.
    pub const ALL: [Scenario; 3] = [
        Scenario::NonStreaming,
        Scenario::Streaming,
        Scenario::Translation,
    ];

    /// The QoS latency target in milliseconds.
    ///
    /// ```
    /// use autoscale_sim::Scenario;
    /// assert_eq!(Scenario::NonStreaming.qos_ms(), 50.0);
    /// assert!((Scenario::Streaming.qos_ms() - 100.0 / 3.0).abs() < 0.05);
    /// assert_eq!(Scenario::Translation.qos_ms(), 100.0);
    /// ```
    pub fn qos_ms(self) -> f64 {
        match self {
            Scenario::NonStreaming => 50.0,
            Scenario::Streaming => 33.3,
            Scenario::Translation => 100.0,
        }
    }

    /// The default scenario for a task: vision tasks are non-streaming
    /// unless the caller opts into streaming; translation is translation.
    pub fn default_for(task: Task) -> Scenario {
        match task {
            Task::ImageClassification | Task::ObjectDetection => Scenario::NonStreaming,
            Task::Translation => Scenario::Translation,
        }
    }

    /// The scenario for a task under rising inference intensity (the
    /// paper's Fig. 10 switch from non-streaming to streaming). Translation
    /// has no streaming variant and keeps its target.
    pub fn streaming_for(task: Task) -> Scenario {
        match task {
            Task::ImageClassification | Task::ObjectDetection => Scenario::Streaming,
            Task::Translation => Scenario::Translation,
        }
    }

    /// Whether `latency_ms` violates this scenario's QoS constraint.
    pub fn violates(self, latency_ms: f64) -> bool {
        latency_ms > self.qos_ms()
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Scenario::NonStreaming => "non-streaming",
            Scenario::Streaming => "streaming",
            Scenario::Translation => "translation",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_targets_match_the_paper() {
        assert_eq!(Scenario::NonStreaming.qos_ms(), 50.0);
        assert_eq!(Scenario::Streaming.qos_ms(), 33.3);
        assert_eq!(Scenario::Translation.qos_ms(), 100.0);
    }

    #[test]
    fn default_scenarios_per_task() {
        assert_eq!(
            Scenario::default_for(Task::ImageClassification),
            Scenario::NonStreaming
        );
        assert_eq!(
            Scenario::default_for(Task::ObjectDetection),
            Scenario::NonStreaming
        );
        assert_eq!(
            Scenario::default_for(Task::Translation),
            Scenario::Translation
        );
    }

    #[test]
    fn streaming_tightens_vision_only() {
        assert_eq!(
            Scenario::streaming_for(Task::ImageClassification),
            Scenario::Streaming
        );
        assert_eq!(
            Scenario::streaming_for(Task::Translation),
            Scenario::Translation
        );
        assert!(Scenario::Streaming.qos_ms() < Scenario::NonStreaming.qos_ms());
    }

    #[test]
    fn violation_boundary_is_exclusive() {
        assert!(!Scenario::NonStreaming.violates(50.0));
        assert!(Scenario::NonStreaming.violates(50.01));
    }
}
