//! The edge-cloud execution simulator for the AutoScale reproduction.
//!
//! This crate stands in for the paper's physical testbed (three phones, a
//! Wi-Fi-Direct-connected tablet, a Xeon+P100 server, and a Monsoon power
//! meter). It composes the platform, network and workload models into an
//! end-to-end answer to the only question the scheduler ever asks:
//!
//! > *If this inference runs **there**, at **that** frequency and
//! > precision, under the **current** runtime variance — what latency,
//! > energy and accuracy come back?*
//!
//! * [`Placement`] / [`Request`] — a fully specified execution decision
//!   (where, at which DVFS step, at which precision);
//! * [`Snapshot`] — the runtime variance visible at inference start
//!   (co-runner CPU/memory pressure, WLAN and P2P signal strength);
//! * [`InterferenceProcess`] — co-running app generators, from static
//!   synthetic loads to the paper's music-player / web-browser traces;
//! * [`Environment`] — the nine Table IV execution environments S1–S5 and
//!   D1–D4;
//! * [`Scenario`] — the QoS targets (50 ms non-streaming, 33.3 ms
//!   streaming, 100 ms translation);
//! * [`Simulator`] — executes a [`Request`] and returns an [`Outcome`],
//!   either as the model's expectation or with measurement noise;
//! * [`FaultProfile`] / [`FaultInjector`] — seeded, deterministic fault
//!   injection (link dropouts, disconnection windows, transfer timeouts,
//!   stragglers, thermal bursts) with a [`ResiliencePolicy`] describing
//!   retry/backoff/fallback behaviour on failed offloads;
//! * [`ArrivalProcess`] / [`ChurnConfig`] — seeded open-loop traffic:
//!   Poisson/bursty/diurnal request-arrival schedules and session
//!   join/leave windows, each a pure function of `(process, seed, index)`
//!   for the discrete-event serving core;
//! * [`Trace`] — a serializable, replayable log of executed inferences.
//!
//! # Example
//!
//! ```
//! use autoscale_nn::{Precision, Workload};
//! use autoscale_platform::{DeviceId, ProcessorKind};
//! use autoscale_sim::{Placement, Request, Simulator, Snapshot};
//!
//! let sim = Simulator::new(DeviceId::Mi8Pro);
//! let request = Request::at_max_frequency(
//!     &sim,
//!     Placement::OnDevice(ProcessorKind::Cpu),
//!     Precision::Fp32,
//! );
//! let outcome = sim
//!     .execute_expected(Workload::MobileNetV3, &request, &Snapshot::calm())
//!     .expect("CPU FP32 always runs");
//! assert!(outcome.latency_ms > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod environment;
pub mod executor;
pub mod faults;
pub mod interference;
pub mod request;
pub mod scenario;
pub mod snapshot;
pub mod trace;

pub use arrivals::{
    Arrival, ArrivalKind, ArrivalProcess, ArrivalSampler, ChurnConfig, ChurnWindow,
    ARRIVAL_DRAWS_PER_EVENT, CHURN_DRAWS_PER_SESSION,
};
pub use environment::{Environment, EnvironmentId};
pub use executor::{ExecutionError, Outcome, PreparedExecutor, ResilientOutcome, Simulator};
pub use faults::{FaultInjector, FaultProfile, LinkFaults, RequestFaults, ResiliencePolicy};
pub use interference::InterferenceProcess;
pub use request::{Placement, Request};
pub use scenario::Scenario;
pub use snapshot::Snapshot;
pub use trace::{Trace, TraceEntry, TraceSummary};
