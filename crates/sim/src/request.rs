//! Execution requests: where an inference runs and with which knobs.

use autoscale_nn::Precision;
use autoscale_platform::ProcessorKind;
use serde::{Deserialize, Serialize};

/// Where an inference executes.
///
/// The paper offloads at model granularity only (Section IV, footnote 4):
/// one inference runs entirely on one processor of one system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Placement {
    /// A processor of the phone itself.
    OnDevice(ProcessorKind),
    /// A processor of the locally connected edge device (the tablet),
    /// reached over the peer-to-peer link.
    ConnectedEdge(ProcessorKind),
    /// A processor of the cloud server, reached over the WLAN.
    Cloud(ProcessorKind),
}

impl Placement {
    /// Whether the inference leaves the phone.
    pub fn is_remote(self) -> bool {
        !matches!(self, Placement::OnDevice(_))
    }

    /// The processor kind the inference lands on.
    pub fn processor_kind(self) -> ProcessorKind {
        match self {
            Placement::OnDevice(k) | Placement::ConnectedEdge(k) | Placement::Cloud(k) => k,
        }
    }

    /// Label used in the paper's figures ("Edge (CPU)", "Cloud (GPU)", ...).
    pub fn paper_label(self) -> String {
        match self {
            Placement::OnDevice(k) => format!("Edge ({k})"),
            Placement::ConnectedEdge(k) => format!("Connected Edge ({k})"),
            Placement::Cloud(k) => format!("Cloud ({k})"),
        }
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.paper_label())
    }
}

/// A fully specified execution decision: placement plus the augmented
/// control knobs (DVFS step and quantization) of the paper's action space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Where the inference runs.
    pub placement: Placement,
    /// Numeric precision of the execution.
    pub precision: Precision,
    /// DVFS step index on the *local* processor. Remote processors always
    /// run at their maximum frequency (the phone cannot set a remote
    /// device's governor), so this field is ignored for remote placements.
    pub freq_index: usize,
}

impl Request {
    /// A request pinned to the target's maximum frequency.
    pub fn at_max_frequency(
        sim: &crate::executor::Simulator,
        placement: Placement,
        precision: Precision,
    ) -> Self {
        let freq_index = sim
            .processor_for(placement)
            .map(|p| p.dvfs().max_index())
            .unwrap_or(0);
        Request {
            placement,
            precision,
            freq_index,
        }
    }
}

impl std::fmt::Display for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} @step{}",
            self.placement, self.precision, self.freq_index
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_classification() {
        assert!(!Placement::OnDevice(ProcessorKind::Cpu).is_remote());
        assert!(Placement::ConnectedEdge(ProcessorKind::Dsp).is_remote());
        assert!(Placement::Cloud(ProcessorKind::Gpu).is_remote());
    }

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(
            Placement::OnDevice(ProcessorKind::Cpu).paper_label(),
            "Edge (CPU)"
        );
        assert_eq!(
            Placement::Cloud(ProcessorKind::Gpu).paper_label(),
            "Cloud (GPU)"
        );
        assert_eq!(
            Placement::ConnectedEdge(ProcessorKind::Dsp).paper_label(),
            "Connected Edge (DSP)"
        );
    }

    #[test]
    fn processor_kind_extraction() {
        assert_eq!(
            Placement::Cloud(ProcessorKind::Gpu).processor_kind(),
            ProcessorKind::Gpu
        );
    }
}
