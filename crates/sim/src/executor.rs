//! The simulator: executes a fully specified request and reports the
//! latency, energy and accuracy the paper's testbed would have measured.

use std::collections::BTreeMap;

use autoscale_net::{FailedTransfer, LinkKind, LinkModel, Transfer};
use autoscale_nn::{accuracy_for, Network, Precision, Workload};
use autoscale_platform::{
    power, Device, DeviceId, ExecutionConditions, NetworkCostCache, Processor, ProcessorKind,
};
use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::faults::{RequestFaults, ResiliencePolicy};
use crate::request::{Placement, Request};
use crate::snapshot::Snapshot;

/// What one executed inference cost and produced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// End-to-end latency in milliseconds (`R_latency`).
    pub latency_ms: f64,
    /// Phone-side energy in millijoules (`R_energy`).
    pub energy_mj: f64,
    /// Inference accuracy in percent (`R_accuracy`).
    pub accuracy: f64,
}

impl Outcome {
    /// Energy efficiency in inferences per joule — the PPW metric of the
    /// paper's figures (see [`power::efficiency_ipj`]).
    pub fn efficiency_ipj(&self) -> f64 {
        power::efficiency_ipj(self.energy_mj)
    }
}

/// Why a request cannot execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionError {
    /// The target device has no processor of the requested kind (e.g. DSP
    /// on the Galaxy S10e).
    NoSuchProcessor(Placement),
    /// The processor cannot execute at the requested precision (e.g. FP32
    /// on a DSP).
    UnsupportedPrecision(Placement),
    /// The middleware cannot run recurrent models on this processor (e.g.
    /// MobileBERT on any mobile co-processor).
    RecurrentUnsupported(Placement),
    /// An offload failed and no local processor can run the workload as a
    /// fallback. Unreachable on the paper's testbeds (the host CPU runs
    /// every workload at FP32), but custom device configurations could
    /// hit it.
    NoLocalFallback(Placement),
}

impl std::fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionError::NoSuchProcessor(p) => {
                write!(f, "no such processor at {p}")
            }
            ExecutionError::UnsupportedPrecision(p) => {
                write!(f, "precision unsupported at {p}")
            }
            ExecutionError::RecurrentUnsupported(p) => {
                write!(f, "recurrent model unsupported at {p}")
            }
            ExecutionError::NoLocalFallback(p) => {
                write!(f, "no feasible local fallback after offload to {p} failed")
            }
        }
    }
}

/// What one fault-aware execution produced: the (possibly penalized)
/// outcome plus an account of what the resilience policy had to do.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilientOutcome {
    /// The measured outcome, with every failed attempt's detection
    /// latency, backoff, and radio energy already charged in.
    pub outcome: Outcome,
    /// The request that actually ran — the original one, or the local
    /// fallback the policy substituted after giving up on the offload.
    pub executed: Request,
    /// Offload attempts that failed (dropouts plus timeouts).
    pub offload_faults: usize,
    /// Backoff-then-retry cycles the policy took.
    pub retries: usize,
    /// Whether the request fell back to local execution.
    pub fell_back: bool,
    /// Fault latency charged on top of the executed request, in
    /// milliseconds.
    pub penalty_ms: f64,
    /// Fault energy charged on top of the executed request, in
    /// millijoules.
    pub penalty_mj: f64,
}

impl ResilientOutcome {
    /// A clean execution: no faults, no penalties, the request ran as
    /// decided.
    fn clean(outcome: Outcome, executed: Request) -> Self {
        ResilientOutcome {
            outcome,
            executed,
            offload_faults: 0,
            retries: 0,
            fell_back: false,
            penalty_ms: 0.0,
            penalty_mj: 0.0,
        }
    }
}

impl std::error::Error for ExecutionError {}

/// Relative standard deviation of latency measurement noise.
const LATENCY_NOISE_STD: f64 = 0.03;
/// Relative standard deviation of energy measurement noise (the paper's
/// utilization-based estimators carry a 7.3% MAPE; a 5% relative sigma
/// lands the simulated MAPE in the same range).
const ENERGY_NOISE_STD: f64 = 0.055;

/// Memoized per-(placement, workload) roofline cost tables.
type CostTables = BTreeMap<(Placement, Workload), NetworkCostCache>;

/// Dense placement slots: three sites × every processor kind.
const PLACEMENT_SLOTS: usize = 3 * ProcessorKind::ALL.len();

/// Dense index of a placement into per-workload slot arrays.
fn placement_slot(placement: Placement) -> usize {
    let (site, kind) = match placement {
        Placement::OnDevice(k) => (0, k),
        Placement::ConnectedEdge(k) => (1, k),
        Placement::Cloud(k) => (2, k),
    };
    site * ProcessorKind::ALL.len() + kind as usize
}

/// The tighter (lower) of two optional frequency-ratio caps.
fn tighter_cap(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (cap, None) => cap,
        (None, cap) => cap,
    }
}

/// The edge-cloud testbed for one host phone: the phone itself, the
/// Wi-Fi-Direct-connected tablet, and the cloud server behind the WLAN.
#[derive(Debug, Clone)]
pub struct Simulator {
    host: Device,
    tablet: Device,
    cloud: Device,
    wlan: LinkModel,
    p2p: LinkModel,
    networks: BTreeMap<Workload, Network>,
    /// Memoized roofline terms for every reachable (placement, workload)
    /// pair, built once at construction (networks are immutable, so the
    /// cache never invalidates). `Workload` doubles as the network id:
    /// there is exactly one canonical [`Network`] per workload.
    cost_tables: CostTables,
}

impl Simulator {
    /// Builds the testbed around a host phone.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not one of the three phones — the tablet and
    /// the cloud server are offloading targets, not AutoScale hosts.
    pub fn new(host: DeviceId) -> Self {
        Self::with_devices(
            Device::for_id(host),
            Device::galaxy_tab_s6(),
            Device::cloud_server(),
        )
    }

    /// Builds a testbed from explicit devices — the hook for the paper's
    /// Section V-C extension configurations (e.g. an NPU-unlocked phone
    /// via [`Device::mi8pro_npu`] or a TPU-equipped cloud via
    /// [`Device::cloud_server_tpu`]).
    ///
    /// # Panics
    ///
    /// Panics if `host` is not a phone.
    pub fn with_devices(host: Device, tablet: Device, cloud: Device) -> Self {
        assert!(host.is_phone(), "the simulator host must be a phone");
        let networks: BTreeMap<Workload, Network> = Workload::ALL
            .iter()
            .map(|&w| (w, Network::workload(w)))
            .collect();
        let cost_tables = Self::build_cost_tables(&host, &tablet, &cloud, &networks);
        Simulator {
            host,
            tablet,
            cloud,
            wlan: LinkModel::for_kind(LinkKind::Wlan),
            p2p: LinkModel::for_kind(LinkKind::PeerToPeer),
            networks,
            cost_tables,
        }
    }

    /// Precomputes the roofline cost tables for every processor reachable
    /// from this testbed and every workload's canonical network.
    fn build_cost_tables(
        host: &Device,
        tablet: &Device,
        cloud: &Device,
        networks: &BTreeMap<Workload, Network>,
    ) -> CostTables {
        type Slot<'a> = (&'a Device, fn(ProcessorKind) -> Placement);
        let slots: [Slot<'_>; 3] = [
            (host, Placement::OnDevice),
            (tablet, Placement::ConnectedEdge),
            (cloud, Placement::Cloud),
        ];
        let mut tables = BTreeMap::new();
        for (device, placement_for) in slots {
            for kind in ProcessorKind::ALL {
                if let Some(processor) = device.processor(kind) {
                    for (&workload, network) in networks {
                        tables.insert(
                            (placement_for(kind), workload),
                            NetworkCostCache::build(processor, network),
                        );
                    }
                }
            }
        }
        tables
    }

    /// The memoized cost tables for a feasible (placement, workload) pair.
    fn cost_cache(&self, placement: Placement, workload: Workload) -> &NetworkCostCache {
        &self.cost_tables[&(placement, workload)]
    }

    /// The host phone.
    pub fn host(&self) -> &Device {
        &self.host
    }

    /// The connected edge device (Galaxy Tab S6).
    pub fn tablet(&self) -> &Device {
        &self.tablet
    }

    /// The cloud server.
    pub fn cloud(&self) -> &Device {
        &self.cloud
    }

    /// The WLAN link model (phone ↔ access point ↔ cloud).
    pub fn wlan(&self) -> &LinkModel {
        &self.wlan
    }

    /// The peer-to-peer link model (phone ↔ tablet).
    pub fn p2p(&self) -> &LinkModel {
        &self.p2p
    }

    /// The cached network for a workload.
    pub fn network(&self, workload: Workload) -> &Network {
        &self.networks[&workload]
    }

    /// The device a placement lands on.
    pub fn device_for(&self, placement: Placement) -> &Device {
        match placement {
            Placement::OnDevice(_) => &self.host,
            Placement::ConnectedEdge(_) => &self.tablet,
            Placement::Cloud(_) => &self.cloud,
        }
    }

    /// The processor a placement lands on, if the device has one.
    pub fn processor_for(&self, placement: Placement) -> Option<&Processor> {
        self.device_for(placement)
            .processor(placement.processor_kind())
    }

    /// Validates that a request can execute for a workload.
    ///
    /// # Errors
    ///
    /// Returns the reason the request is infeasible.
    pub fn check(
        &self,
        workload: Workload,
        request: &Request,
    ) -> Result<&Processor, ExecutionError> {
        let placement = request.placement;
        let processor = self
            .processor_for(placement)
            .ok_or(ExecutionError::NoSuchProcessor(placement))?;
        if !processor.supports_precision(request.precision) {
            return Err(ExecutionError::UnsupportedPrecision(placement));
        }
        if self.network(workload).has_recurrent_layers() && !processor.runs_recurrent() {
            return Err(ExecutionError::RecurrentUnsupported(placement));
        }
        Ok(processor)
    }

    /// Whether a request can execute for a workload.
    pub fn is_feasible(&self, workload: Workload, request: &Request) -> bool {
        self.check(workload, request).is_ok()
    }

    /// Executes a request and returns the *model expectation* — no
    /// measurement noise. This is what the oracle (`Opt`) evaluates when
    /// it enumerates the design space.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecutionError`] if the request is infeasible.
    pub fn execute_expected(
        &self,
        workload: Workload,
        request: &Request,
        snapshot: &Snapshot,
    ) -> Result<Outcome, ExecutionError> {
        self.expected_with_faults(workload, request, snapshot, None, 1.0)
    }

    /// [`Self::execute_expected`] with fault-model overrides: an extra
    /// thermal frequency cap on local execution (from a burst, combined
    /// with the co-runner cap by taking the tighter of the two) and a
    /// straggler stretch on remote compute time.
    fn expected_with_faults(
        &self,
        workload: Workload,
        request: &Request,
        snapshot: &Snapshot,
        burst_cap: Option<f64>,
        compute_stretch: f64,
    ) -> Result<Outcome, ExecutionError> {
        let processor = self.check(workload, request)?;
        let network = self.network(workload);
        let accuracy = accuracy_for(workload).at(request.precision);

        let outcome = match request.placement {
            Placement::OnDevice(_) => on_device_outcome(
                &self.host,
                processor,
                self.cost_cache(request.placement, workload),
                request,
                snapshot,
                burst_cap,
                accuracy,
            ),
            Placement::ConnectedEdge(_) => remote_outcome(
                self.host.base_power_w(),
                network,
                processor,
                self.cost_cache(request.placement, workload),
                &self.tablet,
                &self.p2p,
                snapshot.p2p,
                request,
                accuracy,
                compute_stretch,
            ),
            Placement::Cloud(_) => remote_outcome(
                self.host.base_power_w(),
                network,
                processor,
                self.cost_cache(request.placement, workload),
                &self.cloud,
                &self.wlan,
                snapshot.wlan,
                request,
                accuracy,
                compute_stretch,
            ),
        };
        Ok(outcome)
    }

    /// Executes a request with measurement noise applied to latency and
    /// energy — what the paper's Monsoon meter and timestamps report.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecutionError`] if the request is infeasible.
    pub fn execute_measured(
        &self,
        workload: Workload,
        request: &Request,
        snapshot: &Snapshot,
        rng: &mut StdRng,
    ) -> Result<Outcome, ExecutionError> {
        let expected = self.execute_expected(workload, request, snapshot)?;
        Ok(Self::apply_noise(expected, rng))
    }

    /// Applies measurement noise to an expected outcome. Always draws
    /// exactly two values from `rng`, so callers consume the stream at a
    /// fixed rate per execution.
    fn apply_noise(expected: Outcome, rng: &mut StdRng) -> Outcome {
        // lint:allow(panic-in-lib): the noise std constants are valid Normal parameters
        let lat_noise = Normal::new(1.0, LATENCY_NOISE_STD).expect("valid normal"); // lint:hot-exempt(Normal::new stores (mean, std): allocation-free)
                                                                                    // lint:allow(panic-in-lib): the noise std constants are valid Normal parameters
        let en_noise = Normal::new(1.0, ENERGY_NOISE_STD).expect("valid normal"); // lint:hot-exempt(Normal::new stores (mean, std): allocation-free)
        apply_noise_with(expected, &lat_noise, &en_noise, rng)
    }

    /// Executes a request under a fault plan, applying a resilience
    /// policy when the offload path fails.
    ///
    /// * Local requests run directly; if the plan carries a thermal burst
    ///   cap, it is combined with the co-runner cap (tighter wins).
    /// * Offloads walk the plan's per-attempt outcomes for their link:
    ///   each failed attempt charges its detection latency and radio
    ///   energy (see [`FailedTransfer`]), then the policy backs off
    ///   exponentially and retries — unless the accumulated penalty would
    ///   blow the give-up deadline, in which case it stops early.
    /// * If every allowed attempt fails, the request **falls back** to
    ///   the best feasible local target (minimum expected latency at
    ///   maximum frequency), still carrying the accumulated penalty.
    /// * A successful attempt runs the offload with the plan's straggler
    ///   stretch applied to remote compute time.
    ///
    /// All penalties land in the returned outcome's latency and energy,
    /// so rewards computed from it teach the scheduler to avoid flaky
    /// targets. Exactly two noise values are drawn from `rng` per call,
    /// whatever the fault path, keeping the session RNG stream aligned
    /// with the fault-free path.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecutionError`] if the request is infeasible, or
    /// [`ExecutionError::NoLocalFallback`] if an exhausted offload has no
    /// feasible local substitute.
    pub fn execute_resilient(
        &self,
        workload: Workload,
        request: &Request,
        snapshot: &Snapshot,
        faults: &RequestFaults,
        policy: &ResiliencePolicy,
        rng: &mut StdRng,
    ) -> Result<ResilientOutcome, ExecutionError> {
        self.check(workload, request)?;
        let (link, rssi, plan) = match request.placement {
            Placement::OnDevice(_) => {
                let expected = self.expected_with_faults(
                    workload,
                    request,
                    snapshot,
                    faults.thermal_cap,
                    1.0,
                )?;
                return Ok(ResilientOutcome::clean(
                    Self::apply_noise(expected, rng),
                    *request,
                ));
            }
            Placement::ConnectedEdge(_) => (&self.p2p, snapshot.p2p, &faults.edge),
            Placement::Cloud(_) => (&self.wlan, snapshot.wlan, &faults.cloud),
        };

        let input_bytes = self.network(workload).input_bytes();
        let base_power_w = self.host.base_power_w();
        let mut penalty_ms = 0.0;
        let mut penalty_mj = 0.0;
        let mut offload_faults = 0usize;
        let mut retries = 0usize;
        let mut connected = false;
        for attempt in 0..policy.max_attempts() {
            match plan.attempts[attempt] {
                None => {
                    connected = true;
                    break;
                }
                Some(kind) => {
                    offload_faults += 1;
                    let failed = FailedTransfer::compute(
                        link,
                        rssi,
                        kind,
                        input_bytes,
                        policy.attempt_timeout_ms,
                    );
                    // The phone burns its base power for the whole
                    // detection window on top of the radio's share.
                    penalty_ms += failed.detect_ms;
                    penalty_mj += failed.radio_energy_mj + base_power_w * failed.detect_ms;
                    if attempt + 1 < policy.max_attempts() {
                        let backoff_ms = policy.backoff_ms(retries);
                        if penalty_ms + backoff_ms > policy.give_up_ms {
                            // Deadline-aware: another cycle cannot make
                            // the QoS target, stop retrying.
                            break;
                        }
                        penalty_ms += backoff_ms;
                        penalty_mj += base_power_w * backoff_ms;
                        retries += 1;
                    }
                }
            }
        }

        let (expected, executed, fell_back) = if connected {
            let expected = self.expected_with_faults(
                workload,
                request,
                snapshot,
                None,
                faults.straggler_ratio,
            )?;
            (expected, *request, false)
        } else {
            let fallback = self
                .best_local_fallback(workload, snapshot, faults.thermal_cap)
                .ok_or(ExecutionError::NoLocalFallback(request.placement))?;
            let expected =
                self.expected_with_faults(workload, &fallback, snapshot, faults.thermal_cap, 1.0)?;
            (expected, fallback, true)
        };
        let measured = Self::apply_noise(expected, rng);
        Ok(ResilientOutcome {
            outcome: Outcome {
                latency_ms: measured.latency_ms + penalty_ms,
                energy_mj: measured.energy_mj + penalty_mj,
                accuracy: measured.accuracy,
            },
            executed,
            offload_faults,
            retries,
            fell_back,
            penalty_ms,
            penalty_mj,
        })
    }

    /// The best local substitute for a failed offload: among the host's
    /// feasible (processor, precision) pairs at maximum frequency, the
    /// request with the lowest expected latency under the current
    /// snapshot (and any thermal burst cap). Deterministic — iterates
    /// fixed arrays in a fixed order.
    pub fn best_local_fallback(
        &self,
        workload: Workload,
        snapshot: &Snapshot,
        burst_cap: Option<f64>,
    ) -> Option<Request> {
        let mut best: Option<(f64, Request)> = None;
        for kind in ProcessorKind::ALL {
            let placement = Placement::OnDevice(kind);
            if self.processor_for(placement).is_none() {
                continue;
            }
            for precision in Precision::ALL {
                let req = Request::at_max_frequency(self, placement, precision);
                let Ok(outcome) =
                    self.expected_with_faults(workload, &req, snapshot, burst_cap, 1.0)
                else {
                    continue;
                };
                if best.is_none_or(|(best_ms, _)| outcome.latency_ms < best_ms) {
                    best = Some((outcome.latency_ms, req));
                }
            }
        }
        best.map(|(_, req)| req)
    }

    /// Prepares the executor's batch interface for one workload: every
    /// per-workload lookup (network, recurrent-support flag, accuracy
    /// table, per-placement processor and roofline cache, noise
    /// distributions) resolved once, so a serving loop issuing thousands
    /// of requests for the same workload pays none of them per request.
    pub fn prepare(&self, workload: Workload) -> PreparedExecutor<'_> {
        let network = self.network(workload);
        let mut slots = [None; PLACEMENT_SLOTS];
        type Slot<'a> = (&'a Device, fn(ProcessorKind) -> Placement);
        let sites: [Slot<'_>; 3] = [
            (&self.host, Placement::OnDevice),
            (&self.tablet, Placement::ConnectedEdge),
            (&self.cloud, Placement::Cloud),
        ];
        for (device, placement_for) in sites {
            for kind in ProcessorKind::ALL {
                if let Some(processor) = device.processor(kind) {
                    let placement = placement_for(kind); // lint:hot-exempt(placement_for is a local fn pointer from the sites table above; every target is a workspace placement fn)
                    slots[placement_slot(placement)] =
                        Some((processor, self.cost_cache(placement, workload)));
                }
            }
        }
        // lint:allow(panic-in-lib): the noise std constants are valid Normal parameters
        let lat_noise = Normal::new(1.0, LATENCY_NOISE_STD).expect("valid normal"); // lint:hot-exempt(Normal::new stores (mean, std): allocation-free)
                                                                                    // lint:allow(panic-in-lib): the noise std constants are valid Normal parameters
        let en_noise = Normal::new(1.0, ENERGY_NOISE_STD).expect("valid normal"); // lint:hot-exempt(Normal::new stores (mean, std): allocation-free)
        PreparedExecutor {
            sim: self,
            workload,
            network,
            recurrent: network.has_recurrent_layers(),
            accuracy: accuracy_for(workload),
            slots,
            lat_noise,
            en_noise,
        }
    }
}

/// Computes the outcome of an on-device inference: roofline latency under
/// the current execution conditions plus the phone's compute energy.
fn on_device_outcome(
    host: &Device,
    processor: &Processor,
    cache: &NetworkCostCache,
    request: &Request,
    snapshot: &Snapshot,
    burst_cap: Option<f64>,
    accuracy: f64,
) -> Outcome {
    let cond = ExecutionConditions {
        freq_index: request.freq_index.min(processor.dvfs().max_index()),
        precision: request.precision,
        compute_availability: snapshot.cpu_availability(),
        mem_availability: snapshot.mem_availability(),
        thermal_cap: tighter_cap(host.thermal().cap_for(snapshot.co_cpu), burst_cap),
    };
    let latency_ms = cache.latency_ms(processor, &cond);
    let energy = power::on_device_energy_mj(processor, &cond, latency_ms, host.base_power_w());
    Outcome {
        latency_ms,
        energy_mj: energy.total_mj(),
        accuracy,
    }
}

/// Computes the outcome of an offloaded inference, per the paper's
/// eq. (4): radio energy for the transfers plus idle-wait energy while
/// the remote system computes.
#[allow(clippy::too_many_arguments)] // private helper mirroring eq. (4)'s terms
fn remote_outcome(
    host_base_power_w: f64,
    network: &Network,
    processor: &Processor,
    cache: &NetworkCostCache,
    remote: &Device,
    link: &LinkModel,
    rssi: autoscale_net::Rssi,
    request: &Request,
    accuracy: f64,
    compute_stretch: f64,
) -> Outcome {
    let transfer = Transfer::compute(link, network.input_bytes(), network.output_bytes(), rssi);
    // Remote systems are uncontended and run at maximum frequency: the
    // phone can neither observe nor control their governors. A
    // straggler spike stretches the remote compute time (the wire
    // time is untouched — the link is fine, the server is slow).
    let cond = ExecutionConditions::max_frequency(processor, request.precision);
    let remote_ms =
        (cache.latency_ms(processor, &cond) + remote.serving_overhead_ms()) * compute_stretch;
    let latency_ms = transfer.wire_ms() + remote_ms;
    // Phone-side energy (eq. 4): TX + RX bursts, then base + radio-wait
    // power for the remainder of the round trip.
    let wait_ms = latency_ms - transfer.tx_ms - transfer.rx_ms;
    let energy_mj =
        transfer.radio_energy_mj() + (host_base_power_w + transfer.wait_power_w) * wait_ms;
    Outcome {
        latency_ms,
        energy_mj,
        accuracy,
    }
}

/// Applies measurement noise with pre-built distributions. Always draws
/// exactly two values from `rng` — the fixed per-execution stream rate
/// every caller (and the determinism contract) relies on.
fn apply_noise_with(
    expected: Outcome,
    lat_noise: &Normal,
    en_noise: &Normal,
    rng: &mut StdRng,
) -> Outcome {
    Outcome {
        latency_ms: expected.latency_ms * lat_noise.sample(rng).max(0.7),
        energy_mj: expected.energy_mj * en_noise.sample(rng).max(0.7),
        accuracy: expected.accuracy,
    }
}

/// The executor's batch interface: a per-workload view of the simulator
/// with every workload-constant lookup hoisted out of the request path.
///
/// Built by [`Simulator::prepare`] once per (session, workload) and used
/// for every request in the batch. Outcomes are bit-identical to the
/// corresponding [`Simulator`] methods — both run the same private
/// outcome helpers on the same memoized cost tables, and the noise
/// distributions carry the same parameters — which
/// `executor::tests::prepared_executor_matches_the_simulator` pins.
#[derive(Debug, Clone)]
pub struct PreparedExecutor<'a> {
    sim: &'a Simulator,
    workload: Workload,
    network: &'a Network,
    /// Whether the workload has recurrent layers (feasibility gating).
    recurrent: bool,
    accuracy: autoscale_nn::AccuracyTable,
    /// `(processor, cost cache)` per placement slot; `None` where the
    /// site has no processor of that kind.
    slots: [Option<(&'a Processor, &'a NetworkCostCache)>; PLACEMENT_SLOTS],
    lat_noise: Normal,
    en_noise: Normal,
}

impl<'a> PreparedExecutor<'a> {
    /// The workload this view serves.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// The underlying simulator.
    pub fn simulator(&self) -> &'a Simulator {
        self.sim
    }

    /// The feasibility-checked (processor, cost cache) pair of a request.
    fn checked_slot(
        &self,
        request: &Request,
    ) -> Result<(&'a Processor, &'a NetworkCostCache), ExecutionError> {
        let placement = request.placement;
        let (processor, cache) = self.slots[placement_slot(placement)]
            .ok_or(ExecutionError::NoSuchProcessor(placement))?;
        if !processor.supports_precision(request.precision) {
            return Err(ExecutionError::UnsupportedPrecision(placement));
        }
        if self.recurrent && !processor.runs_recurrent() {
            return Err(ExecutionError::RecurrentUnsupported(placement));
        }
        Ok((processor, cache))
    }

    /// [`Simulator::execute_expected`] through the prepared view.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecutionError`] if the request is infeasible.
    pub fn execute_expected(
        &self,
        request: &Request,
        snapshot: &Snapshot,
    ) -> Result<Outcome, ExecutionError> {
        let (processor, cache) = self.checked_slot(request)?;
        let accuracy = self.accuracy.at(request.precision);
        let outcome = match request.placement {
            Placement::OnDevice(_) => on_device_outcome(
                &self.sim.host,
                processor,
                cache,
                request,
                snapshot,
                None,
                accuracy,
            ),
            Placement::ConnectedEdge(_) => remote_outcome(
                self.sim.host.base_power_w(),
                self.network,
                processor,
                cache,
                &self.sim.tablet,
                &self.sim.p2p,
                snapshot.p2p,
                request,
                accuracy,
                1.0,
            ),
            Placement::Cloud(_) => remote_outcome(
                self.sim.host.base_power_w(),
                self.network,
                processor,
                cache,
                &self.sim.cloud,
                &self.sim.wlan,
                snapshot.wlan,
                request,
                accuracy,
                1.0,
            ),
        };
        Ok(outcome)
    }

    /// [`Simulator::execute_measured`] through the prepared view: the
    /// expected outcome with the same two noise draws applied.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecutionError`] if the request is infeasible.
    pub fn execute_measured(
        &self,
        request: &Request,
        snapshot: &Snapshot,
        rng: &mut StdRng,
    ) -> Result<Outcome, ExecutionError> {
        let expected = self.execute_expected(request, snapshot)?;
        Ok(apply_noise_with(
            expected,
            &self.lat_noise,
            &self.en_noise,
            rng,
        ))
    }

    /// [`Simulator::execute_resilient`] for this view's workload. Fault
    /// handling is rare and branchy, so it delegates to the simulator's
    /// full path rather than duplicating it — the clean-path speedup is
    /// where batching pays.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecutionError`] if the request is infeasible, or
    /// [`ExecutionError::NoLocalFallback`] if an exhausted offload has no
    /// feasible local substitute.
    pub fn execute_resilient(
        &self,
        request: &Request,
        snapshot: &Snapshot,
        faults: &RequestFaults,
        policy: &ResiliencePolicy,
        rng: &mut StdRng,
    ) -> Result<ResilientOutcome, ExecutionError> {
        self.sim
            .execute_resilient(self.workload, request, snapshot, faults, policy, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoscale_nn::Precision;
    use autoscale_platform::ProcessorKind;
    use rand::SeedableRng;

    fn sim() -> Simulator {
        Simulator::new(DeviceId::Mi8Pro)
    }

    fn max_req(sim: &Simulator, placement: Placement, precision: Precision) -> Request {
        Request::at_max_frequency(sim, placement, precision)
    }

    #[test]
    fn cpu_fp32_executes_everywhere() {
        let sim = sim();
        for w in Workload::ALL {
            for placement in [
                Placement::OnDevice(ProcessorKind::Cpu),
                Placement::ConnectedEdge(ProcessorKind::Cpu),
                Placement::Cloud(ProcessorKind::Cpu),
            ] {
                let req = max_req(&sim, placement, Precision::Fp32);
                let out = sim.execute_expected(w, &req, &Snapshot::calm()).unwrap();
                assert!(
                    out.latency_ms > 0.0 && out.energy_mj > 0.0,
                    "{w} {placement}"
                );
            }
        }
    }

    #[test]
    fn s10e_has_no_dsp() {
        let sim = Simulator::new(DeviceId::GalaxyS10e);
        let req = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Dsp),
            Precision::Int8,
        );
        assert_eq!(
            sim.execute_expected(Workload::InceptionV1, &req, &Snapshot::calm()),
            Err(ExecutionError::NoSuchProcessor(Placement::OnDevice(
                ProcessorKind::Dsp
            )))
        );
    }

    #[test]
    fn dsp_rejects_fp32_and_recurrent() {
        let sim = sim();
        let fp32 = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Dsp),
            Precision::Fp32,
        );
        assert!(matches!(
            sim.execute_expected(Workload::InceptionV1, &fp32, &Snapshot::calm()),
            Err(ExecutionError::UnsupportedPrecision(_))
        ));
        let int8 = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Dsp),
            Precision::Int8,
        );
        assert!(matches!(
            sim.execute_expected(Workload::MobileBert, &int8, &Snapshot::calm()),
            Err(ExecutionError::RecurrentUnsupported(_))
        ));
    }

    #[test]
    fn mobile_gpu_rejects_recurrent_but_cloud_gpu_runs_it() {
        let sim = sim();
        let mobile = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Gpu),
            Precision::Fp32,
        );
        assert!(!sim.is_feasible(Workload::MobileBert, &mobile));
        let cloud = max_req(&sim, Placement::Cloud(ProcessorKind::Gpu), Precision::Fp32);
        assert!(sim.is_feasible(Workload::MobileBert, &cloud));
    }

    #[test]
    fn cpu_interference_slows_and_costs_on_device_cpu() {
        let sim = sim();
        let req = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Fp32,
        );
        let calm = sim
            .execute_expected(Workload::MobileNetV3, &req, &Snapshot::calm())
            .unwrap();
        let loaded = Snapshot::new(0.85, 0.1, Snapshot::calm().wlan, Snapshot::calm().p2p);
        let contended = sim
            .execute_expected(Workload::MobileNetV3, &req, &loaded)
            .unwrap();
        assert!(contended.latency_ms > 1.5 * calm.latency_ms);
        assert!(contended.efficiency_ipj() < calm.efficiency_ipj());
    }

    #[test]
    fn weak_wlan_hurts_cloud_but_not_connected_edge() {
        let sim = sim();
        let cloud = max_req(&sim, Placement::Cloud(ProcessorKind::Gpu), Precision::Fp32);
        let edge = max_req(
            &sim,
            Placement::ConnectedEdge(ProcessorKind::Gpu),
            Precision::Fp32,
        );
        let calm = Snapshot::calm();
        let weak_wlan = Snapshot::new(0.0, 0.0, autoscale_net::Rssi::WEAK, calm.p2p);
        let w = Workload::ResNet50;
        let cloud_calm = sim.execute_expected(w, &cloud, &calm).unwrap();
        let cloud_weak = sim.execute_expected(w, &cloud, &weak_wlan).unwrap();
        let edge_calm = sim.execute_expected(w, &edge, &calm).unwrap();
        let edge_weak = sim.execute_expected(w, &edge, &weak_wlan).unwrap();
        assert!(cloud_weak.latency_ms > 3.0 * cloud_calm.latency_ms);
        assert!((edge_weak.latency_ms - edge_calm.latency_ms).abs() < 1e-9);
    }

    #[test]
    fn interference_does_not_touch_remote_compute() {
        let sim = sim();
        let req = max_req(&sim, Placement::Cloud(ProcessorKind::Gpu), Precision::Fp32);
        let calm = sim
            .execute_expected(Workload::ResNet50, &req, &Snapshot::calm())
            .unwrap();
        let loaded = Snapshot::new(0.9, 0.9, Snapshot::calm().wlan, Snapshot::calm().p2p);
        let contended = sim
            .execute_expected(Workload::ResNet50, &req, &loaded)
            .unwrap();
        assert!((contended.latency_ms - calm.latency_ms).abs() < 1e-9);
    }

    #[test]
    fn measured_outcome_is_noisy_but_unbiased() {
        let sim = sim();
        let req = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Fp32,
        );
        let expected = sim
            .execute_expected(Workload::MobileNetV1, &req, &Snapshot::calm())
            .unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 400;
        let mut lat_sum = 0.0;
        let mut any_diff = false;
        for _ in 0..n {
            let m = sim
                .execute_measured(Workload::MobileNetV1, &req, &Snapshot::calm(), &mut rng)
                .unwrap();
            lat_sum += m.latency_ms;
            if (m.latency_ms - expected.latency_ms).abs() > 1e-9 {
                any_diff = true;
            }
        }
        let mean = lat_sum / n as f64;
        assert!(any_diff);
        assert!(
            (mean / expected.latency_ms - 1.0).abs() < 0.01,
            "mean ratio {}",
            mean / expected.latency_ms
        );
    }

    #[test]
    fn accuracy_follows_precision_not_placement() {
        let sim = sim();
        let cpu_int8 = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Int8,
        );
        let dsp_int8 = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Dsp),
            Precision::Int8,
        );
        let calm = Snapshot::calm();
        let a = sim
            .execute_expected(Workload::InceptionV1, &cpu_int8, &calm)
            .unwrap();
        let b = sim
            .execute_expected(Workload::InceptionV1, &dsp_int8, &calm)
            .unwrap();
        assert_eq!(a.accuracy, b.accuracy);
        let fp32 = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Fp32,
        );
        let c = sim
            .execute_expected(Workload::InceptionV1, &fp32, &calm)
            .unwrap();
        assert!(c.accuracy > a.accuracy);
    }

    #[test]
    fn freq_index_is_clamped_to_ladder() {
        let sim = sim();
        let req = Request {
            placement: Placement::OnDevice(ProcessorKind::Cpu),
            precision: Precision::Fp32,
            freq_index: 10_000,
        };
        let clamped = sim
            .execute_expected(Workload::MobileNetV1, &req, &Snapshot::calm())
            .unwrap();
        let max = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Fp32,
        );
        let at_max = sim
            .execute_expected(Workload::MobileNetV1, &max, &Snapshot::calm())
            .unwrap();
        assert!((clamped.latency_ms - at_max.latency_ms).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "host must be a phone")]
    fn tablet_cannot_host() {
        let _ = Simulator::new(DeviceId::GalaxyTabS6);
    }

    #[test]
    fn resilient_clean_plan_matches_measured_execution() {
        // With an empty fault plan, execute_resilient must be
        // draw-for-draw identical to execute_measured — the invariant the
        // zero-cost default rests on.
        let sim = sim();
        let clean = crate::faults::RequestFaults::none(0);
        let policy = crate::faults::ResiliencePolicy::for_qos(50.0);
        for placement in [
            Placement::OnDevice(ProcessorKind::Cpu),
            Placement::ConnectedEdge(ProcessorKind::Gpu),
            Placement::Cloud(ProcessorKind::Gpu),
        ] {
            let req = max_req(&sim, placement, Precision::Fp32);
            let mut rng_a = StdRng::seed_from_u64(99);
            let mut rng_b = StdRng::seed_from_u64(99);
            let measured = sim
                .execute_measured(Workload::ResNet50, &req, &Snapshot::calm(), &mut rng_a)
                .unwrap();
            let resilient = sim
                .execute_resilient(
                    Workload::ResNet50,
                    &req,
                    &Snapshot::calm(),
                    &clean,
                    &policy,
                    &mut rng_b,
                )
                .unwrap();
            assert_eq!(resilient.outcome, measured, "{placement}");
            assert_eq!(resilient.executed, req);
            assert_eq!(resilient.offload_faults, 0);
            assert_eq!(resilient.retries, 0);
            assert!(!resilient.fell_back);
        }
    }

    #[test]
    fn one_dropout_retries_and_charges_the_penalty() {
        let sim = sim();
        let req = max_req(&sim, Placement::Cloud(ProcessorKind::Gpu), Precision::Fp32);
        let policy = crate::faults::ResiliencePolicy::for_qos(200.0);
        let mut faults = crate::faults::RequestFaults::none(0);
        faults.cloud.attempts[0] = Some(autoscale_net::OutageKind::Dropout);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let clean = sim
            .execute_measured(Workload::ResNet50, &req, &Snapshot::calm(), &mut rng_a)
            .unwrap();
        let r = sim
            .execute_resilient(
                Workload::ResNet50,
                &req,
                &Snapshot::calm(),
                &faults,
                &policy,
                &mut rng_b,
            )
            .unwrap();
        assert_eq!(r.offload_faults, 1);
        assert_eq!(r.retries, 1);
        assert!(!r.fell_back);
        assert!(r.penalty_ms > 0.0 && r.penalty_mj > 0.0);
        assert!((r.outcome.latency_ms - clean.latency_ms - r.penalty_ms).abs() < 1e-9);
        assert!((r.outcome.energy_mj - clean.energy_mj - r.penalty_mj).abs() < 1e-9);
    }

    #[test]
    fn exhausted_offload_falls_back_to_best_local_target() {
        let sim = sim();
        let req = max_req(&sim, Placement::Cloud(ProcessorKind::Gpu), Precision::Fp32);
        let policy = crate::faults::ResiliencePolicy::for_qos(1_000.0);
        let mut faults = crate::faults::RequestFaults::none(0);
        faults.cloud = crate::faults::LinkFaults::disconnected();
        let mut rng = StdRng::seed_from_u64(7);
        let r = sim
            .execute_resilient(
                Workload::InceptionV1,
                &req,
                &Snapshot::calm(),
                &faults,
                &policy,
                &mut rng,
            )
            .unwrap();
        assert!(r.fell_back);
        assert_eq!(r.offload_faults, policy.max_attempts());
        assert!(matches!(r.executed.placement, Placement::OnDevice(_)));
        // The fallback is the fastest feasible local target.
        let best = sim
            .best_local_fallback(Workload::InceptionV1, &Snapshot::calm(), None)
            .unwrap();
        assert_eq!(r.executed, best);
        assert!(r.penalty_ms > 0.0);
    }

    #[test]
    fn give_up_deadline_stops_retrying_early() {
        let sim = sim();
        let req = max_req(&sim, Placement::Cloud(ProcessorKind::Gpu), Precision::Fp32);
        // A timeout burns ~attempt_timeout_ms per attempt; a give-up
        // budget of one deadline leaves no room for a second attempt.
        let policy = crate::faults::ResiliencePolicy {
            max_retries: 3,
            backoff_base_ms: 2.0,
            backoff_factor: 2.0,
            attempt_timeout_ms: 100.0,
            give_up_ms: 100.0,
        };
        let mut faults = crate::faults::RequestFaults::none(0);
        faults.cloud.attempts =
            [Some(autoscale_net::OutageKind::Timeout); crate::faults::MAX_ATTEMPTS];
        let mut rng = StdRng::seed_from_u64(7);
        let r = sim
            .execute_resilient(
                Workload::InceptionV1,
                &req,
                &Snapshot::calm(),
                &faults,
                &policy,
                &mut rng,
            )
            .unwrap();
        assert!(r.fell_back);
        assert_eq!(r.offload_faults, 1, "deadline blocked further retries");
        assert_eq!(r.retries, 0);
    }

    #[test]
    fn straggler_stretch_slows_remote_but_not_wire_or_local() {
        let sim = sim();
        let cloud = max_req(&sim, Placement::Cloud(ProcessorKind::Gpu), Precision::Fp32);
        let local = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Fp32,
        );
        let calm = Snapshot::calm();
        let plain = sim
            .expected_with_faults(Workload::ResNet50, &cloud, &calm, None, 1.0)
            .unwrap();
        let stretched = sim
            .expected_with_faults(Workload::ResNet50, &cloud, &calm, None, 4.0)
            .unwrap();
        assert!(stretched.latency_ms > plain.latency_ms);
        assert!(
            stretched.latency_ms < 4.0 * plain.latency_ms,
            "wire time is not stretched"
        );
        let local_plain = sim
            .expected_with_faults(Workload::ResNet50, &local, &calm, None, 1.0)
            .unwrap();
        let local_stretched = sim
            .expected_with_faults(Workload::ResNet50, &local, &calm, None, 4.0)
            .unwrap();
        assert_eq!(local_plain, local_stretched, "stretch is remote-only");
    }

    #[test]
    fn burst_cap_slows_local_execution_and_combines_tighter() {
        let sim = sim();
        let req = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Fp32,
        );
        let calm = Snapshot::calm();
        let free = sim
            .expected_with_faults(Workload::ResNet50, &req, &calm, None, 1.0)
            .unwrap();
        let capped = sim
            .expected_with_faults(Workload::ResNet50, &req, &calm, Some(0.6), 1.0)
            .unwrap();
        assert!(capped.latency_ms > free.latency_ms);
        assert_eq!(tighter_cap(Some(0.6), Some(0.8)), Some(0.6));
        assert_eq!(tighter_cap(None, Some(0.8)), Some(0.8));
        assert_eq!(tighter_cap(Some(0.5), None), Some(0.5));
        assert_eq!(tighter_cap(None, None), None);
    }

    #[test]
    fn fallback_skips_processors_that_cannot_run_the_workload() {
        // MobileBERT is recurrent: no mobile co-processor runs it, so the
        // fallback must land on the host CPU.
        let sim = sim();
        let best = sim
            .best_local_fallback(Workload::MobileBert, &Snapshot::calm(), None)
            .unwrap();
        assert_eq!(best.placement, Placement::OnDevice(ProcessorKind::Cpu));
    }

    #[test]
    fn prepared_executor_matches_the_simulator() {
        // The batch interface must be bit-identical to the per-request
        // API: same outcomes, same errors, same RNG draws.
        let sim = sim();
        let calm = Snapshot::calm();
        let busy = Snapshot::new(0.6, 0.3, calm.wlan, calm.p2p);
        for w in [
            Workload::MobileNetV1,
            Workload::ResNet50,
            Workload::MobileBert,
        ] {
            let prepared = sim.prepare(w);
            assert_eq!(prepared.workload(), w);
            for site in [
                Placement::OnDevice as fn(ProcessorKind) -> Placement,
                Placement::ConnectedEdge,
                Placement::Cloud,
            ] {
                for kind in ProcessorKind::ALL {
                    for precision in Precision::ALL {
                        let placement = site(kind);
                        if sim.processor_for(placement).is_none() {
                            let req = Request {
                                placement,
                                precision,
                                freq_index: 0,
                            };
                            assert_eq!(
                                prepared.execute_expected(&req, &calm),
                                sim.execute_expected(w, &req, &calm)
                            );
                            continue;
                        }
                        let req = max_req(&sim, placement, precision);
                        for snapshot in [&calm, &busy] {
                            assert_eq!(
                                prepared.execute_expected(&req, snapshot),
                                sim.execute_expected(w, &req, snapshot),
                                "{w} {placement} {precision:?}"
                            );
                            let mut rng_a = StdRng::seed_from_u64(31);
                            let mut rng_b = StdRng::seed_from_u64(31);
                            assert_eq!(
                                prepared.execute_measured(&req, snapshot, &mut rng_a),
                                sim.execute_measured(w, &req, snapshot, &mut rng_b),
                            );
                            assert_eq!(rng_a, rng_b, "draw counts diverged");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn prepared_resilient_matches_the_simulator() {
        let sim = sim();
        let prepared = sim.prepare(Workload::ResNet50);
        let policy = crate::faults::ResiliencePolicy::for_qos(50.0);
        let mut faults = crate::faults::RequestFaults::none(0);
        faults.cloud.attempts[0] = Some(autoscale_net::OutageKind::Dropout);
        let req = max_req(&sim, Placement::Cloud(ProcessorKind::Gpu), Precision::Fp32);
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut rng_b = StdRng::seed_from_u64(8);
        let a = prepared
            .execute_resilient(&req, &Snapshot::calm(), &faults, &policy, &mut rng_a)
            .unwrap();
        let b = sim
            .execute_resilient(
                Workload::ResNet50,
                &req,
                &Snapshot::calm(),
                &faults,
                &policy,
                &mut rng_b,
            )
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(rng_a, rng_b);
    }

    #[test]
    fn custom_testbed_uses_the_given_devices() {
        let sim = Simulator::with_devices(
            autoscale_platform::Device::mi8pro_npu(),
            autoscale_platform::Device::galaxy_tab_s6(),
            autoscale_platform::Device::cloud_server_tpu(),
        );
        assert!(sim.host().processor(ProcessorKind::Npu).is_some());
        assert!(sim.cloud().processor(ProcessorKind::Npu).is_some());
        // The NPU runs vision models at INT8 but not recurrent ones.
        let npu = Request::at_max_frequency(
            &sim,
            Placement::OnDevice(ProcessorKind::Npu),
            Precision::Int8,
        );
        assert!(sim.is_feasible(Workload::InceptionV1, &npu));
        assert!(!sim.is_feasible(Workload::MobileBert, &npu));
        // The cloud TPU runs everything, at FP16.
        let tpu =
            Request::at_max_frequency(&sim, Placement::Cloud(ProcessorKind::Npu), Precision::Fp16);
        assert!(sim.is_feasible(Workload::MobileBert, &tpu));
    }
}
