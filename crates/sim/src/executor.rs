//! The simulator: executes a fully specified request and reports the
//! latency, energy and accuracy the paper's testbed would have measured.

use std::collections::BTreeMap;

use autoscale_net::{LinkKind, LinkModel, Transfer};
use autoscale_nn::{accuracy_for, Network, Workload};
use autoscale_platform::{
    power, Device, DeviceId, ExecutionConditions, NetworkCostCache, Processor, ProcessorKind,
};
use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::request::{Placement, Request};
use crate::snapshot::Snapshot;

/// What one executed inference cost and produced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// End-to-end latency in milliseconds (`R_latency`).
    pub latency_ms: f64,
    /// Phone-side energy in millijoules (`R_energy`).
    pub energy_mj: f64,
    /// Inference accuracy in percent (`R_accuracy`).
    pub accuracy: f64,
}

impl Outcome {
    /// Energy efficiency in inferences per joule — the PPW metric of the
    /// paper's figures (see [`power::efficiency_ipj`]).
    pub fn efficiency_ipj(&self) -> f64 {
        power::efficiency_ipj(self.energy_mj)
    }
}

/// Why a request cannot execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionError {
    /// The target device has no processor of the requested kind (e.g. DSP
    /// on the Galaxy S10e).
    NoSuchProcessor(Placement),
    /// The processor cannot execute at the requested precision (e.g. FP32
    /// on a DSP).
    UnsupportedPrecision(Placement),
    /// The middleware cannot run recurrent models on this processor (e.g.
    /// MobileBERT on any mobile co-processor).
    RecurrentUnsupported(Placement),
}

impl std::fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionError::NoSuchProcessor(p) => {
                write!(f, "no such processor at {p}")
            }
            ExecutionError::UnsupportedPrecision(p) => {
                write!(f, "precision unsupported at {p}")
            }
            ExecutionError::RecurrentUnsupported(p) => {
                write!(f, "recurrent model unsupported at {p}")
            }
        }
    }
}

impl std::error::Error for ExecutionError {}

/// Relative standard deviation of latency measurement noise.
const LATENCY_NOISE_STD: f64 = 0.03;
/// Relative standard deviation of energy measurement noise (the paper's
/// utilization-based estimators carry a 7.3% MAPE; a 5% relative sigma
/// lands the simulated MAPE in the same range).
const ENERGY_NOISE_STD: f64 = 0.055;

/// Memoized per-(placement, workload) roofline cost tables.
type CostTables = BTreeMap<(Placement, Workload), NetworkCostCache>;

/// The edge-cloud testbed for one host phone: the phone itself, the
/// Wi-Fi-Direct-connected tablet, and the cloud server behind the WLAN.
#[derive(Debug, Clone)]
pub struct Simulator {
    host: Device,
    tablet: Device,
    cloud: Device,
    wlan: LinkModel,
    p2p: LinkModel,
    networks: BTreeMap<Workload, Network>,
    /// Memoized roofline terms for every reachable (placement, workload)
    /// pair, built once at construction (networks are immutable, so the
    /// cache never invalidates). `Workload` doubles as the network id:
    /// there is exactly one canonical [`Network`] per workload.
    cost_tables: CostTables,
}

impl Simulator {
    /// Builds the testbed around a host phone.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not one of the three phones — the tablet and
    /// the cloud server are offloading targets, not AutoScale hosts.
    pub fn new(host: DeviceId) -> Self {
        Self::with_devices(
            Device::for_id(host),
            Device::galaxy_tab_s6(),
            Device::cloud_server(),
        )
    }

    /// Builds a testbed from explicit devices — the hook for the paper's
    /// Section V-C extension configurations (e.g. an NPU-unlocked phone
    /// via [`Device::mi8pro_npu`] or a TPU-equipped cloud via
    /// [`Device::cloud_server_tpu`]).
    ///
    /// # Panics
    ///
    /// Panics if `host` is not a phone.
    pub fn with_devices(host: Device, tablet: Device, cloud: Device) -> Self {
        assert!(host.is_phone(), "the simulator host must be a phone");
        let networks: BTreeMap<Workload, Network> = Workload::ALL
            .iter()
            .map(|&w| (w, Network::workload(w)))
            .collect();
        let cost_tables = Self::build_cost_tables(&host, &tablet, &cloud, &networks);
        Simulator {
            host,
            tablet,
            cloud,
            wlan: LinkModel::for_kind(LinkKind::Wlan),
            p2p: LinkModel::for_kind(LinkKind::PeerToPeer),
            networks,
            cost_tables,
        }
    }

    /// Precomputes the roofline cost tables for every processor reachable
    /// from this testbed and every workload's canonical network.
    fn build_cost_tables(
        host: &Device,
        tablet: &Device,
        cloud: &Device,
        networks: &BTreeMap<Workload, Network>,
    ) -> CostTables {
        type Slot<'a> = (&'a Device, fn(ProcessorKind) -> Placement);
        let slots: [Slot<'_>; 3] = [
            (host, Placement::OnDevice),
            (tablet, Placement::ConnectedEdge),
            (cloud, Placement::Cloud),
        ];
        let mut tables = BTreeMap::new();
        for (device, placement_for) in slots {
            for kind in ProcessorKind::ALL {
                if let Some(processor) = device.processor(kind) {
                    for (&workload, network) in networks {
                        tables.insert(
                            (placement_for(kind), workload),
                            NetworkCostCache::build(processor, network),
                        );
                    }
                }
            }
        }
        tables
    }

    /// The memoized cost tables for a feasible (placement, workload) pair.
    fn cost_cache(&self, placement: Placement, workload: Workload) -> &NetworkCostCache {
        &self.cost_tables[&(placement, workload)]
    }

    /// The host phone.
    pub fn host(&self) -> &Device {
        &self.host
    }

    /// The connected edge device (Galaxy Tab S6).
    pub fn tablet(&self) -> &Device {
        &self.tablet
    }

    /// The cloud server.
    pub fn cloud(&self) -> &Device {
        &self.cloud
    }

    /// The WLAN link model (phone ↔ access point ↔ cloud).
    pub fn wlan(&self) -> &LinkModel {
        &self.wlan
    }

    /// The peer-to-peer link model (phone ↔ tablet).
    pub fn p2p(&self) -> &LinkModel {
        &self.p2p
    }

    /// The cached network for a workload.
    pub fn network(&self, workload: Workload) -> &Network {
        &self.networks[&workload]
    }

    /// The device a placement lands on.
    pub fn device_for(&self, placement: Placement) -> &Device {
        match placement {
            Placement::OnDevice(_) => &self.host,
            Placement::ConnectedEdge(_) => &self.tablet,
            Placement::Cloud(_) => &self.cloud,
        }
    }

    /// The processor a placement lands on, if the device has one.
    pub fn processor_for(&self, placement: Placement) -> Option<&Processor> {
        self.device_for(placement)
            .processor(placement.processor_kind())
    }

    /// Validates that a request can execute for a workload.
    ///
    /// # Errors
    ///
    /// Returns the reason the request is infeasible.
    pub fn check(
        &self,
        workload: Workload,
        request: &Request,
    ) -> Result<&Processor, ExecutionError> {
        let placement = request.placement;
        let processor = self
            .processor_for(placement)
            .ok_or(ExecutionError::NoSuchProcessor(placement))?;
        if !processor.supports_precision(request.precision) {
            return Err(ExecutionError::UnsupportedPrecision(placement));
        }
        if self.network(workload).has_recurrent_layers() && !processor.runs_recurrent() {
            return Err(ExecutionError::RecurrentUnsupported(placement));
        }
        Ok(processor)
    }

    /// Whether a request can execute for a workload.
    pub fn is_feasible(&self, workload: Workload, request: &Request) -> bool {
        self.check(workload, request).is_ok()
    }

    /// Executes a request and returns the *model expectation* — no
    /// measurement noise. This is what the oracle (`Opt`) evaluates when
    /// it enumerates the design space.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecutionError`] if the request is infeasible.
    pub fn execute_expected(
        &self,
        workload: Workload,
        request: &Request,
        snapshot: &Snapshot,
    ) -> Result<Outcome, ExecutionError> {
        let processor = self.check(workload, request)?;
        let network = self.network(workload);
        let accuracy = accuracy_for(workload).at(request.precision);

        let outcome = match request.placement {
            Placement::OnDevice(_) => {
                let cond = ExecutionConditions {
                    freq_index: request.freq_index.min(processor.dvfs().max_index()),
                    precision: request.precision,
                    compute_availability: snapshot.cpu_availability(),
                    mem_availability: snapshot.mem_availability(),
                    thermal_cap: self.host.thermal().cap_for(snapshot.co_cpu),
                };
                let latency_ms = self
                    .cost_cache(request.placement, workload)
                    .latency_ms(processor, &cond);
                let energy = power::on_device_energy_mj(
                    processor,
                    &cond,
                    latency_ms,
                    self.host.base_power_w(),
                );
                Outcome {
                    latency_ms,
                    energy_mj: energy.total_mj(),
                    accuracy,
                }
            }
            Placement::ConnectedEdge(_) => {
                let cache = self.cost_cache(request.placement, workload);
                self.remote_outcome(
                    network,
                    processor,
                    cache,
                    &self.tablet,
                    &self.p2p,
                    snapshot.p2p,
                    request,
                    accuracy,
                )
            }
            Placement::Cloud(_) => {
                let cache = self.cost_cache(request.placement, workload);
                self.remote_outcome(
                    network,
                    processor,
                    cache,
                    &self.cloud,
                    &self.wlan,
                    snapshot.wlan,
                    request,
                    accuracy,
                )
            }
        };
        Ok(outcome)
    }

    /// Executes a request with measurement noise applied to latency and
    /// energy — what the paper's Monsoon meter and timestamps report.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecutionError`] if the request is infeasible.
    pub fn execute_measured(
        &self,
        workload: Workload,
        request: &Request,
        snapshot: &Snapshot,
        rng: &mut StdRng,
    ) -> Result<Outcome, ExecutionError> {
        let expected = self.execute_expected(workload, request, snapshot)?;
        // lint:allow(panic-in-lib): the noise std constants are valid Normal parameters
        let lat_noise = Normal::new(1.0, LATENCY_NOISE_STD).expect("valid normal");
        // lint:allow(panic-in-lib): the noise std constants are valid Normal parameters
        let en_noise = Normal::new(1.0, ENERGY_NOISE_STD).expect("valid normal");
        Ok(Outcome {
            latency_ms: expected.latency_ms * lat_noise.sample(rng).max(0.7),
            energy_mj: expected.energy_mj * en_noise.sample(rng).max(0.7),
            accuracy: expected.accuracy,
        })
    }

    /// Computes the outcome of an offloaded inference, per the paper's
    /// eq. (4): radio energy for the transfers plus idle-wait energy while
    /// the remote system computes.
    #[allow(clippy::too_many_arguments)] // private helper mirroring eq. (4)'s terms
    fn remote_outcome(
        &self,
        network: &Network,
        processor: &Processor,
        cache: &NetworkCostCache,
        remote: &Device,
        link: &LinkModel,
        rssi: autoscale_net::Rssi,
        request: &Request,
        accuracy: f64,
    ) -> Outcome {
        let transfer = Transfer::compute(link, network.input_bytes(), network.output_bytes(), rssi);
        // Remote systems are uncontended and run at maximum frequency: the
        // phone can neither observe nor control their governors.
        let cond = ExecutionConditions::max_frequency(processor, request.precision);
        let remote_ms = cache.latency_ms(processor, &cond) + remote.serving_overhead_ms();
        let latency_ms = transfer.wire_ms() + remote_ms;
        // Phone-side energy (eq. 4): TX + RX bursts, then base + radio-wait
        // power for the remainder of the round trip.
        let wait_ms = latency_ms - transfer.tx_ms - transfer.rx_ms;
        let energy_mj = transfer.radio_energy_mj()
            + (self.host.base_power_w() + transfer.wait_power_w) * wait_ms;
        Outcome {
            latency_ms,
            energy_mj,
            accuracy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoscale_nn::Precision;
    use autoscale_platform::ProcessorKind;
    use rand::SeedableRng;

    fn sim() -> Simulator {
        Simulator::new(DeviceId::Mi8Pro)
    }

    fn max_req(sim: &Simulator, placement: Placement, precision: Precision) -> Request {
        Request::at_max_frequency(sim, placement, precision)
    }

    #[test]
    fn cpu_fp32_executes_everywhere() {
        let sim = sim();
        for w in Workload::ALL {
            for placement in [
                Placement::OnDevice(ProcessorKind::Cpu),
                Placement::ConnectedEdge(ProcessorKind::Cpu),
                Placement::Cloud(ProcessorKind::Cpu),
            ] {
                let req = max_req(&sim, placement, Precision::Fp32);
                let out = sim.execute_expected(w, &req, &Snapshot::calm()).unwrap();
                assert!(
                    out.latency_ms > 0.0 && out.energy_mj > 0.0,
                    "{w} {placement}"
                );
            }
        }
    }

    #[test]
    fn s10e_has_no_dsp() {
        let sim = Simulator::new(DeviceId::GalaxyS10e);
        let req = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Dsp),
            Precision::Int8,
        );
        assert_eq!(
            sim.execute_expected(Workload::InceptionV1, &req, &Snapshot::calm()),
            Err(ExecutionError::NoSuchProcessor(Placement::OnDevice(
                ProcessorKind::Dsp
            )))
        );
    }

    #[test]
    fn dsp_rejects_fp32_and_recurrent() {
        let sim = sim();
        let fp32 = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Dsp),
            Precision::Fp32,
        );
        assert!(matches!(
            sim.execute_expected(Workload::InceptionV1, &fp32, &Snapshot::calm()),
            Err(ExecutionError::UnsupportedPrecision(_))
        ));
        let int8 = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Dsp),
            Precision::Int8,
        );
        assert!(matches!(
            sim.execute_expected(Workload::MobileBert, &int8, &Snapshot::calm()),
            Err(ExecutionError::RecurrentUnsupported(_))
        ));
    }

    #[test]
    fn mobile_gpu_rejects_recurrent_but_cloud_gpu_runs_it() {
        let sim = sim();
        let mobile = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Gpu),
            Precision::Fp32,
        );
        assert!(!sim.is_feasible(Workload::MobileBert, &mobile));
        let cloud = max_req(&sim, Placement::Cloud(ProcessorKind::Gpu), Precision::Fp32);
        assert!(sim.is_feasible(Workload::MobileBert, &cloud));
    }

    #[test]
    fn cpu_interference_slows_and_costs_on_device_cpu() {
        let sim = sim();
        let req = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Fp32,
        );
        let calm = sim
            .execute_expected(Workload::MobileNetV3, &req, &Snapshot::calm())
            .unwrap();
        let loaded = Snapshot::new(0.85, 0.1, Snapshot::calm().wlan, Snapshot::calm().p2p);
        let contended = sim
            .execute_expected(Workload::MobileNetV3, &req, &loaded)
            .unwrap();
        assert!(contended.latency_ms > 1.5 * calm.latency_ms);
        assert!(contended.efficiency_ipj() < calm.efficiency_ipj());
    }

    #[test]
    fn weak_wlan_hurts_cloud_but_not_connected_edge() {
        let sim = sim();
        let cloud = max_req(&sim, Placement::Cloud(ProcessorKind::Gpu), Precision::Fp32);
        let edge = max_req(
            &sim,
            Placement::ConnectedEdge(ProcessorKind::Gpu),
            Precision::Fp32,
        );
        let calm = Snapshot::calm();
        let weak_wlan = Snapshot::new(0.0, 0.0, autoscale_net::Rssi::WEAK, calm.p2p);
        let w = Workload::ResNet50;
        let cloud_calm = sim.execute_expected(w, &cloud, &calm).unwrap();
        let cloud_weak = sim.execute_expected(w, &cloud, &weak_wlan).unwrap();
        let edge_calm = sim.execute_expected(w, &edge, &calm).unwrap();
        let edge_weak = sim.execute_expected(w, &edge, &weak_wlan).unwrap();
        assert!(cloud_weak.latency_ms > 3.0 * cloud_calm.latency_ms);
        assert!((edge_weak.latency_ms - edge_calm.latency_ms).abs() < 1e-9);
    }

    #[test]
    fn interference_does_not_touch_remote_compute() {
        let sim = sim();
        let req = max_req(&sim, Placement::Cloud(ProcessorKind::Gpu), Precision::Fp32);
        let calm = sim
            .execute_expected(Workload::ResNet50, &req, &Snapshot::calm())
            .unwrap();
        let loaded = Snapshot::new(0.9, 0.9, Snapshot::calm().wlan, Snapshot::calm().p2p);
        let contended = sim
            .execute_expected(Workload::ResNet50, &req, &loaded)
            .unwrap();
        assert!((contended.latency_ms - calm.latency_ms).abs() < 1e-9);
    }

    #[test]
    fn measured_outcome_is_noisy_but_unbiased() {
        let sim = sim();
        let req = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Fp32,
        );
        let expected = sim
            .execute_expected(Workload::MobileNetV1, &req, &Snapshot::calm())
            .unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 400;
        let mut lat_sum = 0.0;
        let mut any_diff = false;
        for _ in 0..n {
            let m = sim
                .execute_measured(Workload::MobileNetV1, &req, &Snapshot::calm(), &mut rng)
                .unwrap();
            lat_sum += m.latency_ms;
            if (m.latency_ms - expected.latency_ms).abs() > 1e-9 {
                any_diff = true;
            }
        }
        let mean = lat_sum / n as f64;
        assert!(any_diff);
        assert!(
            (mean / expected.latency_ms - 1.0).abs() < 0.01,
            "mean ratio {}",
            mean / expected.latency_ms
        );
    }

    #[test]
    fn accuracy_follows_precision_not_placement() {
        let sim = sim();
        let cpu_int8 = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Int8,
        );
        let dsp_int8 = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Dsp),
            Precision::Int8,
        );
        let calm = Snapshot::calm();
        let a = sim
            .execute_expected(Workload::InceptionV1, &cpu_int8, &calm)
            .unwrap();
        let b = sim
            .execute_expected(Workload::InceptionV1, &dsp_int8, &calm)
            .unwrap();
        assert_eq!(a.accuracy, b.accuracy);
        let fp32 = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Fp32,
        );
        let c = sim
            .execute_expected(Workload::InceptionV1, &fp32, &calm)
            .unwrap();
        assert!(c.accuracy > a.accuracy);
    }

    #[test]
    fn freq_index_is_clamped_to_ladder() {
        let sim = sim();
        let req = Request {
            placement: Placement::OnDevice(ProcessorKind::Cpu),
            precision: Precision::Fp32,
            freq_index: 10_000,
        };
        let clamped = sim
            .execute_expected(Workload::MobileNetV1, &req, &Snapshot::calm())
            .unwrap();
        let max = max_req(
            &sim,
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Fp32,
        );
        let at_max = sim
            .execute_expected(Workload::MobileNetV1, &max, &Snapshot::calm())
            .unwrap();
        assert!((clamped.latency_ms - at_max.latency_ms).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "host must be a phone")]
    fn tablet_cannot_host() {
        let _ = Simulator::new(DeviceId::GalaxyTabS6);
    }

    #[test]
    fn custom_testbed_uses_the_given_devices() {
        let sim = Simulator::with_devices(
            autoscale_platform::Device::mi8pro_npu(),
            autoscale_platform::Device::galaxy_tab_s6(),
            autoscale_platform::Device::cloud_server_tpu(),
        );
        assert!(sim.host().processor(ProcessorKind::Npu).is_some());
        assert!(sim.cloud().processor(ProcessorKind::Npu).is_some());
        // The NPU runs vision models at INT8 but not recurrent ones.
        let npu = Request::at_max_frequency(
            &sim,
            Placement::OnDevice(ProcessorKind::Npu),
            Precision::Int8,
        );
        assert!(sim.is_feasible(Workload::InceptionV1, &npu));
        assert!(!sim.is_feasible(Workload::MobileBert, &npu));
        // The cloud TPU runs everything, at FP16.
        let tpu =
            Request::at_max_frequency(&sim, Placement::Cloud(ProcessorKind::Npu), Precision::Fp16);
        assert!(sim.is_feasible(Workload::MobileBert, &tpu));
    }
}
