//! Deterministic open-loop traffic: request-arrival processes and
//! session churn schedules for the serving stack.
//!
//! The paper evaluates AutoScale under stochastically varying *runtime*
//! conditions, but its serving loop is closed-loop: every session runs a
//! fixed number of back-to-back decisions. A deployed fleet is open-loop
//! — requests arrive whether or not the device is ready, sessions come
//! and go, and overload is a first-class regime. This module supplies
//! the two schedule sources that open-loop serving needs, with the same
//! determinism discipline as [`crate::faults`]:
//!
//! * an [`ArrivalProcess`] describes *when requests arrive*: a Poisson
//!   stream at a base rate, a bursty variant that opens
//!   multiplied-rate windows, and a diurnal variant whose rate swings
//!   sinusoidally over a configurable period;
//! * an [`ArrivalSampler`] turns a process plus a seed into the actual
//!   arrival times. It owns its own RNG stream and draws a **fixed
//!   [`ARRIVAL_DRAWS_PER_EVENT`] values per arrival**, so the schedule
//!   for arrival `i` is a pure function of `(process, seed, i)` —
//!   independent of the scheduler's decisions, the fault profile, the
//!   admission policy, and of how many arrivals are ever generated
//!   (prefix-stable);
//! * a [`ChurnConfig`] describes *when sessions exist*: a join-time
//!   spread and an exponential lifetime, turned into a concrete
//!   [`ChurnWindow`] per session with a fixed
//!   [`CHURN_DRAWS_PER_SESSION`] draws from the session's private churn
//!   stream.
//!
//! What the serving layer does *with* these schedules — bounded queues,
//! deadline-aware admission, drop/degrade on overload — lives in
//! `autoscale::serve::openloop`; this module only answers "when".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Exactly how many RNG values [`ArrivalSampler::next_arrival`]
/// consumes per generated arrival: one inter-arrival gap draw and one
/// burst-trigger draw (consumed by every process kind, so switching
/// kinds never re-times the other draws). The stream-discipline lint
/// pass (`autoscale-lint`, rule `divergent-rng-draws`) keeps this count
/// branch-independent; change it only together with the pinned
/// `draws_exactly_the_documented_count_per_arrival` test.
pub const ARRIVAL_DRAWS_PER_EVENT: usize = 2;

/// Exactly how many RNG values [`ChurnWindow::draw`] consumes per
/// session: one join-offset draw and one lifetime draw, consumed even
/// when churn is off so enabling churn never re-times anything else.
pub const CHURN_DRAWS_PER_SESSION: usize = 2;

/// The shape of a request-arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalKind {
    /// Memoryless arrivals at the base rate.
    Poisson,
    /// Poisson arrivals whose rate is multiplied during randomly
    /// triggered burst windows.
    Bursty,
    /// Poisson arrivals whose rate is modulated sinusoidally over a
    /// fixed period — a compressed day/night cycle.
    Diurnal,
}

impl std::fmt::Display for ArrivalKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Bursty => "bursty",
            ArrivalKind::Diurnal => "diurnal",
        })
    }
}

/// An open-loop request-arrival process: the traffic one session's
/// users offer, independent of whether the device can keep up.
///
/// The struct is flat (like [`crate::FaultProfile`]) so every kind
/// carries the same fields and serialization never depends on the
/// variant: unused knobs are simply ignored by the sampler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalProcess {
    /// Which modulation the sampler applies.
    pub kind: ArrivalKind,
    /// Base arrival rate, in requests per second. A rate of zero (or
    /// below) offers no traffic at all: the schedule is empty.
    pub rate_hz: f64,
    /// Per-arrival probability that a burst window opens
    /// ([`ArrivalKind::Bursty`] only).
    pub burst_rate: f64,
    /// Length of a burst window, in arrivals.
    pub burst_len: usize,
    /// Rate multiplier while a burst window is open (values below 1
    /// are clamped to 1 — a burst never thins traffic).
    pub burst_mult: f64,
    /// Period of the diurnal modulation, in milliseconds of virtual
    /// time ([`ArrivalKind::Diurnal`] only).
    pub diurnal_period_ms: f64,
    /// Peak-to-mean swing of the diurnal modulation in [0, 1): the
    /// instantaneous rate is `rate_hz * (1 + depth * sin(2πt/period))`.
    pub diurnal_depth: f64,
}

impl ArrivalProcess {
    /// Memoryless traffic at `rate_hz` requests per second.
    pub fn poisson(rate_hz: f64) -> Self {
        ArrivalProcess {
            kind: ArrivalKind::Poisson,
            rate_hz,
            burst_rate: 0.0,
            burst_len: 0,
            burst_mult: 1.0,
            diurnal_period_ms: 0.0,
            diurnal_depth: 0.0,
        }
    }

    /// Bursty traffic: base `rate_hz` with 5%-per-arrival bursts of 16
    /// arrivals at 4x the rate.
    pub fn bursty(rate_hz: f64) -> Self {
        ArrivalProcess {
            kind: ArrivalKind::Bursty,
            burst_rate: 0.05,
            burst_len: 16,
            burst_mult: 4.0,
            ..ArrivalProcess::poisson(rate_hz)
        }
    }

    /// Diurnally modulated traffic: `rate_hz` mean with a ±60% swing
    /// over a 4-second virtual "day" (compressed so short horizons see
    /// full cycles).
    pub fn diurnal(rate_hz: f64) -> Self {
        ArrivalProcess {
            kind: ArrivalKind::Diurnal,
            diurnal_period_ms: 4_000.0,
            diurnal_depth: 0.6,
            ..ArrivalProcess::poisson(rate_hz)
        }
    }

    /// The named processes `--arrivals` accepts, in display order.
    pub const NAMES: [&'static str; 3] = ["poisson", "bursty", "diurnal"];

    /// Resolves a named process at a base rate, case-insensitively.
    pub fn parse(name: &str, rate_hz: f64) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "poisson" => Some(ArrivalProcess::poisson(rate_hz)),
            "bursty" => Some(ArrivalProcess::bursty(rate_hz)),
            "diurnal" => Some(ArrivalProcess::diurnal(rate_hz)),
            _ => None,
        }
    }

    /// Whether this process can never offer a request (zero or negative
    /// base rate): the arrival schedule is empty and an open-loop
    /// session produces an empty-but-valid report.
    pub fn is_silent(&self) -> bool {
        self.rate_hz <= 0.0
    }
}

/// One generated arrival: its index in the session's schedule and its
/// timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Index of the arrival in the session's stream.
    pub index: u64,
    /// Arrival time, in milliseconds from the start of the session's
    /// window. [`f64::INFINITY`] for a silent process.
    pub at_ms: f64,
    /// Gap to the previous arrival, in milliseconds.
    pub gap_ms: f64,
    /// Whether a burst window was open when this arrival was timed.
    pub in_burst: bool,
}

impl std::fmt::Display for Arrival {
    /// One fixed-width schedule line (`#0007 t=  123.456 ms gap=
    /// 12.345 ms burst=·`), the format the golden open-loop trace
    /// fixture pins.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#{:04} t={:>10.3} ms gap={:>9.3} ms burst={}",
            self.index,
            self.at_ms,
            self.gap_ms,
            if self.in_burst { 'B' } else { '-' }
        )
    }
}

/// The seeded per-session arrival source.
///
/// Owns a private RNG stream (never shared with the session's
/// decision, environment or fault streams) and draws a fixed
/// [`ARRIVAL_DRAWS_PER_EVENT`] values per arrival, so the schedule for
/// arrival `i` depends only on `(process, seed, i)`. The burst window
/// counter and the virtual clock are the only state, and both advance
/// once per arrival.
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    process: ArrivalProcess,
    rng: StdRng,
    /// Virtual time of the previous arrival, in ms from window start.
    clock_ms: f64,
    /// Arrivals remaining in an open burst window.
    burst_left: usize,
    next_index: u64,
}

impl ArrivalSampler {
    /// Builds a sampler for a process from the session's arrival seed.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        ArrivalSampler {
            process,
            rng: StdRng::seed_from_u64(seed),
            clock_ms: 0.0,
            burst_left: 0,
            next_index: 0,
        }
    }

    /// The process this sampler draws from.
    pub fn process(&self) -> &ArrivalProcess {
        &self.process
    }

    /// How many arrivals have been generated so far.
    pub fn generated(&self) -> u64 {
        self.next_index
    }

    /// The instantaneous arrival rate in requests per millisecond, as
    /// modulated by the burst window and the diurnal cycle at virtual
    /// time `clock_ms`. Zero (silent) stays zero under any modulation.
    fn rate_per_ms(&self) -> f64 {
        let p = &self.process;
        if p.rate_hz <= 0.0 {
            return 0.0;
        }
        let mut rate = p.rate_hz / 1_000.0;
        if self.burst_left > 0 {
            rate *= p.burst_mult.max(1.0);
        }
        if p.kind == ArrivalKind::Diurnal && p.diurnal_period_ms > 0.0 {
            let depth = p.diurnal_depth.clamp(0.0, 0.99);
            let phase = std::f64::consts::TAU * self.clock_ms / p.diurnal_period_ms;
            rate *= 1.0 + depth * phase.sin();
        }
        rate.max(0.0)
    }

    /// Generates the next arrival.
    ///
    /// Fixed draw order, one draw per site, every arrival: gap, burst
    /// trigger. Keeping the count constant makes the schedule
    /// independent of scheduler decisions and of which arrivals are
    /// ever admitted. A silent process yields arrivals at
    /// `t = INFINITY`, which no finite horizon ever reaches.
    pub fn next_arrival(&mut self) -> Arrival {
        let rate = self.rate_per_ms();
        let gap_draw: f64 = self.rng.gen();
        let burst_draw: f64 = self.rng.gen();
        // Inverse-CDF exponential gap at the instantaneous rate. The
        // draw lies in [0, 1), so `1 - draw` is strictly positive and
        // the gap is finite and non-negative for any positive rate.
        let gap_ms = if rate > 0.0 {
            -(1.0 - gap_draw).ln() / rate
        } else {
            f64::INFINITY
        };
        let in_burst = self.burst_left > 0;
        self.burst_left = self.burst_left.saturating_sub(1);
        if self.process.kind == ArrivalKind::Bursty
            && self.burst_left == 0
            && burst_draw < self.process.burst_rate
        {
            self.burst_left = self.process.burst_len;
        }
        self.clock_ms += gap_ms;
        let index = self.next_index;
        self.next_index += 1;
        Arrival {
            index,
            at_ms: self.clock_ms,
            gap_ms,
            in_burst,
        }
    }
}

/// How sessions join and leave an open-loop fleet. All times are in
/// milliseconds of virtual serving time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Sessions join uniformly within `[0, join_spread_ms]` of the run
    /// start (zero: everyone is present from the beginning).
    pub join_spread_ms: f64,
    /// Mean of the exponential session lifetime. Zero (or below) means
    /// immortal sessions that stay for the whole horizon.
    pub mean_lifetime_ms: f64,
    /// What happens to requests still queued when a session leaves:
    /// `true` drains them to completion, `false` drops them (counted
    /// separately from overload drops).
    pub drain_on_leave: bool,
}

impl ChurnConfig {
    /// No churn at all — every session is present for the whole
    /// horizon. The zero-cost default: the two churn draws still
    /// happen (so enabling churn later never re-times other streams),
    /// but the window always spans the full run.
    pub fn none() -> Self {
        ChurnConfig {
            join_spread_ms: 0.0,
            mean_lifetime_ms: 0.0,
            drain_on_leave: true,
        }
    }

    /// Gentle churn over a horizon: joins spread across the first
    /// quarter, lifetimes average 1.5 horizons (most sessions stay),
    /// leavers drain their queues.
    pub fn gentle(horizon_ms: f64) -> Self {
        ChurnConfig {
            join_spread_ms: horizon_ms * 0.25,
            mean_lifetime_ms: horizon_ms * 1.5,
            drain_on_leave: true,
        }
    }

    /// Heavy churn over a horizon: joins spread across the first half,
    /// lifetimes average 30% of the horizon (most sessions leave
    /// mid-run), and leavers abandon their queues.
    pub fn heavy(horizon_ms: f64) -> Self {
        ChurnConfig {
            join_spread_ms: horizon_ms * 0.5,
            mean_lifetime_ms: horizon_ms * 0.3,
            drain_on_leave: false,
        }
    }

    /// The named schedules `--churn` accepts, in display order.
    pub const NAMES: [&'static str; 3] = ["none", "gentle", "heavy"];

    /// Resolves a named schedule over a horizon, case-insensitively.
    pub fn parse(name: &str, horizon_ms: f64) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "none" => Some(ChurnConfig::none()),
            "gentle" => Some(ChurnConfig::gentle(horizon_ms)),
            "heavy" => Some(ChurnConfig::heavy(horizon_ms)),
            _ => None,
        }
    }

    /// Whether this schedule can never remove or delay a session.
    pub fn is_none(&self) -> bool {
        self.join_spread_ms <= 0.0 && self.mean_lifetime_ms <= 0.0
    }
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig::none()
    }
}

/// One session's concrete presence window, drawn from its private
/// churn stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnWindow {
    /// When the session joins, in ms of virtual time.
    pub join_ms: f64,
    /// When the session leaves ([`f64::INFINITY`] for an immortal
    /// session — the horizon caps it).
    pub leave_ms: f64,
}

impl ChurnWindow {
    /// Draws a session's window. Always consumes exactly
    /// [`CHURN_DRAWS_PER_SESSION`] values — one join draw, one
    /// lifetime draw — even when churn is off, so the schedule is a
    /// pure function of `(config, seed)` and enabling churn never
    /// re-times any other stream.
    pub fn draw(config: ChurnConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let join_draw: f64 = rng.gen();
        let life_draw: f64 = rng.gen();
        let join_ms = if config.join_spread_ms > 0.0 {
            join_draw * config.join_spread_ms
        } else {
            0.0
        };
        let leave_ms = if config.mean_lifetime_ms > 0.0 {
            join_ms + -(1.0 - life_draw).ln() * config.mean_lifetime_ms
        } else {
            f64::INFINITY
        };
        ChurnWindow { join_ms, leave_ms }
    }

    /// The window clipped to a horizon: `[join, min(leave, horizon))`.
    pub fn end_ms(&self, horizon_ms: f64) -> f64 {
        self.leave_ms.min(horizon_ms)
    }

    /// Whether the session leaves before the horizon does.
    pub fn churns_out(&self, horizon_ms: f64) -> bool {
        self.leave_ms < horizon_ms
    }
}

impl std::fmt::Display for ChurnWindow {
    /// One fixed-width window line (`join=   123.456 ms leave=
    /// 4567.890 ms` with `inf` for immortal sessions), the format the
    /// golden open-loop trace fixture pins.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let leave = if self.leave_ms.is_finite() {
            format!("{:>10.3}", self.leave_ms)
        } else {
            format!("{:>10}", "inf")
        };
        write!(f, "join={:>10.3} ms leave={leave} ms", self.join_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_processes_parse_and_silence_is_detected() {
        for name in ArrivalProcess::NAMES {
            assert!(ArrivalProcess::parse(name, 100.0).is_some(), "{name}");
        }
        assert!(
            ArrivalProcess::parse("POISSON", 10.0).is_some(),
            "case-insensitive"
        );
        assert!(ArrivalProcess::parse("tsunami", 10.0).is_none());
        assert!(ArrivalProcess::poisson(0.0).is_silent());
        assert!(ArrivalProcess::poisson(-4.0).is_silent());
        assert!(!ArrivalProcess::bursty(100.0).is_silent());
    }

    #[test]
    fn same_seed_reproduces_the_schedule() {
        let schedule = |seed: u64| -> Vec<Arrival> {
            let mut sampler = ArrivalSampler::new(ArrivalProcess::bursty(200.0), seed);
            (0..64).map(|_| sampler.next_arrival()).collect()
        };
        assert_eq!(schedule(9), schedule(9));
        assert_ne!(schedule(9), schedule(10));
    }

    #[test]
    fn arrival_times_are_strictly_ordered_and_indexed() {
        for process in [
            ArrivalProcess::poisson(150.0),
            ArrivalProcess::bursty(150.0),
            ArrivalProcess::diurnal(150.0),
        ] {
            let mut sampler = ArrivalSampler::new(process, 7);
            let mut last = 0.0;
            for i in 0..128 {
                let a = sampler.next_arrival();
                assert_eq!(a.index, i);
                assert!(a.gap_ms >= 0.0, "{a}");
                assert!(a.at_ms >= last, "{a} went backwards");
                last = a.at_ms;
            }
        }
    }

    #[test]
    fn silent_processes_never_arrive() {
        let mut sampler = ArrivalSampler::new(ArrivalProcess::poisson(0.0), 3);
        for _ in 0..8 {
            let a = sampler.next_arrival();
            assert!(a.at_ms.is_infinite(), "{a}");
            assert!(!a.in_burst);
        }
    }

    #[test]
    fn bursts_compress_gaps_by_the_multiplier() {
        // Force a permanent burst and compare mean gaps against the
        // plain process at the same seed: the burst stream must run
        // ~burst_mult denser (same draws, scaled rate).
        let plain = ArrivalProcess::poisson(100.0);
        let storm = ArrivalProcess {
            kind: ArrivalKind::Bursty,
            burst_rate: 1.0,
            burst_len: usize::MAX,
            burst_mult: 4.0,
            ..plain
        };
        let mean_gap = |p: ArrivalProcess| -> f64 {
            let mut sampler = ArrivalSampler::new(p, 21);
            // Skip the first arrival: the burst window only opens after
            // the trigger draw of arrival 0.
            sampler.next_arrival();
            (0..256).map(|_| sampler.next_arrival().gap_ms).sum::<f64>() / 256.0
        };
        let ratio = mean_gap(plain) / mean_gap(storm);
        assert!(
            (3.0..5.0).contains(&ratio),
            "burst compressed gaps {ratio:.2}x, wanted ~4x"
        );
    }

    #[test]
    fn diurnal_rate_swings_but_never_goes_negative() {
        let process = ArrivalProcess {
            diurnal_depth: 0.999, // clamps to 0.99
            ..ArrivalProcess::diurnal(100.0)
        };
        let mut sampler = ArrivalSampler::new(process, 5);
        for _ in 0..512 {
            let a = sampler.next_arrival();
            assert!(a.gap_ms.is_finite() && a.gap_ms >= 0.0, "{a}");
        }
    }

    #[test]
    fn draws_exactly_the_documented_count_per_arrival() {
        // Pin ARRIVAL_DRAWS_PER_EVENT against the implementation with a
        // shadow RNG (StdRng implements PartialEq): advancing a fresh
        // stream by exactly that many values per arrival must keep it
        // bit-identical to the sampler's own stream, for every kind.
        assert_eq!(ARRIVAL_DRAWS_PER_EVENT, 2);
        for process in [
            ArrivalProcess::poisson(80.0),
            ArrivalProcess::bursty(80.0),
            ArrivalProcess::diurnal(80.0),
            ArrivalProcess::poisson(0.0),
        ] {
            let mut sampler = ArrivalSampler::new(process, 37);
            let mut shadow = StdRng::seed_from_u64(37);
            for arrival in 0..32 {
                sampler.next_arrival();
                for _ in 0..ARRIVAL_DRAWS_PER_EVENT {
                    let _: f64 = shadow.gen();
                }
                assert_eq!(
                    sampler.rng, shadow,
                    "draw count drifted from ARRIVAL_DRAWS_PER_EVENT at arrival {arrival} ({process:?})"
                );
            }
        }
    }

    #[test]
    fn schedules_are_prefix_stable() {
        let mut short = ArrivalSampler::new(ArrivalProcess::bursty(120.0), 11);
        let mut long = ArrivalSampler::new(ArrivalProcess::bursty(120.0), 11);
        let a: Vec<String> = (0..10).map(|_| short.next_arrival().to_string()).collect();
        let b: Vec<String> = (0..40).map(|_| long.next_arrival().to_string()).collect();
        assert_eq!(&a[..], &b[..10]);
    }

    #[test]
    fn churn_windows_are_deterministic_and_ordered() {
        let config = ChurnConfig::heavy(2_000.0);
        let w = ChurnWindow::draw(config, 13);
        assert_eq!(w, ChurnWindow::draw(config, 13));
        assert_ne!(w, ChurnWindow::draw(config, 14));
        assert!(w.join_ms >= 0.0 && w.join_ms <= 1_000.0);
        assert!(w.leave_ms >= w.join_ms);
    }

    #[test]
    fn no_churn_spans_the_whole_horizon() {
        let w = ChurnWindow::draw(ChurnConfig::none(), 99);
        assert_eq!(w.join_ms, 0.0);
        assert!(w.leave_ms.is_infinite());
        assert!(!w.churns_out(10_000.0));
        assert_eq!(w.end_ms(10_000.0), 10_000.0);
        assert!(ChurnConfig::none().is_none());
        assert!(ChurnConfig::default().is_none());
        assert!(!ChurnConfig::heavy(1_000.0).is_none());
    }

    #[test]
    fn churn_draws_are_fixed_even_when_off() {
        assert_eq!(CHURN_DRAWS_PER_SESSION, 2);
        // Both configs consume the same stream, so flipping churn on
        // cannot re-time anything seeded downstream of the same master
        // seed (windows are drawn from a dedicated sub-stream anyway —
        // this pins the belt to the braces).
        let on = ChurnWindow::draw(ChurnConfig::heavy(1_000.0), 41);
        let off = ChurnWindow::draw(ChurnConfig::none(), 41);
        assert!(on.join_ms > 0.0 || on.leave_ms.is_finite());
        assert_eq!(off.join_ms, 0.0);
    }

    #[test]
    fn named_churn_schedules_parse() {
        for name in ChurnConfig::NAMES {
            assert!(ChurnConfig::parse(name, 1_000.0).is_some(), "{name}");
        }
        assert!(ChurnConfig::parse("GENTLE", 1_000.0).is_some());
        assert!(ChurnConfig::parse("brutal", 1_000.0).is_none());
    }

    #[test]
    fn schedule_lines_render_fixed_width() {
        let mut sampler = ArrivalSampler::new(ArrivalProcess::bursty(100.0), 31);
        let line = sampler.next_arrival().to_string();
        assert!(line.starts_with("#0000 t="), "{line}");
        assert!(line.contains("burst="), "{line}");
        let window = ChurnWindow::draw(ChurnConfig::gentle(1_000.0), 31).to_string();
        assert!(window.starts_with("join="), "{window}");
        let immortal = ChurnWindow::draw(ChurnConfig::none(), 31).to_string();
        assert!(immortal.contains("inf"), "{immortal}");
    }
}
