//! The nine execution environments of the paper's Table IV.
//!
//! | Id | Description                            |
//! |----|----------------------------------------|
//! | S1 | No runtime variance                    |
//! | S2 | CPU-intensive co-running app           |
//! | S3 | Memory-intensive co-running app        |
//! | S4 | Weak Wi-Fi signal                      |
//! | S5 | Weak Wi-Fi Direct signal               |
//! | D1 | Co-running app: music player           |
//! | D2 | Co-running app: web browser            |
//! | D3 | Random Wi-Fi signal (Gaussian)         |
//! | D4 | Varying co-running apps                |

use autoscale_net::SignalProcess;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::interference::InterferenceProcess;
use crate::snapshot::Snapshot;

/// Identifier of a Table IV environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are the Table IV ids themselves
pub enum EnvironmentId {
    S1,
    S2,
    S3,
    S4,
    S5,
    D1,
    D2,
    D3,
    D4,
}

impl EnvironmentId {
    /// The five static environments.
    pub const STATIC: [EnvironmentId; 5] = [
        EnvironmentId::S1,
        EnvironmentId::S2,
        EnvironmentId::S3,
        EnvironmentId::S4,
        EnvironmentId::S5,
    ];

    /// The four dynamic environments.
    pub const DYNAMIC: [EnvironmentId; 4] = [
        EnvironmentId::D1,
        EnvironmentId::D2,
        EnvironmentId::D3,
        EnvironmentId::D4,
    ];

    /// All nine environments in Table IV order.
    pub const ALL: [EnvironmentId; 9] = [
        EnvironmentId::S1,
        EnvironmentId::S2,
        EnvironmentId::S3,
        EnvironmentId::S4,
        EnvironmentId::S5,
        EnvironmentId::D1,
        EnvironmentId::D2,
        EnvironmentId::D3,
        EnvironmentId::D4,
    ];

    /// Whether this is one of the dynamic (time-varying) environments.
    pub fn is_dynamic(self) -> bool {
        matches!(
            self,
            EnvironmentId::D1 | EnvironmentId::D2 | EnvironmentId::D3 | EnvironmentId::D4
        )
    }

    /// The Table IV description.
    pub fn description(self) -> &'static str {
        match self {
            EnvironmentId::S1 => "No runtime variance",
            EnvironmentId::S2 => "CPU-intensive co-running app",
            EnvironmentId::S3 => "Memory-intensive co-running app",
            EnvironmentId::S4 => "Weak Wi-Fi signal",
            EnvironmentId::S5 => "Weak Wi-Fi Direct signal",
            EnvironmentId::D1 => "Co-running app: music player",
            EnvironmentId::D2 => "Co-running app: web browser",
            EnvironmentId::D3 => "Random Wi-Fi signal",
            EnvironmentId::D4 => "Varying co-running apps",
        }
    }
}

impl std::fmt::Display for EnvironmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// An execution environment: interference plus both signal processes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Environment {
    id: EnvironmentId,
    interference: InterferenceProcess,
    wlan: SignalProcess,
    p2p: SignalProcess,
    step: u64,
}

impl Environment {
    /// Builds the Table IV environment for an id.
    pub fn for_id(id: EnvironmentId) -> Self {
        let calm = Snapshot::calm();
        let (interference, wlan, p2p) = match id {
            EnvironmentId::S1 => (
                InterferenceProcess::None,
                SignalProcess::Fixed {
                    dbm: calm.wlan.dbm(),
                },
                SignalProcess::Fixed {
                    dbm: calm.p2p.dbm(),
                },
            ),
            EnvironmentId::S2 => (
                InterferenceProcess::cpu_intensive(),
                SignalProcess::Fixed {
                    dbm: calm.wlan.dbm(),
                },
                SignalProcess::Fixed {
                    dbm: calm.p2p.dbm(),
                },
            ),
            EnvironmentId::S3 => (
                InterferenceProcess::mem_intensive(),
                SignalProcess::Fixed {
                    dbm: calm.wlan.dbm(),
                },
                SignalProcess::Fixed {
                    dbm: calm.p2p.dbm(),
                },
            ),
            EnvironmentId::S4 => (
                InterferenceProcess::None,
                SignalProcess::weak(),
                SignalProcess::Fixed {
                    dbm: calm.p2p.dbm(),
                },
            ),
            EnvironmentId::S5 => (
                InterferenceProcess::None,
                SignalProcess::Fixed {
                    dbm: calm.wlan.dbm(),
                },
                SignalProcess::weak(),
            ),
            EnvironmentId::D1 => (
                InterferenceProcess::MusicPlayer,
                SignalProcess::Fixed {
                    dbm: calm.wlan.dbm(),
                },
                SignalProcess::Fixed {
                    dbm: calm.p2p.dbm(),
                },
            ),
            EnvironmentId::D2 => (
                InterferenceProcess::WebBrowser,
                SignalProcess::Fixed {
                    dbm: calm.wlan.dbm(),
                },
                SignalProcess::Fixed {
                    dbm: calm.p2p.dbm(),
                },
            ),
            EnvironmentId::D3 => (
                InterferenceProcess::None,
                SignalProcess::random_walkabout(),
                SignalProcess::Fixed {
                    dbm: calm.p2p.dbm(),
                },
            ),
            EnvironmentId::D4 => (
                InterferenceProcess::Alternating { period: 25 },
                SignalProcess::Fixed {
                    dbm: calm.wlan.dbm(),
                },
                SignalProcess::Fixed {
                    dbm: calm.p2p.dbm(),
                },
            ),
        };
        Environment {
            id,
            interference,
            wlan,
            p2p,
            step: 0,
        }
    }

    /// The environment's Table IV id.
    pub fn id(&self) -> EnvironmentId {
        self.id
    }

    /// Draws the runtime-variance snapshot for the next inference and
    /// advances the environment's internal step counter.
    pub fn sample(&mut self, rng: &mut StdRng) -> Snapshot {
        let (co_cpu, co_mem) = self.interference.sample(self.step, rng);
        let wlan = self.wlan.sample(rng);
        let p2p = self.p2p.sample(rng);
        self.step += 1;
        Snapshot::new(co_cpu, co_mem, wlan, p2p)
    }

    /// Number of snapshots drawn so far.
    pub fn step(&self) -> u64 {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn s1_is_fully_calm() {
        let mut env = Environment::for_id(EnvironmentId::S1);
        let s = env.sample(&mut rng());
        assert_eq!(s.co_cpu, 0.0);
        assert_eq!(s.co_mem, 0.0);
        assert!(!s.wlan.is_weak());
        assert!(!s.p2p.is_weak());
    }

    #[test]
    fn s2_loads_the_cpu() {
        let mut env = Environment::for_id(EnvironmentId::S2);
        let s = env.sample(&mut rng());
        assert!(s.co_cpu > 0.75);
    }

    #[test]
    fn s4_weakens_only_the_wlan() {
        let mut env = Environment::for_id(EnvironmentId::S4);
        let s = env.sample(&mut rng());
        assert!(s.wlan.is_weak());
        assert!(!s.p2p.is_weak());
    }

    #[test]
    fn s5_weakens_only_the_p2p_link() {
        let mut env = Environment::for_id(EnvironmentId::S5);
        let s = env.sample(&mut rng());
        assert!(!s.wlan.is_weak());
        assert!(s.p2p.is_weak());
    }

    #[test]
    fn d3_signal_varies_between_samples() {
        let mut env = Environment::for_id(EnvironmentId::D3);
        let mut r = rng();
        let samples: Vec<f64> = (0..50).map(|_| env.sample(&mut r).wlan.dbm()).collect();
        let distinct = samples
            .iter()
            .filter(|&&v| (v - samples[0]).abs() > 0.1)
            .count();
        assert!(distinct > 10);
    }

    #[test]
    fn static_and_dynamic_partitions_cover_all() {
        assert_eq!(
            EnvironmentId::STATIC.len() + EnvironmentId::DYNAMIC.len(),
            EnvironmentId::ALL.len()
        );
        for id in EnvironmentId::STATIC {
            assert!(!id.is_dynamic());
        }
        for id in EnvironmentId::DYNAMIC {
            assert!(id.is_dynamic());
        }
    }

    #[test]
    fn step_counter_advances() {
        let mut env = Environment::for_id(EnvironmentId::D4);
        let mut r = rng();
        for _ in 0..5 {
            env.sample(&mut r);
        }
        assert_eq!(env.step(), 5);
    }

    #[test]
    fn descriptions_are_table_iv() {
        assert_eq!(
            EnvironmentId::S2.description(),
            "CPU-intensive co-running app"
        );
        assert_eq!(EnvironmentId::D3.description(), "Random Wi-Fi signal");
    }
}
