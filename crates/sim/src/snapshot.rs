//! Runtime-variance snapshots: what the scheduler (and the simulator)
//! observe at the start of one inference.

use autoscale_net::Rssi;
use serde::{Deserialize, Serialize};

/// The stochastic runtime state at the moment an inference begins.
///
/// These four quantities are exactly the paper's Table I runtime-variance
/// features: co-runner CPU utilization (`S_Co_CPU`), co-runner memory usage
/// (`S_Co_MEM`), WLAN signal strength (`S_RSSI_W`) and peer-to-peer signal
/// strength (`S_RSSI_P`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// CPU utilization of co-running apps, in [0, 1].
    pub co_cpu: f64,
    /// Memory(-bandwidth) usage of co-running apps, in [0, 1].
    pub co_mem: f64,
    /// RSSI of the wireless LAN (path to the cloud).
    pub wlan: Rssi,
    /// RSSI of the peer-to-peer link (path to the connected edge device).
    pub p2p: Rssi,
}

impl Snapshot {
    /// A quiet device on strong networks — the paper's S1 environment.
    pub fn calm() -> Self {
        Snapshot {
            co_cpu: 0.0,
            co_mem: 0.0,
            wlan: Rssi::new(-55.0),
            p2p: Rssi::new(-50.0),
        }
    }

    /// Creates a snapshot, clamping utilizations into [0, 1].
    pub fn new(co_cpu: f64, co_mem: f64, wlan: Rssi, p2p: Rssi) -> Self {
        Snapshot {
            co_cpu: co_cpu.clamp(0.0, 1.0),
            co_mem: co_mem.clamp(0.0, 1.0),
            wlan,
            p2p,
        }
    }

    /// Fraction of CPU compute throughput left for the inference given the
    /// co-runner's utilization. Contention is slightly super-proportional
    /// (scheduling overhead), floored so the inference always progresses.
    pub fn cpu_availability(&self) -> f64 {
        (1.0 - 0.65 * self.co_cpu).max(0.2)
    }

    /// Fraction of memory bandwidth left for the inference; affects every
    /// on-device processor because LPDDR is shared (paper Fig. 5).
    pub fn mem_availability(&self) -> f64 {
        (1.0 - 0.6 * self.co_mem).max(0.25)
    }
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot::calm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_snapshot_is_uncontended() {
        let s = Snapshot::calm();
        assert_eq!(s.cpu_availability(), 1.0);
        assert_eq!(s.mem_availability(), 1.0);
        assert!(!s.wlan.is_weak());
        assert!(!s.p2p.is_weak());
    }

    #[test]
    fn constructor_clamps_utilizations() {
        let s = Snapshot::new(1.5, -0.2, Rssi::STRONG, Rssi::STRONG);
        assert_eq!(s.co_cpu, 1.0);
        assert_eq!(s.co_mem, 0.0);
    }

    #[test]
    fn availability_is_floored() {
        let s = Snapshot::new(1.0, 1.0, Rssi::STRONG, Rssi::STRONG);
        assert!(s.cpu_availability() >= 0.2);
        assert!(s.mem_availability() >= 0.25);
    }

    #[test]
    fn availability_decreases_with_contention() {
        let light = Snapshot::new(0.2, 0.2, Rssi::STRONG, Rssi::STRONG);
        let heavy = Snapshot::new(0.8, 0.8, Rssi::STRONG, Rssi::STRONG);
        assert!(light.cpu_availability() > heavy.cpu_availability());
        assert!(light.mem_availability() > heavy.mem_availability());
    }
}
