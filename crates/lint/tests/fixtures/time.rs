// lint-fixture-path: crates/demo/src/clock.rs
//! Fixture: wall-clock reads in library code.

pub fn bad_instant() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos() as u64
}

pub fn bad_system_time() -> bool {
    std::time::SystemTime::now().elapsed().is_ok()
}

pub fn quarantined() -> std::time::Instant {
    // lint:allow(nondeterministic-time): measured latencies stay outside digests
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
