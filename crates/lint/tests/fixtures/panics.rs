// lint-fixture-path: crates/demo/src/fallible.rs
//! Fixture: aborts in library code.

pub fn bad_unwrap(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn bad_expect(x: Option<u8>) -> u8 {
    x.expect("always present")
}

pub fn bad_panic(flag: bool) {
    if flag {
        panic!("boom");
    }
}

pub fn bad_unreachable(v: u8) -> u8 {
    match v {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn fine_defaults(x: Option<u8>) -> u8 {
    x.unwrap_or_default().max(x.unwrap_or(3))
}

pub fn waived(x: Option<u8>) -> u8 {
    // lint:allow(panic-in-lib): guarded by the caller's is_some() check
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u8).unwrap();
    }
}
