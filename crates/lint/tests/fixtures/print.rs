// lint-fixture-path: crates/demo/src/noisy.rs
//! Fixture: stdio in library code.

pub fn bad_println(x: u8) {
    println!("x = {x}");
}

pub fn bad_eprintln() {
    eprintln!("warning");
}

pub fn bad_dbg(x: u8) -> u8 {
    dbg!(x)
}

pub fn waived_diagnostic() {
    eprintln!("migration notice"); // lint:allow(print-in-lib): one-shot operator-facing notice
}
