// lint-fixture-path: crates/demo/src/shared_state.rs
//! Fixture: shared-state hygiene. Mutable statics are flagged at their
//! declarations and again where serve-reachable code touches them; a
//! Mutex materialized on the serve path is flagged with its witness;
//! opposite lock orders form a reported cycle; a relaxed atomic inside
//! a digest-touching function is flagged; a waived static is silent.

static mut DRIFT_COUNTER: u64 = 0;

static HITS: AtomicU64 = AtomicU64::new(0);

// lint:allow(shared-mutable-hot-state): fixture: diagnostics-only counter, never digested
static WAIVED: AtomicU64 = AtomicU64::new(0);

/// Serve entry: materializes a Mutex and bumps a mutable static.
pub fn serve_probe() -> u64 {
    let _scratch = Mutex::new(0u64);
    HITS.fetch_add(1, Ordering::SeqCst)
}

/// Serve entry acquiring a then b.
pub fn serve_ab(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let x = a.lock();
    let y = b.lock();
    0
}

/// Serve entry acquiring b then a — closes the cycle.
pub fn serve_ba(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let y = b.lock();
    let x = a.lock();
    0
}

/// A relaxed ordering in a function that folds into a digest.
pub fn serve_digest(digest: u64) -> u64 {
    digest ^ HITS.fetch_add(1, Ordering::Relaxed)
}

/// Off the serve path: interior mutability here is not reported.
pub fn setup_scratch() -> u64 {
    let _cold = Mutex::new(0u64);
    0
}
