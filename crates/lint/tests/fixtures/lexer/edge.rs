// Lexer edge cases: raw identifiers, float shapes, shift-vs-generic,
// lifetime-vs-char. The golden dump in edge.tokens pins the stream.
fn r#match<'a>(r#type: &'a str) -> u64 {
    let shifted = 1u64 << 3 >> 1;
    let nested: Vec<Vec<u8>> = Vec::new();
    let floats = (1e9, 1.5f64, 2.5E+3, 1e-9, 3.25);
    let hex = 0xee - 1;
    let range = 0..10;
    let c = 'a';
    let nl = '\n';
    shifted
}

/* nested /* twice /* thrice, with '"' bait */ */ comments close here */
fn r#await<'r#try>(x: &'r#try str) -> (&'r#try str, char) {
    let pair = ('z', '\n');
    (x, pair.0)
}
