// lint-fixture-path: crates/demo/src/physics.rs
//! Fixture: the units checker's dimensional algebra on expressions,
//! bindings, and struct literals.

pub struct Timing {
    pub latency_ms: f64,
    pub deadline_ms: f64,
}

pub fn bad_add(elapsed_ms: f64, energy_mj: f64) -> f64 {
    elapsed_ms + energy_mj
}

pub fn bad_scale(elapsed_ms: f64, pause_ns: f64) -> f64 {
    elapsed_ms - pause_ns
}

pub fn bad_compare(elapsed_ms: f64, budget_mj: f64) -> bool {
    elapsed_ms > budget_mj
}

pub fn bad_binding(power_w: f64, latency_ms: f64) -> f64 {
    let total_ns = power_w * latency_ms;
    total_ns
}

pub fn bad_field(energy_mj: f64) -> Timing {
    Timing {
        latency_ms: energy_mj,
        deadline_ms: 16.0,
    }
}

pub fn bad_max(elapsed_ms: f64, floor_ns: f64) -> f64 {
    elapsed_ms.max(floor_ns)
}

pub fn fine_physics(power_w: f64, latency_ms: f64, base_mj: f64) -> f64 {
    // W × ms = mJ — the algebra combines through multiplication.
    base_mj + power_w * latency_ms
}

pub fn fine_roofline(macs: f64, peak_gmacs: f64, base_ms: f64) -> f64 {
    // Literal conversion factors poison the scale, never the dimension.
    base_ms + macs / (peak_gmacs * 1e9) * 1e3
}

pub fn fine_ratio(fc_ms: f64, total_ms: f64, share_frac: f64) -> bool {
    fc_ms / total_ms > share_frac && total_ms > 0.0
}

pub fn waived(qos_ms: f64, hint_ns: f64) -> f64 {
    // lint:allow(unit-mismatch): the hint is documented as pre-scaled
    qos_ms + hint_ns
}
