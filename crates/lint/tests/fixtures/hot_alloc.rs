// lint-fixture-path: crates/demo/src/hot_alloc.rs
//! Fixture: hot-path allocation analysis. A local `DecisionKernel`
//! pulls three helpers into the hot set; allocation-prone constructs
//! and an unresolvable call inside them are flagged, an exempted site
//! is waived, and the cold twin at the bottom stays silent.

pub trait DecisionKernel {
    fn select(&self, scores: &[f64]) -> usize {
        ranked(scores)
    }
}

/// Hot, one hop below the kernel: pulls the helpers below in.
fn ranked(scores: &[f64]) -> usize {
    let order = indices(scores.len());
    let scratch_len = scratch(scores.len()).len();
    let warm = warmup(scores.len());
    let cap = scratch_len + warm.len();
    order.first().copied().unwrap_or(0).min(cap)
}

/// Hot, two hops below the kernel: the collect is flagged.
fn indices(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// Hot: the heap constructor, the macro and the unresolvable
/// growth-prone `.extend(…)` are all flagged.
fn scratch(n: usize) -> Vec<f64> {
    let mut buf = Vec::with_capacity(n);
    buf.extend(vec![0.0; n]);
    buf
}

/// Hot but waived: the justification travels with the code.
fn warmup(n: usize) -> Vec<u64> {
    // lint:hot-exempt(one-time warmup buffer sized for the whole session)
    let seeds = vec![0; n];
    seeds
}

/// Cold: the same constructs off the hot path are fine.
pub fn cold_scratch(n: usize) -> Vec<f64> {
    vec![0.0; n]
}
