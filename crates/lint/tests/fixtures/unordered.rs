// lint-fixture-path: crates/demo/src/digesting.rs
//! Fixture: unordered iteration near digest/serde output.

use std::collections::HashMap;

pub fn bad_digest_over_map(m: &HashMap<u64, u64>, mut digest: u64) -> u64 {
    for (k, v) in m.iter() {
        digest = fnv1a_fold(digest, *k ^ *v);
    }
    digest
}

pub fn fine_count_only(m: &HashMap<u64, u64>) -> usize {
    m.values().count()
}

pub fn fine_vec_near_digest(v: &[u64], mut digest: u64) -> u64 {
    for k in v.iter() {
        digest = fnv1a_fold(digest, *k);
    }
    digest
}

pub fn waived_sorted_keys(m: &HashMap<u64, u64>, mut digest: u64) -> u64 {
    let mut keys: Vec<u64> = m.keys().copied().collect(); // lint:allow(unordered-iteration): keys are sorted before folding
    keys.sort_unstable();
    for k in keys {
        digest = fnv1a_fold(digest, k);
    }
    digest
}
