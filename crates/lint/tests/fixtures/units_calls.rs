// lint-fixture-path: crates/demo/src/callers.rs
//! Fixture: call-site argument checking through the signature index.

pub struct Battery {
    pub level_mj: f64,
}

impl Battery {
    pub fn drain(&mut self, energy_mj: f64) {
        self.level_mj -= energy_mj;
    }
}

pub fn latency_cost(latency_ms: f64, deadline_ms: f64) -> f64 {
    (latency_ms / deadline_ms).min(1.0)
}

pub fn bad_call(elapsed_ns: f64, deadline_ms: f64) -> f64 {
    latency_cost(elapsed_ns, deadline_ms)
}

pub fn bad_method(b: &mut Battery, elapsed_ms: f64) {
    b.drain(elapsed_ms);
}

pub fn fine_call(elapsed_ms: f64, deadline_ms: f64) -> f64 {
    latency_cost(elapsed_ms, deadline_ms)
}

pub fn fine_unknown(elapsed: f64, deadline_ms: f64) -> f64 {
    // An unsuffixed argument carries no unit: no finding.
    latency_cost(elapsed, deadline_ms)
}

pub fn waived(b: &mut Battery, debt_ms: f64) {
    // lint:allow(unit-arg-mismatch): ledger stores time-priced energy
    b.drain(debt_ms);
}
