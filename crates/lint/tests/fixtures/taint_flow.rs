// lint-fixture-path: crates/demo/src/taint_flow.rs
//! Fixture: interprocedural determinism taint. A wall-clock read is
//! laundered through two helper hops into a digest fold and a
//! serialized report field; an operator knob is declared a source with
//! the marker. The clean fold at the bottom must stay clean.

/// Hop 0: the measurement itself.
fn read_clock_ns() -> u64 {
    // lint:allow(nondeterministic-time): fixture source under test
    std::time::Instant::now().elapsed().as_nanos() as u64
}

/// Hop 1: an innocent-looking forwarding helper.
fn sampled() -> u64 {
    read_clock_ns()
}

/// Hop 2: arithmetic does not wash taint out.
fn jittered(base: u64) -> u64 {
    base ^ sampled()
}

/// The laundered value lands in a digest fold.
pub fn poisoned_digest(mut digest: u64) -> u64 {
    let stamp = jittered(17);
    digest = fnv1a_fold(digest, stamp);
    digest
}

#[derive(Serialize)]
pub struct ProbeReport {
    pub stamp: u64,
    pub decisions: u64,
}

/// The laundered value lands in a serialized report field.
pub fn poisoned_report(decisions: u64) -> ProbeReport {
    let stamp = sampled();
    ProbeReport { stamp, decisions }
}

/// A marker turns an otherwise-pure helper into a declared source.
pub fn marked_source_digest(mut digest: u64) -> u64 {
    // lint:taint-source(operator-injected chaos knob)
    let knob = knob_value();
    digest = fnv1a_fold(digest, knob);
    digest
}

/// Control: folding deterministic data is fine.
pub fn clean_digest(mut digest: u64, action: u64) -> u64 {
    digest = fnv1a_fold(digest, action);
    digest
}

fn knob_value() -> u64 {
    7
}

fn fnv1a_fold(hash: u64, word: u64) -> u64 {
    hash.wrapping_mul(0x0000_0100_0000_01b3) ^ word
}
