// lint-fixture-path: crates/demo/src/bin/driver.rs
//! Fixture: binaries may time, panic and print — but never draw entropy.

pub fn main() {
    let t0 = std::time::Instant::now();
    println!("{}", t0.elapsed().as_nanos());
    let args: Vec<String> = std::env::args().collect();
    let first = args.first().unwrap();
    let mut rng = rand::thread_rng();
    let _ = (first, rng.gen::<u8>());
}
