// lint-fixture-path: crates/demo/src/clean.rs
//! Fixture: determinism-respecting library code — zero findings.
//!
//! Ordered maps feed digests, fallible paths return Results, and the
//! only RNG in sight derives from an explicit seed. Mentions of
//! "thread_rng" or Instant::now in comments and strings must not fire.

use std::collections::BTreeMap;

pub fn digest_over_sorted(m: &BTreeMap<u64, u64>, mut digest: u64) -> u64 {
    for (k, v) in m.iter() {
        digest = fnv1a_fold(digest, *k ^ *v);
    }
    digest
}

pub fn checked(x: Option<u8>) -> Result<u8, &'static str> {
    x.ok_or("missing — and note this string says x.unwrap() harmlessly")
}

pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
