// lint-fixture-path: crates/demo/src/stream_drift.rs
//! Fixture: RNG stream discipline. Entry points (`decide_*`) whose
//! branch arms draw unequal counts are flagged; a policy-conditioned
//! divergence upgrades to policy-dependent-draws; a literal-seeded RNG
//! is underived; a waived protocol and an equal-arm twin stay silent.

/// Entry: the `hard` arm draws one extra value — flagged.
pub fn decide_probe(rng: &mut StdRng, hard: bool) -> f64 {
    let base: f64 = rng.gen();
    if hard {
        base + rng.gen::<f64>()
    } else {
        base
    }
}

/// Entry: the divergent draw is gated on epsilon — upgraded to
/// policy-dependent-draws.
pub fn decide_policy(rng: &mut StdRng, epsilon: f64) -> f64 {
    if rng.gen::<f64>() < epsilon {
        rng.gen::<f64>()
    } else {
        0.5
    }
}

/// A stream seeded from a bare literal — underived.
pub fn underived_stream() -> StdRng {
    StdRng::seed_from_u64(42)
}

/// A stream derived from the seed discipline — clean.
pub fn derived_stream(cell_seed_value: u64) -> StdRng {
    StdRng::seed_from_u64(cell_seed_value)
}

/// Entry with a deliberately divergent protocol, waived — silent.
pub fn decide_waived(rng: &mut StdRng, explore: bool) -> f64 {
    // lint:draws-exempt(fixture: deliberately divergent protocol, pinned elsewhere)
    if explore {
        rng.gen::<f64>()
    } else {
        0.0
    }
}

/// Entry whose arms draw the same count — clean.
pub fn decide_equal(rng: &mut StdRng, hard: bool) -> f64 {
    if hard {
        rng.gen::<f64>() * 2.0
    } else {
        rng.gen::<f64>()
    }
}
