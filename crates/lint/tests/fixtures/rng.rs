// lint-fixture-path: crates/demo/src/rng.rs
//! Fixture: entropy-seeded RNG construction.

pub fn bad_thread_rng() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn bad_entropy() -> SmallRng {
    SmallRng::from_entropy()
}

pub fn bad_os_rng() -> SmallRng {
    SmallRng::from_os_rng()
}

pub fn bad_random() -> f64 {
    rand::random()
}

pub fn good_seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
