//! Golden-fixture self-tests for the analyzer, plus two workspace-level
//! gates: the live tree must be lint-clean, and a deliberately injected
//! entropy-seeded RNG must be caught.

use std::fs;
use std::path::{Path, PathBuf};

use autoscale_lint::rules::{analyze_file, Rule};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The virtual workspace path a fixture declares on its first line.
fn fixture_path(source: &str, file: &Path) -> String {
    let first = source.lines().next().unwrap_or_default();
    first
        .strip_prefix("// lint-fixture-path: ")
        .unwrap_or_else(|| panic!("{} must declare `// lint-fixture-path: …`", file.display()))
        .trim()
        .to_string()
}

#[test]
fn every_fixture_matches_its_expected_findings() {
    let mut checked = 0;
    let mut entries: Vec<PathBuf> = fs::read_dir(fixtures_dir())
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    for fixture in entries {
        let source = fs::read_to_string(&fixture).expect("fixture is readable");
        let virtual_path = fixture_path(&source, &fixture);
        let got: Vec<String> = analyze_file(&virtual_path, &source)
            .into_iter()
            .map(|f| format!("{}:{}", f.line, f.rule.name()))
            .collect();
        let expected_file = fixture.with_extension("expected");
        let expected_text = fs::read_to_string(&expected_file)
            .unwrap_or_else(|_| panic!("{} needs {}", fixture.display(), expected_file.display()));
        let want: Vec<String> = expected_text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        assert_eq!(
            got,
            want,
            "fixture {} (as {})",
            fixture.display(),
            virtual_path
        );
        checked += 1;
    }
    assert!(
        checked >= 7,
        "expected at least 7 fixtures, found {checked}"
    );
}

#[test]
fn the_live_workspace_is_lint_clean() {
    let report =
        autoscale_lint::analyze_workspace(&workspace_root()).expect("workspace is readable");
    assert!(
        report.is_clean(),
        "the tree must stay lint-clean; findings:\n{}",
        report.render_human()
    );
    // Sanity: the walk actually saw the workspace, not an empty dir.
    assert!(
        report.files_scanned > 50,
        "only {} files",
        report.files_scanned
    );
}

#[test]
fn an_injected_thread_rng_in_the_policy_is_caught() {
    // The acceptance check from the issue: sabotaging the epsilon-greedy
    // policy with an entropy-seeded RNG must flip the analyzer to red
    // with rule `nondeterministic-rng`.
    let policy_path = workspace_root().join("crates/rl/src/policy.rs");
    let pristine = fs::read_to_string(policy_path).expect("policy source is readable");
    assert!(
        analyze_file("crates/rl/src/policy.rs", &pristine).is_empty(),
        "the pristine policy must be clean"
    );
    let sabotaged = format!(
        "{pristine}\npub fn sabotage() -> f64 {{\n    let mut rng = rand::thread_rng();\n    rng.gen()\n}}\n"
    );
    let findings = analyze_file("crates/rl/src/policy.rs", &sabotaged);
    assert!(
        findings.iter().any(|f| f.rule == Rule::NondeterministicRng),
        "thread_rng must be flagged; got {findings:?}"
    );
}
