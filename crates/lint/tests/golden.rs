//! Golden-fixture self-tests for the analyzer, plus two workspace-level
//! gates: the live tree must be lint-clean, and a deliberately injected
//! entropy-seeded RNG must be caught.

use std::fs;
use std::path::{Path, PathBuf};

use autoscale_lint::rules::{analyze_file, Rule};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The virtual workspace path a fixture declares on its first line.
fn fixture_path(source: &str, file: &Path) -> String {
    let first = source.lines().next().unwrap_or_default();
    first
        .strip_prefix("// lint-fixture-path: ")
        .unwrap_or_else(|| panic!("{} must declare `// lint-fixture-path: …`", file.display()))
        .trim()
        .to_string()
}

#[test]
fn every_fixture_matches_its_expected_findings() {
    let mut checked = 0;
    let mut entries: Vec<PathBuf> = fs::read_dir(fixtures_dir())
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    for fixture in entries {
        let source = fs::read_to_string(&fixture).expect("fixture is readable");
        let virtual_path = fixture_path(&source, &fixture);
        let got: Vec<String> = analyze_file(&virtual_path, &source)
            .into_iter()
            .map(|f| format!("{}:{}", f.line, f.rule.name()))
            .collect();
        let expected_file = fixture.with_extension("expected");
        let expected_text = fs::read_to_string(&expected_file)
            .unwrap_or_else(|_| panic!("{} needs {}", fixture.display(), expected_file.display()));
        let want: Vec<String> = expected_text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        assert_eq!(
            got,
            want,
            "fixture {} (as {})",
            fixture.display(),
            virtual_path
        );
        checked += 1;
    }
    assert!(
        checked >= 9,
        "expected at least 9 fixtures, found {checked}"
    );
}

#[test]
fn the_lexer_token_stream_matches_its_golden_dump() {
    // Edge cases the rules depend on: raw identifiers and raw lifetimes
    // lex as their escaped name, float shapes keep exact text, `>>` is
    // two adjacent `>` tokens (context decides shift vs generic),
    // `'a` vs `'a'` resolve to lifetime vs literal, and doubly-nested
    // block comments close where they should.
    // Regenerate the dump with LEX_GOLDEN_REGEN=1.
    use autoscale_lint::lexer::{lex, TokenKind};
    let dir = fixtures_dir().join("lexer");
    let source = fs::read_to_string(dir.join("edge.rs")).expect("lexer fixture is readable");
    let got: Vec<String> = lex(&source)
        .tokens
        .iter()
        .map(|t| {
            let kind = match t.kind {
                TokenKind::Ident => "ident",
                TokenKind::Literal => "lit",
                TokenKind::Lifetime => "life",
                TokenKind::Punct(_) => "punct",
            };
            format!("{}:{}:{}", t.line, kind, t.text)
        })
        .collect();
    if std::env::var_os("LEX_GOLDEN_REGEN").is_some() {
        fs::write(dir.join("edge.tokens"), got.join("\n") + "\n").expect("dump is writable");
        return;
    }
    let want: Vec<String> = fs::read_to_string(dir.join("edge.tokens"))
        .expect("golden token dump exists")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(got, want, "token stream drifted from its golden dump");
}

#[test]
fn the_live_workspace_is_lint_clean() {
    let report =
        autoscale_lint::analyze_workspace(&workspace_root()).expect("workspace is readable");
    assert!(
        report.is_clean(),
        "the tree must stay lint-clean; findings:\n{}",
        report.render_human()
    );
    // Sanity: the walk actually saw the workspace, not an empty dir.
    assert!(
        report.files_scanned > 50,
        "only {} files",
        report.files_scanned
    );
}

#[test]
fn a_swapped_time_suffix_in_the_power_model_is_caught() {
    // The acceptance check from issue 4: copy `platform/src/power.rs`,
    // swap `latency_ms` for a `_ns` value at one call site, and the
    // units checker must catch it. Two variants: the swap inside the
    // energy product (W × ns bound to `processor_mj` — a scale clash),
    // and a wrapper that feeds nanoseconds into the `latency_ms`
    // parameter (caught through the signature index).
    let power_path = workspace_root().join("crates/platform/src/power.rs");
    let pristine = fs::read_to_string(power_path).expect("power source is readable");
    assert!(
        analyze_file("crates/platform/src/power.rs", &pristine).is_empty(),
        "the pristine power model must be unit-clean"
    );

    let product_site = "busy_power_w(processor, cond) * latency_ms";
    assert!(pristine.contains(product_site), "sabotage site moved");
    let swapped = pristine.replace(product_site, "busy_power_w(processor, cond) * latency_ns");
    let findings = analyze_file("crates/platform/src/power.rs", &swapped);
    assert!(
        findings.iter().any(|f| f.rule == Rule::UnitBindingMismatch),
        "W × ns bound to `processor_mj` must be flagged; got {findings:?}"
    );

    let wrapper = format!(
        "{pristine}\npub fn sabotaged(p: &Processor, cond: &ExecutionConditions, elapsed_ns: f64) \
         -> EnergyBreakdown {{\n    on_device_energy_mj(p, cond, elapsed_ns, 0.8)\n}}\n"
    );
    let findings = analyze_file("crates/platform/src/power.rs", &wrapper);
    assert!(
        findings.iter().any(|f| f.rule == Rule::UnitArgMismatch),
        "nanoseconds into `latency_ms` must be flagged; got {findings:?}"
    );
}

#[test]
fn a_laundered_wall_clock_read_into_the_digest_is_caught() {
    // The interprocedural acceptance check from issue 8: read the wall
    // clock in one helper, forward it through a second, and fold the
    // result into the session digest two files' worth of calls away
    // from the `Instant::now()` — the taint pass must still connect
    // source to sink across the whole workspace.
    let root = workspace_root();
    let mut sources = autoscale_lint::read_workspace_sources(&root).expect("workspace is readable");
    let target = "crates/core/src/serve/session.rs";
    let idx = sources
        .iter()
        .position(|(p, _)| p == target)
        .expect("session source present");
    sources[idx].1.push_str(
        "\nfn wall_probe_ns() -> u64 {\n\
         \x20   // lint:allow(nondeterministic-time): sabotage under test\n\
         \x20   std::time::Instant::now().elapsed().as_nanos() as u64\n\
         }\n\
         fn wall_relay_ns() -> u64 { wall_probe_ns() }\n\
         pub fn sabotaged_digest(mut digest: u64) -> u64 {\n\
         \x20   digest = fnv1a_fold(digest, wall_relay_ns());\n\
         \x20   digest\n\
         }\n",
    );
    let analysis = autoscale_lint::analyze_sources(sources);
    assert!(
        analysis
            .report
            .findings
            .iter()
            .any(|f| f.rule == Rule::TaintedDigest && f.file == target),
        "a two-hop laundered Instant::now must reach the digest sink; findings:\n{}",
        analysis.report.render_human()
    );
}

#[test]
fn an_allocation_three_calls_below_the_decision_kernel_is_caught() {
    // The hot-path acceptance check from issue 8: a fresh `decide_*`
    // entry point on the engine reaches a Vec allocation through two
    // intermediate hops; reachability must pull the allocation into
    // the hot set and flag it.
    let root = workspace_root();
    let mut sources = autoscale_lint::read_workspace_sources(&root).expect("workspace is readable");
    let target = "crates/core/src/engine.rs";
    let idx = sources
        .iter()
        .position(|(p, _)| p == target)
        .expect("engine source present");
    sources[idx].1.push_str(
        "\nimpl AutoScaleEngine {\n\
         \x20   pub fn decide_probe(&self) -> usize { sab_hop1() }\n\
         }\n\
         fn sab_hop1() -> usize { sab_hop2() }\n\
         fn sab_hop2() -> usize { sab_alloc() }\n\
         fn sab_alloc() -> usize {\n\
         \x20   let v: Vec<u64> = Vec::with_capacity(64);\n\
         \x20   v.len()\n\
         }\n",
    );
    let analysis = autoscale_lint::analyze_sources(sources);
    let hit = analysis.report.findings.iter().any(|f| {
        f.rule == Rule::HotPathAlloc && f.file == target && f.message.contains("decide_probe")
    });
    assert!(
        hit,
        "Vec::with_capacity three calls below decide_probe must be flagged with its \
         entry-point witness; findings:\n{}",
        analysis.report.render_human()
    );
}

#[test]
fn a_conditional_extra_fault_draw_is_caught() {
    // The stream-discipline acceptance check from issue 9: give a copy
    // of the fault injector a request method whose branch arms consume
    // unequal draw counts. FaultInjector methods are per-request entry
    // points, so the interval analysis must flag the divergence — this
    // is exactly the drift that would break FAULT_DRAWS_PER_REQUEST.
    let root = workspace_root();
    let mut sources = autoscale_lint::read_workspace_sources(&root).expect("workspace is readable");
    let target = "crates/sim/src/faults.rs";
    let idx = sources
        .iter()
        .position(|(p, _)| p == target)
        .expect("faults source present");
    sources[idx].1.push_str(
        "\nimpl FaultInjector {\n\
         \x20   pub fn sabotaged_faults(&mut self, hard: bool) -> f64 {\n\
         \x20       if hard {\n\
         \x20           self.rng.next_f64()\n\
         \x20       } else {\n\
         \x20           0.0\n\
         \x20       }\n\
         \x20   }\n\
         }\n",
    );
    let analysis = autoscale_lint::analyze_sources(sources);
    let hit = analysis.report.findings.iter().any(|f| {
        f.rule == Rule::DivergentRngDraws
            && f.file == target
            && f.message.contains("sabotaged_faults")
    });
    assert!(
        hit,
        "a conditional extra fault draw must be flagged as divergent-rng-draws; findings:\n{}",
        analysis.report.render_human()
    );
}

#[test]
fn a_static_mut_counter_under_a_decide_path_is_caught() {
    // The shared-state acceptance check from issue 9: hang a `static
    // mut` counter one call below a fresh `decide_*` entry point in the
    // kernel source. The serve-path reachability pass must flag the
    // counter's use and name the entry point in the witness chain.
    let root = workspace_root();
    let mut sources = autoscale_lint::read_workspace_sources(&root).expect("workspace is readable");
    let target = "crates/rl/src/kernel.rs";
    let idx = sources
        .iter()
        .position(|(p, _)| p == target)
        .expect("kernel source present");
    sources[idx].1.push_str(
        "\nstatic mut SAB_DECIDES: u64 = 0;\n\
         fn sab_counter_bump() -> u64 {\n\
         \x20   unsafe {\n\
         \x20       SAB_DECIDES += 1;\n\
         \x20       SAB_DECIDES\n\
         \x20   }\n\
         }\n\
         pub fn decide_sabotaged() -> u64 {\n\
         \x20   sab_counter_bump()\n\
         }\n",
    );
    let analysis = autoscale_lint::analyze_sources(sources);
    let hit = analysis.report.findings.iter().any(|f| {
        f.rule == Rule::SharedMutableHotState
            && f.file == target
            && f.message.contains("decide_sabotaged")
    });
    assert!(
        hit,
        "a static mut counter under a decide path must be flagged with its witness; findings:\n{}",
        analysis.report.render_human()
    );
}

#[test]
fn an_injected_thread_rng_in_the_policy_is_caught() {
    // The acceptance check from the issue: sabotaging the epsilon-greedy
    // policy with an entropy-seeded RNG must flip the analyzer to red
    // with rule `nondeterministic-rng`.
    let policy_path = workspace_root().join("crates/rl/src/policy.rs");
    let pristine = fs::read_to_string(policy_path).expect("policy source is readable");
    assert!(
        analyze_file("crates/rl/src/policy.rs", &pristine).is_empty(),
        "the pristine policy must be clean"
    );
    let sabotaged = format!(
        "{pristine}\npub fn sabotage() -> f64 {{\n    let mut rng = rand::thread_rng();\n    rng.gen()\n}}\n"
    );
    let findings = analyze_file("crates/rl/src/policy.rs", &sabotaged);
    assert!(
        findings.iter().any(|f| f.rule == Rule::NondeterministicRng),
        "thread_rng must be flagged; got {findings:?}"
    );
}
