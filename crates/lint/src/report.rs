//! Rendering a lint run: human-readable lines for terminals and a
//! stable JSON document for baselines and tooling.
//!
//! The JSON is hand-rolled (this crate is std-only by design) and
//! field-ordered deterministically, so `results/lint_baseline.json`
//! diffs cleanly across PRs.

use std::collections::BTreeMap;

use crate::rules::{Finding, Rule};

/// Shape of the interprocedural analysis behind a report: how much of
/// the workspace the call graph could see and resolve. Zero-valued when
/// the report came from a per-file run without the workspace passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Function definitions in the call graph.
    pub functions: usize,
    /// Resolved fn-to-fn call edges.
    pub call_edges: usize,
    /// Call sites (non-test lib/bin code) the graph could not resolve.
    pub unresolved_calls: usize,
    /// Functions reachable from a decision hot-path entry.
    pub hot_functions: usize,
    /// Functions the taint pass marks as returning tainted values.
    pub taint_returning: usize,
    /// Functions whose draw intervals the stream pass checked (reachable
    /// from per-request entry points).
    pub stream_checked: usize,
    /// Lock acquisition sites the shared-state pass recorded.
    pub lock_sites: usize,
}

/// Wall-clock cost of each analyzer pass, in milliseconds. Carried on
/// the report only when `--timings` asks for it, and always stripped
/// before a baseline is written — baselines must stay byte-stable.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PassTimings {
    /// Lexing every file.
    pub lex_ms: f64,
    /// Units parsing + signature index + per-file token rules.
    pub parse_ms: f64,
    /// Building the workspace call graph.
    pub callgraph_ms: f64,
    /// The interprocedural taint pass.
    pub taint_ms: f64,
    /// Hot-path reachability + allocation checks.
    pub hotpath_ms: f64,
    /// The RNG stream-discipline pass.
    pub streams_ms: f64,
    /// The shared-state / lock-order pass.
    pub shared_ms: f64,
}

impl PassTimings {
    /// Total across all passes.
    pub fn total_ms(&self) -> f64 {
        self.lex_ms
            + self.parse_ms
            + self.callgraph_ms
            + self.taint_ms
            + self.hotpath_ms
            + self.streams_ms
            + self.shared_ms
    }
}

/// The outcome of analyzing a set of files.
#[derive(Debug, Clone)]
pub struct Report {
    /// Every unsuppressed finding, ordered by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings waived by `lint:allow`/`lint:hot-exempt`, same order.
    /// Kept visible so waivers are auditable from the JSON report and
    /// so the baseline diff can tell "fixed" from "silenced".
    pub suppressed: Vec<Finding>,
    /// Number of files analyzed.
    pub files_scanned: usize,
    /// Call-graph/taint coverage numbers for this run.
    pub analysis: AnalysisStats,
    /// Per-pass wall-clock timings; `None` unless `--timings` asked for
    /// them (and always `None` in baselines).
    pub timings: Option<PassTimings>,
}

impl Report {
    /// Builds a report, normalizing finding order.
    pub fn new(findings: Vec<Finding>, files_scanned: usize) -> Self {
        Report::with_details(
            findings,
            Vec::new(),
            files_scanned,
            AnalysisStats::default(),
        )
    }

    /// Builds a report that also carries suppressed findings and the
    /// interprocedural coverage stats.
    pub fn with_details(
        mut findings: Vec<Finding>,
        mut suppressed: Vec<Finding>,
        files_scanned: usize,
        analysis: AnalysisStats,
    ) -> Self {
        let order = |list: &mut Vec<Finding>| {
            list.sort_by(|a: &Finding, b: &Finding| {
                (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
            });
            list.dedup();
        };
        order(&mut findings);
        order(&mut suppressed);
        Report {
            findings,
            suppressed,
            files_scanned,
            analysis,
            timings: None,
        }
    }

    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Finding counts per rule, every rule present (zero included) so
    /// baseline diffs show rule additions explicitly.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> =
            Rule::ALL.iter().map(|r| (r.name(), 0)).collect();
        for f in &self.findings {
            if let Some(n) = counts.get_mut(f.rule.name()) {
                *n += 1;
            }
        }
        counts
    }

    /// Terminal rendering: one `file:line: [rule] message` per finding,
    /// then a per-rule summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file,
                f.line,
                f.rule.name(),
                f.message
            ));
        }
        let per_rule: Vec<String> = self
            .counts()
            .iter()
            .filter(|(_, &n)| n > 0)
            .map(|(name, n)| format!("{name}: {n}"))
            .collect();
        let waived = if self.suppressed.is_empty() {
            String::new()
        } else {
            format!(" ({} waived)", self.suppressed.len())
        };
        if self.is_clean() {
            out.push_str(&format!(
                "autoscale-lint: clean — 0 findings{waived} across {} files\n",
                self.files_scanned
            ));
        } else {
            out.push_str(&format!(
                "autoscale-lint: {} finding{} ({}){waived} across {} files\n",
                self.findings.len(),
                if self.findings.len() == 1 { "" } else { "s" },
                per_rule.join(", "),
                self.files_scanned
            ));
        }
        if self.analysis.functions > 0 {
            let a = &self.analysis;
            out.push_str(&format!(
                "call graph: {} functions, {} edges ({} unresolved), \
                 {} hot, {} taint-returning, {} stream-checked, {} lock sites\n",
                a.functions,
                a.call_edges,
                a.unresolved_calls,
                a.hot_functions,
                a.taint_returning,
                a.stream_checked,
                a.lock_sites
            ));
        }
        if let Some(t) = &self.timings {
            out.push_str(&format!(
                "timings: lex {:.1} ms, parse {:.1} ms, callgraph {:.1} ms, \
                 taint {:.1} ms, hotpath {:.1} ms, streams {:.1} ms, \
                 shared {:.1} ms (total {:.1} ms)\n",
                t.lex_ms,
                t.parse_ms,
                t.callgraph_ms,
                t.taint_ms,
                t.hotpath_ms,
                t.streams_ms,
                t.shared_ms,
                t.total_ms()
            ));
        }
        out
    }

    /// JSON rendering with stable field and entry order.
    ///
    /// `findings` comes first and `suppressed` second — baseline
    /// parsing relies on that order to take entries only from the
    /// former (see [`parse_baseline`]).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        render_finding_array(&mut out, &self.findings);
        out.push_str("],\n  \"suppressed\": [");
        render_finding_array(&mut out, &self.suppressed);
        out.push_str("],\n  \"counts\": {");
        for (i, (name, n)) in self.counts().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {n}"));
        }
        let a = &self.analysis;
        out.push_str(&format!(
            "\n  }},\n  \"analysis\": {{\"functions\": {}, \"call_edges\": {}, \
             \"unresolved_calls\": {}, \"hot_functions\": {}, \"taint_returning\": {}, \
             \"stream_checked\": {}, \"lock_sites\": {}}},",
            a.functions,
            a.call_edges,
            a.unresolved_calls,
            a.hot_functions,
            a.taint_returning,
            a.stream_checked,
            a.lock_sites
        ));
        if let Some(t) = &self.timings {
            out.push_str(&format!(
                "\n  \"timings\": {{\"lex_ms\": {:.2}, \"parse_ms\": {:.2}, \
                 \"callgraph_ms\": {:.2}, \"taint_ms\": {:.2}, \"hotpath_ms\": {:.2}, \
                 \"streams_ms\": {:.2}, \"shared_ms\": {:.2}, \"total_ms\": {:.2}}},",
                t.lex_ms,
                t.parse_ms,
                t.callgraph_ms,
                t.taint_ms,
                t.hotpath_ms,
                t.streams_ms,
                t.shared_ms,
                t.total_ms()
            ));
        }
        out.push_str(&format!(
            "\n  \"total\": {},\n  \"files_scanned\": {}\n}}\n",
            self.findings.len(),
            self.files_scanned
        ));
        out
    }
}

fn render_finding_array(out: &mut String, findings: &[Finding]) {
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule.name(),
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
}

/// One baseline entry: the identity of a previously-accepted finding.
/// Messages are deliberately not part of the identity — rewording a
/// diagnostic must not break the baseline.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (kept as text so baselines survive rule renames as
    /// explicit diffs rather than parse errors).
    pub rule: String,
}

impl BaselineEntry {
    fn of(f: &Finding) -> BaselineEntry {
        BaselineEntry {
            file: f.file.clone(),
            line: f.line,
            rule: f.rule.name().to_string(),
        }
    }
}

/// The comparison of a fresh run against a committed baseline.
#[derive(Debug, Clone)]
pub struct BaselineDiff {
    /// Findings not present in the baseline — these fail the run.
    pub new: Vec<Finding>,
    /// Baseline entries no longer reported — fixed (or moved); they
    /// never fail the run, but the baseline should be regenerated.
    pub fixed: Vec<BaselineEntry>,
}

/// Parses the analyzer's own JSON format (see [`Report::render_json`])
/// back into baseline entries. This is not a general JSON parser: it
/// reads the one-object-per-line layout this crate writes, which is
/// exactly what a committed `results/lint_baseline.json` contains.
///
/// # Errors
///
/// Returns a message when the document has no `"findings"` key or an
/// entry line is missing one of `file`/`line`/`rule`.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    if !text.contains("\"findings\"") {
        return Err("not a lint report: no \"findings\" key".to_string());
    }
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        // Entry lines after the `"suppressed"` key describe waived
        // findings; those never belong in a baseline.
        if line.starts_with("\"suppressed\"") {
            break;
        }
        let Some(rest) = line.strip_prefix('{') else {
            continue;
        };
        if !rest.trim_start().starts_with("\"file\"") {
            continue;
        }
        let file = json_str_field(line, "file")
            .ok_or_else(|| format!("baseline entry without a file: {line}"))?;
        let lineno = json_num_field(line, "line")
            .ok_or_else(|| format!("baseline entry without a line: {line}"))?;
        let rule = json_str_field(line, "rule")
            .ok_or_else(|| format!("baseline entry without a rule: {line}"))?;
        entries.push(BaselineEntry {
            file,
            line: lineno,
            rule,
        });
    }
    entries.sort();
    entries.dedup();
    Ok(entries)
}

/// Extracts `"key": "value"` from a single-line JSON object, undoing
/// the escapes [`json_escape`] writes.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\": \"");
    let start = line.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    // \uXXXX — baseline identities never need these;
                    // keep the escape verbatim.
                    out.push_str("\\u");
                }
                escaped => out.push(escaped),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts `"key": 123` from a single-line JSON object.
fn json_num_field(line: &str, key: &str) -> Option<u32> {
    let marker = format!("\"{key}\": ");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

impl Report {
    /// Splits this run's findings against a baseline: what is new
    /// (fails) and what the baseline lists but the run no longer
    /// reports (fixed).
    pub fn against_baseline(&self, baseline: &[BaselineEntry]) -> BaselineDiff {
        let current: Vec<BaselineEntry> = self.findings.iter().map(BaselineEntry::of).collect();
        let waived: Vec<BaselineEntry> = self.suppressed.iter().map(BaselineEntry::of).collect();
        let new = self
            .findings
            .iter()
            .filter(|f| !baseline.contains(&BaselineEntry::of(f)))
            .cloned()
            .collect();
        // A baseline entry that is now *suppressed* was silenced, not
        // fixed — claiming it fixed would invite a baseline regen that
        // hides the waiver.
        let fixed = baseline
            .iter()
            .filter(|e| !current.contains(e) && !waived.contains(e))
            .cloned()
            .collect();
        BaselineDiff { new, fixed }
    }
}

/// Escapes a string for a JSON double-quoted context.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: Rule) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message: "msg with \"quotes\"".to_string(),
        }
    }

    #[test]
    fn findings_are_ordered_and_counted() {
        let report = Report::new(
            vec![
                finding("b.rs", 3, Rule::PanicInLib),
                finding("a.rs", 9, Rule::NondeterministicRng),
                finding("a.rs", 2, Rule::PanicInLib),
            ],
            5,
        );
        let order: Vec<(&str, u32)> = report
            .findings
            .iter()
            .map(|f| (f.file.as_str(), f.line))
            .collect();
        assert_eq!(order, vec![("a.rs", 2), ("a.rs", 9), ("b.rs", 3)]);
        assert_eq!(report.counts()["panic-in-lib"], 2);
        assert_eq!(report.counts()["nondeterministic-rng"], 1);
        assert_eq!(report.counts()["print-in-lib"], 0);
    }

    #[test]
    fn human_rendering_summarizes() {
        let report = Report::new(vec![finding("a.rs", 1, Rule::PrintInLib)], 2);
        let text = report.render_human();
        assert!(text.contains("a.rs:1: [print-in-lib]"));
        assert!(text.contains("1 finding (print-in-lib: 1) across 2 files"));
        let clean = Report::new(Vec::new(), 7);
        assert!(clean
            .render_human()
            .contains("clean — 0 findings across 7 files"));
    }

    #[test]
    fn baselines_round_trip_through_the_json_renderer() {
        let report = Report::new(
            vec![
                finding("a.rs", 2, Rule::UnitMismatch),
                finding("b.rs", 7, Rule::PanicInLib),
            ],
            3,
        );
        let entries = parse_baseline(&report.render_json()).expect("own JSON parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].file, "a.rs");
        assert_eq!(entries[0].line, 2);
        assert_eq!(entries[0].rule, "unit-mismatch");
        // A full round trip is a no-op diff.
        let diff = report.against_baseline(&entries);
        assert!(diff.new.is_empty());
        assert!(diff.fixed.is_empty());
    }

    #[test]
    fn baseline_diff_separates_new_from_fixed() {
        let old = Report::new(
            vec![
                finding("a.rs", 2, Rule::UnitMismatch),
                finding("gone.rs", 4, Rule::PrintInLib),
            ],
            3,
        );
        let baseline = parse_baseline(&old.render_json()).expect("parses");
        let now = Report::new(
            vec![
                finding("a.rs", 2, Rule::UnitMismatch),
                finding("fresh.rs", 9, Rule::UnitArgMismatch),
            ],
            3,
        );
        let diff = now.against_baseline(&baseline);
        assert_eq!(diff.new.len(), 1);
        assert_eq!(diff.new[0].file, "fresh.rs");
        assert_eq!(diff.fixed.len(), 1);
        assert_eq!(diff.fixed[0].file, "gone.rs");
    }

    #[test]
    fn non_reports_are_rejected() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("findings findings").is_err());
        // An empty findings list is a valid (clean) baseline.
        let clean = Report::new(Vec::new(), 1);
        assert_eq!(
            parse_baseline(&clean.render_json()).expect("parses"),
            vec![]
        );
    }

    #[test]
    fn suppressed_findings_stay_out_of_the_baseline() {
        let report = Report::with_details(
            vec![finding("a.rs", 2, Rule::UnitMismatch)],
            vec![finding("waived.rs", 9, Rule::HotPathAlloc)],
            3,
            AnalysisStats::default(),
        );
        let entries = parse_baseline(&report.render_json()).expect("parses");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].file, "a.rs");
    }

    #[test]
    fn suppressed_findings_do_not_count_as_fixed() {
        // Yesterday the finding was live and baselined; today it is
        // suppressed. That is "silenced", not "fixed".
        let old = Report::new(vec![finding("a.rs", 2, Rule::PanicInLib)], 1);
        let baseline = parse_baseline(&old.render_json()).expect("parses");
        let now = Report::with_details(
            Vec::new(),
            vec![finding("a.rs", 2, Rule::PanicInLib)],
            1,
            AnalysisStats::default(),
        );
        let diff = now.against_baseline(&baseline);
        assert!(diff.new.is_empty());
        assert!(diff.fixed.is_empty());
        // A genuinely removed finding still reports as fixed.
        let removed = Report::new(Vec::new(), 1);
        assert_eq!(removed.against_baseline(&baseline).fixed.len(), 1);
    }

    #[test]
    fn analysis_stats_render_in_json_and_human() {
        let stats = AnalysisStats {
            functions: 10,
            call_edges: 20,
            unresolved_calls: 3,
            hot_functions: 4,
            taint_returning: 2,
            stream_checked: 6,
            lock_sites: 1,
        };
        let report = Report::with_details(Vec::new(), Vec::new(), 5, stats);
        let json = report.render_json();
        assert!(json.contains("\"analysis\": {\"functions\": 10, \"call_edges\": 20"));
        assert!(json.contains("\"unresolved_calls\": 3"));
        assert!(json.contains("\"stream_checked\": 6, \"lock_sites\": 1"));
        let human = report.render_human();
        assert!(human.contains("call graph: 10 functions, 20 edges (3 unresolved)"));
        assert!(human.contains("6 stream-checked, 1 lock sites"));
    }

    #[test]
    fn timings_render_only_when_requested_and_parse_cleanly() {
        let mut report = Report::new(vec![finding("a.rs", 2, Rule::UnitMismatch)], 3);
        assert!(!report.render_json().contains("\"timings\""));
        report.timings = Some(PassTimings {
            lex_ms: 1.5,
            parse_ms: 2.0,
            callgraph_ms: 3.0,
            taint_ms: 4.0,
            hotpath_ms: 0.5,
            streams_ms: 1.0,
            shared_ms: 0.25,
        });
        let json = report.render_json();
        assert!(json.contains("\"timings\": {\"lex_ms\": 1.50"));
        assert!(json.contains("\"total_ms\": 12.25"));
        assert!(report.render_human().contains("total 12.2 ms"));
        // A timings section must not confuse the baseline parser.
        let entries = parse_baseline(&json).expect("parses with timings present");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].file, "a.rs");
    }

    #[test]
    fn json_is_escaped_and_stable() {
        let report = Report::new(vec![finding("a.rs", 1, Rule::PanicInLib)], 1);
        let json = report.render_json();
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"total\": 1"));
        assert!(json.contains("\"files_scanned\": 1"));
        // Every rule appears in counts, even at zero.
        for rule in Rule::ALL {
            assert!(json.contains(rule.name()), "{}", rule.name());
        }
    }
}
