//! Rendering a lint run: human-readable lines for terminals and a
//! stable JSON document for baselines and tooling.
//!
//! The JSON is hand-rolled (this crate is std-only by design) and
//! field-ordered deterministically, so `results/lint_baseline.json`
//! diffs cleanly across PRs.

use std::collections::BTreeMap;

use crate::rules::{Finding, Rule};

/// The outcome of analyzing a set of files.
#[derive(Debug, Clone)]
pub struct Report {
    /// Every unsuppressed finding, ordered by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files_scanned: usize,
}

impl Report {
    /// Builds a report, normalizing finding order.
    pub fn new(mut findings: Vec<Finding>, files_scanned: usize) -> Self {
        findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        Report {
            findings,
            files_scanned,
        }
    }

    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Finding counts per rule, every rule present (zero included) so
    /// baseline diffs show rule additions explicitly.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> =
            Rule::ALL.iter().map(|r| (r.name(), 0)).collect();
        for f in &self.findings {
            if let Some(n) = counts.get_mut(f.rule.name()) {
                *n += 1;
            }
        }
        counts
    }

    /// Terminal rendering: one `file:line: [rule] message` per finding,
    /// then a per-rule summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file,
                f.line,
                f.rule.name(),
                f.message
            ));
        }
        let per_rule: Vec<String> = self
            .counts()
            .iter()
            .filter(|(_, &n)| n > 0)
            .map(|(name, n)| format!("{name}: {n}"))
            .collect();
        if self.is_clean() {
            out.push_str(&format!(
                "autoscale-lint: clean — 0 findings across {} files\n",
                self.files_scanned
            ));
        } else {
            out.push_str(&format!(
                "autoscale-lint: {} finding{} ({}) across {} files\n",
                self.findings.len(),
                if self.findings.len() == 1 { "" } else { "s" },
                per_rule.join(", "),
                self.files_scanned
            ));
        }
        out
    }

    /// JSON rendering with stable field and entry order.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&f.file),
                f.line,
                f.rule.name(),
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"counts\": {");
        for (i, (name, n)) in self.counts().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {n}"));
        }
        out.push_str(&format!(
            "\n  }},\n  \"total\": {},\n  \"files_scanned\": {}\n}}\n",
            self.findings.len(),
            self.files_scanned
        ));
        out
    }
}

/// Escapes a string for a JSON double-quoted context.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: Rule) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message: "msg with \"quotes\"".to_string(),
        }
    }

    #[test]
    fn findings_are_ordered_and_counted() {
        let report = Report::new(
            vec![
                finding("b.rs", 3, Rule::PanicInLib),
                finding("a.rs", 9, Rule::NondeterministicRng),
                finding("a.rs", 2, Rule::PanicInLib),
            ],
            5,
        );
        let order: Vec<(&str, u32)> = report
            .findings
            .iter()
            .map(|f| (f.file.as_str(), f.line))
            .collect();
        assert_eq!(order, vec![("a.rs", 2), ("a.rs", 9), ("b.rs", 3)]);
        assert_eq!(report.counts()["panic-in-lib"], 2);
        assert_eq!(report.counts()["nondeterministic-rng"], 1);
        assert_eq!(report.counts()["print-in-lib"], 0);
    }

    #[test]
    fn human_rendering_summarizes() {
        let report = Report::new(vec![finding("a.rs", 1, Rule::PrintInLib)], 2);
        let text = report.render_human();
        assert!(text.contains("a.rs:1: [print-in-lib]"));
        assert!(text.contains("1 finding (print-in-lib: 1) across 2 files"));
        let clean = Report::new(Vec::new(), 7);
        assert!(clean
            .render_human()
            .contains("clean — 0 findings across 7 files"));
    }

    #[test]
    fn json_is_escaped_and_stable() {
        let report = Report::new(vec![finding("a.rs", 1, Rule::PanicInLib)], 1);
        let json = report.render_json();
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"total\": 1"));
        assert!(json.contains("\"files_scanned\": 1"));
        // Every rule appears in counts, even at zero.
        for rule in Rule::ALL {
            assert!(json.contains(rule.name()), "{}", rule.name());
        }
    }
}
