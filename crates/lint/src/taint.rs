//! Interprocedural determinism taint: forward dataflow from
//! nondeterministic sources to digest/serialization sinks.
//!
//! ## Sources
//!
//! * wall-clock reads: `Instant::now`, `SystemTime`;
//! * environment reads: `env::var`, `env::var_os`, `env::vars`;
//! * entropy-seeded RNG construction: `thread_rng`, `from_entropy`,
//!   `from_os_rng`, `OsRng`, `getrandom`, `rand::random`;
//! * any token on a line covered by an explicit
//!   `// lint:taint-source(<why>)` marker.
//!
//! ## Sinks
//!
//! * **digest updates** ([`crate::rules::Rule::TaintedDigest`]): a
//!   tainted argument to `fnv1a_fold` or to any call whose name
//!   contains `digest`, or an assignment of a tainted value to a
//!   binding/field whose name contains `digest`;
//! * **report/serialized fields**
//!   ([`crate::rules::Rule::TaintedReportField`]): a tainted
//!   initializer in a struct literal of a `…Report` type or of any
//!   `#[derive(… Serialize …)]` struct, or a tainted argument to
//!   `serialize`/`to_value`. Sink checks run in every non-test
//!   library/binary function — a conservative superset of `serve()`'s
//!   report path.
//!
//! ## Propagation and soundness caveats
//!
//! Taint flows through `let` bindings and assignments (an
//! intraprocedural fixpoint over the statement list) and through call
//! returns: a function **taints its return value** when a tainted
//! expression occurs in one of its `return` statements or in its tail
//! region (everything after the last top-level `;`), computed as a
//! workspace-wide fixpoint over the call graph. Deliberate
//! approximations, chosen to keep the quarantined wall-clock timer
//! (`DecisionTimer`) from poisoning every session result:
//!
//! * receiver mutation does **not** taint the receiver
//!   (`v.push(tainted)` leaves `v` clean);
//! * functions with no `->` return type never taint-return;
//! * locals bound inside closures passed as call arguments are not
//!   tracked (the closure body still participates in sink checks);
//! * unresolved calls (std / external) do not propagate taint — sources
//!   are an explicit, local list.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::context::{FileClass, FileContext};
use crate::lexer::{LexedFile, Token, TokenKind};
use crate::rules::{marker_lines, Finding, Rule};

/// What the taint pass produced.
#[derive(Debug, Clone, Default)]
pub struct TaintOutcome {
    /// Findings, unfiltered by suppressions (the caller filters).
    pub findings: Vec<Finding>,
    /// Per-def: whether the function taints its return value.
    pub taint_returning: Vec<bool>,
}

/// Entropy-seeded RNG constructors (mirrors the per-file RNG rule).
const ENTROPY_RNG_IDENTS: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "getrandom",
];

/// One statement-ish token run inside a function body.
#[derive(Debug, Clone)]
struct Stmt {
    /// Global token index of the first token.
    start: usize,
    /// Global token index one past the last token.
    end: usize,
    /// Index just past the assignment's `=` (the RHS start), when the
    /// statement binds or assigns.
    rhs: Option<usize>,
    /// The bound/assigned names (pattern idents for `let`, the root or
    /// `self.field` name for assignments).
    lhs: Vec<String>,
    /// Whether the statement starts with `return`.
    is_return: bool,
}

/// Per-function precomputation shared by every fixpoint round.
struct FnFacts {
    file: usize,
    stmts: Vec<Stmt>,
    /// The implicit-return tail: tokens after the last top-level `;` of
    /// the body. Empty for bodies that end on a `;`.
    tail: (usize, usize),
    /// Whether the signature declares a `->` return type.
    has_return_type: bool,
    /// Call sites in this body: (name token index, args `(` index,
    /// resolved def ids, callee name, is_method).
    calls: Vec<(usize, usize, Vec<usize>, String, bool)>,
}

/// Per-file source facts.
struct FileFacts {
    /// Token starts a source pattern.
    is_source: Vec<bool>,
    /// Lines covered by `lint:taint-source(…)` markers.
    marked_lines: BTreeSet<u32>,
}

/// Runs the determinism-taint analysis over the whole workspace.
pub fn analyze(
    files: &[(String, LexedFile)],
    _contexts: &[FileContext],
    graph: &CallGraph,
) -> TaintOutcome {
    let file_facts: Vec<FileFacts> = files
        .iter()
        .map(|(_, lexed)| FileFacts {
            is_source: mark_sources(&lexed.tokens),
            marked_lines: marker_lines(&lexed.comments, &lexed.tokens, "lint:taint-source("),
        })
        .collect();
    let fn_facts: Vec<FnFacts> = graph
        .defs
        .iter()
        .enumerate()
        .map(|(id, def)| {
            let tokens = &files[def.file].1.tokens;
            let mut stmts = Vec::new();
            collect_stmts(tokens, def.open + 1, def.close, &mut stmts);
            FnFacts {
                file: def.file,
                stmts,
                tail: tail_region(tokens, def.open, def.close),
                has_return_type: has_return_type(tokens, def.start, def.open),
                calls: graph
                    .calls_of(id)
                    .map(|c| {
                        (
                            c.at,
                            c.args_open,
                            c.resolved.clone(),
                            c.name.clone(),
                            c.is_method,
                        )
                    })
                    .collect(),
            }
        })
        .collect();

    // Workspace fixpoint: does each fn taint its return value?
    let mut returning = vec![false; graph.defs.len()];
    loop {
        let mut changed = false;
        for id in 0..graph.defs.len() {
            if returning[id] || !fn_facts[id].has_return_type {
                continue;
            }
            let facts = &fn_facts[id];
            let tokens = &files[facts.file].1.tokens;
            let ff = &file_facts[facts.file];
            let locals = tainted_locals(facts, tokens, ff, &returning);
            if returns_taint(facts, tokens, ff, &locals, &returning) {
                returning[id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Sink pass over non-test library/binary functions.
    let mut findings = Vec::new();
    for (id, def) in graph.defs.iter().enumerate() {
        if def.in_test || !matches!(def.class, FileClass::Lib | FileClass::Bin) {
            continue;
        }
        let facts = &fn_facts[id];
        let tokens = &files[def.file].1.tokens;
        let ff = &file_facts[def.file];
        let path = files[def.file].0.as_str();
        let locals = tainted_locals(facts, tokens, ff, &returning);
        check_call_sinks(facts, tokens, ff, &locals, &returning, path, &mut findings);
        check_assignment_sinks(facts, tokens, ff, &locals, &returning, path, &mut findings);
        check_struct_literal_sinks(
            def.open + 1,
            def.close,
            facts,
            tokens,
            ff,
            &locals,
            &returning,
            graph,
            path,
            &mut findings,
        );
    }
    TaintOutcome {
        findings,
        taint_returning: returning,
    }
}

/// Marks tokens that begin a nondeterministic-source pattern.
fn mark_sources(tokens: &[Token]) -> Vec<bool> {
    let mut out = vec![false; tokens.len()];
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let hit = ident_path2(tokens, i, "Instant", "now")
            || t.is_ident("SystemTime")
            || ident_path2(tokens, i, "env", "var")
            || ident_path2(tokens, i, "env", "var_os")
            || ident_path2(tokens, i, "env", "vars")
            || ident_path2(tokens, i, "rand", "random")
            || ENTROPY_RNG_IDENTS.contains(&t.text.as_str());
        if hit {
            out[i] = true;
        }
    }
    out
}

/// `tokens[i..]` starts the ident path `a :: b`.
fn ident_path2(tokens: &[Token], i: usize, a: &str, b: &str) -> bool {
    tokens[i].is_ident(a)
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.is_ident(b))
}

/// Whether the signature tokens (between the `fn` keyword and the body
/// `{`) declare a return type.
fn has_return_type(tokens: &[Token], start: usize, open: usize) -> bool {
    let mut depth = 0usize;
    for k in start..open {
        let t = &tokens[k];
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth = depth.saturating_sub(1),
            TokenKind::Punct('-')
                if depth == 0
                    && tokens
                        .get(k + 1)
                        .is_some_and(|n| n.is_punct('>') && t.is_joint(n)) =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// The body's implicit-return tail: tokens after the last `;` at brace
/// depth 0. `(x, x)` when the body ends on a `;` (no tail expression).
fn tail_region(tokens: &[Token], open: usize, close: usize) -> (usize, usize) {
    let mut depth = 0usize;
    let mut last_semi = open; // the `{` acts as a virtual leading `;`
    for (k, t) in tokens.iter().enumerate().take(close).skip(open + 1) {
        match t.kind {
            TokenKind::Punct('{') | TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct('}') | TokenKind::Punct(')') | TokenKind::Punct(']') => {
                depth = depth.saturating_sub(1)
            }
            TokenKind::Punct(';') if depth == 0 => last_semi = k,
            _ => {}
        }
    }
    (last_semi + 1, close)
}

/// Statement heads whose `{ … }` block ends the statement (rather than
/// being an initializer sub-expression).
const BLOCK_HEADS: [&str; 7] = ["if", "for", "while", "loop", "match", "unsafe", "else"];

/// Keywords that never name a binding.
const PATTERN_KEYWORDS: [&str; 4] = ["let", "mut", "ref", "box"];

/// Segments `tokens[lo..hi]` into flat statements, recursing into brace
/// groups so statements inside `if`/`for`/`match` bodies are seen too.
fn collect_stmts(tokens: &[Token], lo: usize, hi: usize, out: &mut Vec<Stmt>) {
    let mut i = lo;
    while i < hi {
        let t = &tokens[i];
        if t.is_punct(';')
            || t.is_punct(',')
            || t.is_punct('}')
            || t.is_punct(')')
            || t.is_punct(']')
        {
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            let close = close_brace_within(tokens, i, hi);
            collect_stmts(tokens, i + 1, close, out);
            i = close + 1;
            continue;
        }
        let head_is_block = t.kind == TokenKind::Ident && BLOCK_HEADS.contains(&t.text.as_str());
        let is_return = t.is_ident("return");
        let mut depth = 0usize;
        let mut j = i;
        let mut groups: Vec<(usize, usize)> = Vec::new();
        let end = loop {
            if j >= hi {
                break hi;
            }
            let tok = &tokens[j];
            match tok.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => {
                    if depth == 0 {
                        break j;
                    }
                    depth -= 1;
                }
                TokenKind::Punct('{') if depth == 0 => {
                    let close = close_brace_within(tokens, j, hi);
                    groups.push((j, close));
                    j = close;
                    if head_is_block && !tokens.get(j + 1).is_some_and(|n| n.is_ident("else")) {
                        break j + 1;
                    }
                }
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    if depth == 0 {
                        break j;
                    }
                    depth -= 1;
                }
                TokenKind::Punct(';') | TokenKind::Punct(',') if depth == 0 => break j,
                _ => {}
            }
            j += 1;
        };
        let (rhs, lhs) = split_assignment(tokens, i, end);
        out.push(Stmt {
            start: i,
            end,
            rhs,
            lhs,
            is_return,
        });
        for (open, close) in groups {
            collect_stmts(tokens, open + 1, close, out);
        }
        i = end.max(i + 1);
    }
}

/// Index of the `}` matching the `{` at `open`, clamped to `hi`.
fn close_brace_within(tokens: &[Token], open: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().take(hi).skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    hi
}

/// Finds a plain (or compound) top-level assignment in the statement
/// and extracts the bound names. For `let` statements the names come
/// from the pattern (stopping at a type annotation `:`); for
/// assignments, the lhs path idents (`self.field = …` yields `field`).
fn split_assignment(tokens: &[Token], start: usize, end: usize) -> (Option<usize>, Vec<String>) {
    let mut depth = 0usize;
    let mut eq = None;
    for k in start..end {
        let t = &tokens[k];
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1)
            }
            TokenKind::Punct('=') if depth == 0 => {
                let next_joint = tokens
                    .get(k + 1)
                    .is_some_and(|n| (n.is_punct('=') || n.is_punct('>')) && t.is_joint(n));
                let prev_cmp = k > start
                    && matches!(
                        tokens[k - 1].kind,
                        TokenKind::Punct('=')
                            | TokenKind::Punct('<')
                            | TokenKind::Punct('>')
                            | TokenKind::Punct('!')
                            | TokenKind::Punct('.')
                    )
                    && tokens[k - 1].is_joint(t);
                if !next_joint && !prev_cmp {
                    eq = Some(k);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(eq) = eq else {
        return (None, Vec::new());
    };
    let is_let = tokens[start].is_ident("let");
    let mut lhs_end = eq;
    if is_let {
        // Stop the pattern at a top-level type annotation so type names
        // (`let x: Vec<u64> = …`) never become tracked "locals".
        let mut depth = 0usize;
        for k in start..eq {
            let t = &tokens[k];
            match t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('>') => {
                    depth = depth.saturating_sub(1)
                }
                TokenKind::Punct(':') if depth == 0 => {
                    let double = tokens
                        .get(k + 1)
                        .is_some_and(|n| n.is_punct(':') && t.is_joint(n));
                    if !double {
                        lhs_end = k;
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    // Keep only names a pattern can actually bind: `if let Some(v) = …`
    // binds `v`, not the `if` keyword or the `Some` constructor (locals
    // are lowercase; uppercase idents in patterns are variant paths).
    let mut names: Vec<String> = tokens[start..lhs_end]
        .iter()
        .filter(|t| {
            t.kind == TokenKind::Ident
                && !PATTERN_KEYWORDS.contains(&t.text.as_str())
                && !BLOCK_HEADS.contains(&t.text.as_str())
                && !t.text.starts_with(|c: char| c.is_ascii_uppercase())
        })
        .map(|t| t.text.clone())
        .collect();
    if !is_let {
        // `self.field += …` — track the field name, not `self`.
        names.retain(|n| n != "self");
    }
    (Some(eq + 1), names)
}

/// Intraprocedural fixpoint: which local names hold tainted values.
fn tainted_locals(
    facts: &FnFacts,
    tokens: &[Token],
    ff: &FileFacts,
    returning: &[bool],
) -> BTreeSet<String> {
    let mut tainted = BTreeSet::new();
    loop {
        let mut changed = false;
        for stmt in &facts.stmts {
            let Some(rhs) = stmt.rhs else { continue };
            if stmt.lhs.iter().all(|n| tainted.contains(n)) && !stmt.lhs.is_empty() {
                continue;
            }
            if expr_tainted(facts, tokens, ff, &tainted, returning, rhs, stmt.end) {
                for name in &stmt.lhs {
                    if tainted.insert(name.clone()) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    tainted
}

/// Whether any token in `[lo, hi)` carries taint: a source pattern, a
/// marked line, a tainted local, or a call to a taint-returning fn.
fn expr_tainted(
    facts: &FnFacts,
    tokens: &[Token],
    ff: &FileFacts,
    tainted: &BTreeSet<String>,
    returning: &[bool],
    lo: usize,
    hi: usize,
) -> bool {
    for (k, t) in tokens.iter().enumerate().take(hi).skip(lo) {
        if ff.is_source[k] || ff.marked_lines.contains(&t.line) {
            return true;
        }
        if t.kind == TokenKind::Ident && tainted.contains(&t.text) {
            return true;
        }
    }
    facts.calls.iter().any(|(at, _, resolved, _, _)| {
        lo <= *at && *at < hi && resolved.iter().any(|&id| returning[id])
    })
}

/// Whether the function's return positions carry taint.
fn returns_taint(
    facts: &FnFacts,
    tokens: &[Token],
    ff: &FileFacts,
    tainted: &BTreeSet<String>,
    returning: &[bool],
) -> bool {
    if expr_tainted(
        facts,
        tokens,
        ff,
        tainted,
        returning,
        facts.tail.0,
        facts.tail.1,
    ) {
        return true;
    }
    facts.stmts.iter().any(|s| {
        s.is_return && expr_tainted(facts, tokens, ff, tainted, returning, s.start + 1, s.end)
    })
}

/// Digest-update call names (beyond any name containing `digest`).
fn is_digest_sink(name: &str) -> bool {
    name == "fnv1a_fold" || name.contains("digest")
}

/// Serialization sink call names.
fn is_serial_sink(name: &str) -> bool {
    name == "serialize" || name == "to_value"
}

/// Flags tainted arguments to digest/serialization calls.
#[allow(clippy::too_many_arguments)]
fn check_call_sinks(
    facts: &FnFacts,
    tokens: &[Token],
    ff: &FileFacts,
    locals: &BTreeSet<String>,
    returning: &[bool],
    path: &str,
    out: &mut Vec<Finding>,
) {
    for (at, args_open, _, name, _) in &facts.calls {
        let digest = is_digest_sink(name);
        let serial = is_serial_sink(name);
        if !digest && !serial {
            continue;
        }
        let args_close = close_paren(tokens, *args_open);
        if args_close <= args_open + 1 {
            continue; // no arguments (e.g. `fnv1a_start()`)
        }
        if expr_tainted(
            facts,
            tokens,
            ff,
            locals,
            returning,
            *args_open + 1,
            args_close,
        ) {
            let (rule, what) = if digest {
                (Rule::TaintedDigest, "digest update")
            } else {
                (Rule::TaintedReportField, "serialization")
            };
            out.push(Finding {
                file: path.to_string(),
                line: tokens[*at].line,
                rule,
                message: format!(
                    "value derived from a nondeterministic source reaches {what} `{name}(…)`; \
                     digested/serialized state must be a pure function of (trace, seed, index)"
                ),
            });
        }
    }
}

/// Flags tainted assignments into names containing `digest`.
#[allow(clippy::too_many_arguments)]
fn check_assignment_sinks(
    facts: &FnFacts,
    tokens: &[Token],
    ff: &FileFacts,
    locals: &BTreeSet<String>,
    returning: &[bool],
    path: &str,
    out: &mut Vec<Finding>,
) {
    for stmt in &facts.stmts {
        let Some(rhs) = stmt.rhs else { continue };
        if !stmt.lhs.iter().any(|n| n.contains("digest")) {
            continue;
        }
        // A digest-sink call in the RHS already reports via
        // `check_call_sinks`; don't double up on the same line.
        let rhs_has_digest_call = facts
            .calls
            .iter()
            .any(|(at, _, _, name, _)| rhs <= *at && *at < stmt.end && is_digest_sink(name));
        if rhs_has_digest_call {
            continue;
        }
        if expr_tainted(facts, tokens, ff, locals, returning, rhs, stmt.end) {
            out.push(Finding {
                file: path.to_string(),
                line: tokens[stmt.start].line,
                rule: Rule::TaintedDigest,
                message: format!(
                    "nondeterminism-tainted value assigned into `{}`; digests must be \
                     pure functions of (trace, seed, index)",
                    stmt.lhs.join(", ")
                ),
            });
        }
    }
}

/// Flags tainted initializers in `…Report` / serde-serialized struct
/// literals.
#[allow(clippy::too_many_arguments)]
fn check_struct_literal_sinks(
    lo: usize,
    hi: usize,
    facts: &FnFacts,
    tokens: &[Token],
    ff: &FileFacts,
    locals: &BTreeSet<String>,
    returning: &[bool],
    graph: &CallGraph,
    path: &str,
    out: &mut Vec<Finding>,
) {
    let mut k = lo;
    while k < hi {
        let t = &tokens[k];
        let is_sink_struct = t.kind == TokenKind::Ident
            && t.text != "Self"
            && t.text.starts_with(|c: char| c.is_ascii_uppercase())
            && (t.text.ends_with("Report") || graph.serialized_structs.contains(&t.text))
            && tokens.get(k + 1).is_some_and(|n| n.is_punct('{'));
        if !is_sink_struct {
            k += 1;
            continue;
        }
        let open = k + 1;
        let close = close_brace_within(tokens, open, hi);
        let mut f = open + 1;
        while f < close {
            // A field starts as `name :` at group depth 0 (the walk
            // skips over each field's value expression below).
            let is_field = tokens[f].kind == TokenKind::Ident
                && tokens.get(f + 1).is_some_and(|n| n.is_punct(':'))
                && !tokens
                    .get(f + 2)
                    .is_some_and(|n| n.is_punct(':') && tokens[f + 1].is_joint(n));
            // Shorthand field: `Wire { seed, … }` — the ident is both
            // the field name and the value.
            let is_shorthand = tokens[f].kind == TokenKind::Ident
                && tokens
                    .get(f + 1)
                    .is_some_and(|n| n.is_punct(',') || n.is_punct('}'));
            if is_shorthand {
                if locals.contains(&tokens[f].text)
                    || ff.is_source[f]
                    || ff.marked_lines.contains(&tokens[f].line)
                {
                    out.push(Finding {
                        file: path.to_string(),
                        line: tokens[f].line,
                        rule: Rule::TaintedReportField,
                        message: format!(
                            "field `{}` of `{}` is initialized from a nondeterministic source; \
                             report/serialized fields must be pure functions of (trace, seed, index)",
                            tokens[f].text, t.text
                        ),
                    });
                }
                f += 2;
                continue;
            }
            if !is_field {
                f += 1;
                continue;
            }
            let value_start = f + 2;
            let value_end = field_value_end(tokens, value_start, close);
            if expr_tainted(facts, tokens, ff, locals, returning, value_start, value_end) {
                out.push(Finding {
                    file: path.to_string(),
                    line: tokens[f].line,
                    rule: Rule::TaintedReportField,
                    message: format!(
                        "field `{}` of `{}` is initialized from a nondeterministic source; \
                         report/serialized fields must be pure functions of (trace, seed, index)",
                        tokens[f].text, t.text
                    ),
                });
            }
            f = value_end + 1;
        }
        k = close + 1;
    }
}

/// End of a struct-literal field value: the `,` at depth 0 or the
/// closing `}` of the literal.
fn field_value_end(tokens: &[Token], start: usize, close: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().take(close).skip(start) {
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1)
            }
            TokenKind::Punct(',') if depth == 0 => return k,
            _ => {}
        }
    }
    close
}

/// Index of the `)` matching the `(` at `open` (or `open` itself when
/// unmatched).
fn close_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    open
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::classify;

    fn run(path: &str, src: &str) -> TaintOutcome {
        let files = vec![(path.to_string(), crate::lexer::lex(src))];
        let contexts: Vec<FileContext> = files
            .iter()
            .map(|(p, l)| FileContext::build(classify(p), l))
            .collect();
        let graph = CallGraph::build(&files, &contexts);
        analyze(&files, &contexts, &graph)
    }

    const LIB: &str = "crates/demo/src/lib.rs";

    fn rules_hit(out: &TaintOutcome) -> Vec<(u32, &'static str)> {
        out.findings
            .iter()
            .map(|f| (f.line, f.rule.name()))
            .collect()
    }

    #[test]
    fn direct_source_into_digest_call_is_flagged() {
        let src = "fn f(mut digest: u64) -> u64 {\n\
                   let t = Instant::now().elapsed().as_nanos() as u64;\n\
                   digest = fnv1a_fold(digest, t);\n\
                   digest }\n\
                   fn fnv1a_fold(h: u64, x: u64) -> u64 { h ^ x }\n";
        let out = run(LIB, src);
        assert!(rules_hit(&out).contains(&(3, "tainted-digest")));
    }

    #[test]
    fn two_hop_launder_is_flagged() {
        let src = "fn read_clock() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n\
                   fn hop() -> u64 { read_clock() }\n\
                   fn fold(mut digest: u64) -> u64 {\n\
                   let v = hop();\n\
                   digest = fnv1a_fold(digest, v);\n\
                   digest }\n\
                   fn fnv1a_fold(h: u64, x: u64) -> u64 { h ^ x }\n";
        let out = run(LIB, src);
        assert!(out.taint_returning.iter().filter(|&&b| b).count() >= 2);
        assert!(rules_hit(&out).contains(&(5, "tainted-digest")));
    }

    #[test]
    fn clean_digest_code_is_not_flagged() {
        let src = "fn fold(mut digest: u64, action: u64) -> u64 {\n\
                   digest = fnv1a_fold(digest, action);\n\
                   digest }\n\
                   fn fnv1a_fold(h: u64, x: u64) -> u64 { h ^ x }\n";
        let out = run(LIB, src);
        assert!(out.findings.is_empty());
    }

    #[test]
    fn timer_value_kept_out_of_digests_is_clean() {
        // The quarantine pattern: wall-clock read inside an annotated
        // helper, its value returned beside — never inside — the digest.
        let src = "struct Timer { t0: u64 }\n\
                   impl Timer { fn now() -> Timer { Timer { t0: Instant::now().elapsed().as_nanos() as u64 } } }\n\
                   fn run(mut digest: u64) -> (u64, u64) {\n\
                   let timer = Timer::now();\n\
                   digest = fnv1a_fold(digest, 7);\n\
                   (digest, timer.t0) }\n\
                   fn fnv1a_fold(h: u64, x: u64) -> u64 { h ^ x }\n";
        let out = run(LIB, src);
        assert!(
            rules_hit(&out).is_empty(),
            "quarantined timer must not poison clean digest folds: {:?}",
            out.findings
        );
    }

    #[test]
    fn tainted_report_field_is_flagged() {
        let src = "#[derive(Serialize)]\nstruct Wire { elapsed_ns: u64 }\n\
                   fn build() -> Wire {\n\
                   let e = Instant::now().elapsed().as_nanos() as u64;\n\
                   Wire { elapsed_ns: e }\n\
                   }\n";
        let out = run(LIB, src);
        assert!(rules_hit(&out).contains(&(5, "tainted-report-field")));
    }

    #[test]
    fn report_suffix_structs_are_sinks_without_derive() {
        let src = "fn build(x: u64) -> SessionReport {\n\
                   let seed = thread_rng().gen::<u64>();\n\
                   SessionReport { seed: seed, decisions: x }\n\
                   }\n";
        let out = run(LIB, src);
        assert!(rules_hit(&out).contains(&(3, "tainted-report-field")));
    }

    #[test]
    fn explicit_marker_is_a_source() {
        let src = "fn f(mut digest: u64) -> u64 {\n\
                   // lint:taint-source(operator-injected chaos knob)\n\
                   let knob = read_knob();\n\
                   digest = fnv1a_fold(digest, knob);\n\
                   digest }\n\
                   fn fnv1a_fold(h: u64, x: u64) -> u64 { h ^ x }\n\
                   fn read_knob() -> u64 { 7 }\n";
        let out = run(LIB, src);
        assert!(rules_hit(&out).contains(&(4, "tainted-digest")));
    }

    #[test]
    fn receiver_mutation_does_not_taint() {
        let src = "fn f(mut digest: u64) -> u64 {\n\
                   let mut lat = make_vec();\n\
                   let t = Instant::now().elapsed().as_nanos() as u64;\n\
                   lat.push(t);\n\
                   digest = fnv1a_fold(digest, lat.len() as u64);\n\
                   digest }\n\
                   fn make_vec() -> Vec<u64> { Vec::new() }\n\
                   fn fnv1a_fold(h: u64, x: u64) -> u64 { h ^ x }\n";
        // `lat.len()` is order-dependent on pushes but not on the pushed
        // *values*; the deliberate receiver-mutation blind spot keeps
        // the latency-buffer pattern clean.
        let out = run(LIB, src);
        assert!(rules_hit(&out).is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn unit_returning_functions_never_taint_return() {
        let src = "fn log_time(buf: &mut Vec<u64>) { buf.push(Instant::now().elapsed().as_nanos() as u64); }\n\
                   fn f(mut digest: u64, buf: &mut Vec<u64>) -> u64 {\n\
                   log_time(buf);\n\
                   digest = fnv1a_fold(digest, 3);\n\
                   digest }\n\
                   fn fnv1a_fold(h: u64, x: u64) -> u64 { h ^ x }\n";
        let out = run(LIB, src);
        assert!(rules_hit(&out).is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn if_let_bindings_do_not_taint_the_if_keyword() {
        // `if let Some(v) = tainted` binds `v` alone; treating `if` or
        // `Some` as tainted locals would poison every later statement
        // that merely contains an `if` expression.
        let src = "fn f(mut digest: u64, flag: bool) -> u64 {\n\
                   let t = Instant::now().elapsed().as_nanos() as u64;\n\
                   if let Some(v) = checked(t) { log(v); }\n\
                   digest = fnv1a_fold(digest, if flag { 1 } else { 2 });\n\
                   digest }\n\
                   fn checked(x: u64) -> Option<u64> { Some(x) }\n\
                   fn log(_v: u64) {}\n\
                   fn fnv1a_fold(h: u64, x: u64) -> u64 { h ^ x }\n";
        let out = run(LIB, src);
        assert!(rules_hit(&out).is_empty(), "{:?}", out.findings);
        // The bound name itself still carries the taint.
        let poisoned = src.replace(
            "fnv1a_fold(digest, if flag { 1 } else { 2 })",
            "fnv1a_fold(digest, v)",
        );
        let out = run(LIB, &poisoned);
        assert!(
            rules_hit(&out).contains(&(4, "tainted-digest")),
            "{:?}",
            out.findings
        );
    }

    #[test]
    fn test_code_is_exempt_from_sinks() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   fn f(mut digest: u64) -> u64 {\n\
                   let t = Instant::now().elapsed().as_nanos() as u64;\n\
                   digest = fnv1a_fold(digest, t);\n\
                   digest }\n\
                   }\nfn fnv1a_fold(h: u64, x: u64) -> u64 { h ^ x }\n";
        let out = run(LIB, src);
        assert!(out.findings.is_empty());
    }
}
