//! A workspace-wide function call graph, resolved through bare names
//! and `impl`/`trait` ownership.
//!
//! The interprocedural passes ([`crate::taint`] and [`crate::hotpath`])
//! need to know, for every function in the tree, which other functions
//! it may call. Rust name resolution is out of scope for a lexer-level
//! analyzer, so the graph is deliberately **conservative**:
//!
//! * a free call `foo(…)` edges to every workspace **free** `fn foo`;
//!   a method call `x.foo(…)` edges to every workspace **method**
//!   `foo` — the two namespaces never cross, so a `.collect()` does not
//!   edge into a free `fn collect` three crates away;
//! * a method call whose name is ubiquitous std surface (`len`, `map`,
//!   `unwrap`, `clone`, …) creates **no** edges at all: wiring every
//!   `.len()` to every workspace `len` method would melt the graph into
//!   one component. The cost is that a workspace method shadowing a std
//!   name is invisible to the interprocedural passes — documented in
//!   DESIGN.md as a known soundness hole;
//! * a qualified call `Type::foo(…)` narrows to definitions owned by
//!   `Type` (an `impl Type` block or a `trait Type` declaration) when
//!   any exist, and falls back to all `foo` definitions otherwise;
//! * a call whose name matches no workspace definition is recorded as
//!   **unresolved** — counted in the JSON report, and surfaced as an
//!   [`crate::rules::Rule::UnresolvedHotCall`] finding when it sits on
//!   the serving hot path and is not a known allocation-free std method.
//!
//! Over-approximation (extra edges) can only widen the hot set and the
//! taint frontier, never hide a finding; missing edges are what the
//! unresolved accounting exists to make visible.

use std::collections::{BTreeMap, BTreeSet};

use crate::context::{FileClass, FileContext};
use crate::lexer::{LexedFile, Token, TokenKind};

/// One function definition in the workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's bare name.
    pub name: String,
    /// The `impl` target type or `trait` this fn is declared under, if
    /// any (`impl DecisionKernel for PackedKernel` → `PackedKernel`).
    pub owner: Option<String>,
    /// The trait being implemented or declared (`DecisionKernel` for
    /// both the trait block and every `impl DecisionKernel for …`).
    pub trait_name: Option<String>,
    /// Index of the file this fn lives in (into the analyzed file list).
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// Token index of the body's opening `{`.
    pub open: usize,
    /// Token index of the body's closing `}`.
    pub close: usize,
    /// Whether the fn sits inside `#[cfg(test)]` code.
    pub in_test: bool,
    /// The defining file's path class.
    pub class: FileClass,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Id of the calling [`FnDef`].
    pub caller: usize,
    /// The called name (the last path segment).
    pub name: String,
    /// Whether this is a `.name(…)` method call.
    pub is_method: bool,
    /// 1-based line of the call.
    pub line: u32,
    /// Token index of the callee name.
    pub at: usize,
    /// Token index of the opening `(` of the argument list.
    pub args_open: usize,
    /// Resolved callee def ids (empty when unresolved).
    pub resolved: Vec<usize>,
}

/// The workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Every fn definition, in (file, token) order. Ids index this.
    pub defs: Vec<FnDef>,
    /// Every call site, grouped by nothing — filter by `caller`.
    pub calls: Vec<CallSite>,
    /// Adjacency: def id → callee def ids (deduplicated).
    pub edges: Vec<Vec<usize>>,
    /// Struct names carrying `#[derive(… Serialize …)]` — their literal
    /// fields are serialization sinks for the taint pass.
    pub serialized_structs: BTreeSet<String>,
    /// name → def ids, for resolution.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Every type/trait name that owns at least one workspace `fn` —
    /// used to tell `Vec::new` (external, unresolvable) from
    /// `QStore::new` (ours).
    owners: BTreeSet<String>,
    /// Call sites per def id (indices into `calls`).
    calls_by_def: Vec<Vec<usize>>,
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "as", "move", "break",
];

/// Whether a method name is ubiquitous std surface — iterator
/// adaptors, Option/Result combinators, slice accessors, the copying
/// methods. Method calls with these names never edge into the
/// workspace: the hot-path pass judges them by name instead.
pub(crate) fn is_common_std_method(name: &str) -> bool {
    crate::hotpath::STD_ALLOC_FREE.contains(&name)
        || crate::hotpath::COPYING_METHODS.contains(&name)
}

impl CallGraph {
    /// Builds the graph over a set of lexed files. `files` must align
    /// index-for-index with the contexts.
    pub fn build(files: &[(String, LexedFile)], contexts: &[FileContext]) -> CallGraph {
        let mut graph = CallGraph::default();
        // Pass 1: definitions, ownership, serialized structs.
        for (file_idx, (_path, lexed)) in files.iter().enumerate() {
            let ctx = &contexts[file_idx];
            let owners = owner_blocks(&lexed.tokens);
            graph.collect_serialized(&lexed.tokens);
            for span in &ctx.fn_spans {
                let Some(name_tok) = lexed.tokens.get(span.start + 1) else {
                    continue;
                };
                if name_tok.kind != TokenKind::Ident {
                    continue;
                }
                let owning = owners
                    .iter()
                    .filter(|b| b.open < span.start && span.close <= b.close)
                    .max_by_key(|b| b.open);
                graph.defs.push(FnDef {
                    name: name_tok.text.clone(),
                    owner: owning.and_then(|b| b.owner.clone()),
                    trait_name: owning.and_then(|b| b.trait_name.clone()),
                    file: file_idx,
                    line: lexed.tokens[span.start].line,
                    start: span.start,
                    open: span.open,
                    close: span.close,
                    in_test: ctx.in_test[span.start],
                    class: ctx.class,
                });
            }
        }
        for (id, def) in graph.defs.iter().enumerate() {
            graph.by_name.entry(def.name.clone()).or_default().push(id);
            if let Some(owner) = &def.owner {
                graph.owners.insert(owner.clone());
            }
            if let Some(trait_name) = &def.trait_name {
                graph.owners.insert(trait_name.clone());
            }
        }
        // Pass 2: call sites and edges. Nested fns own their tokens: a
        // call inside a nested fn is attributed to the innermost def.
        graph.calls_by_def = vec![Vec::new(); graph.defs.len()];
        graph.edges = vec![Vec::new(); graph.defs.len()];
        for (file_idx, (_path, lexed)) in files.iter().enumerate() {
            let def_ids: Vec<usize> = graph
                .defs
                .iter()
                .enumerate()
                .filter(|(_, d)| d.file == file_idx)
                .map(|(id, _)| id)
                .collect();
            let mut k = 0;
            while k < lexed.tokens.len() {
                // Attribute groups (`#[derive(…)]`, `#[cfg(…)]`) are
                // full of `ident (` shapes that are not calls.
                if lexed.tokens[k].is_punct('#')
                    && lexed.tokens.get(k + 1).is_some_and(|t| t.is_punct('['))
                {
                    if let Some(end) = close_square(&lexed.tokens, k + 1) {
                        k = end + 1;
                        continue;
                    }
                }
                let Some(site) = call_at(&lexed.tokens, k) else {
                    k += 1;
                    continue;
                };
                // Innermost enclosing def wins.
                let Some(&caller) = def_ids
                    .iter()
                    .filter(|&&id| {
                        let d = &graph.defs[id];
                        d.open < k && k < d.close
                    })
                    .max_by_key(|&&id| graph.defs[id].open)
                else {
                    k += 1;
                    continue;
                };
                let resolved = graph.resolve(
                    &site.name,
                    site.qualifier.as_deref(),
                    site.is_method,
                    caller,
                );
                for &callee in &resolved {
                    if !graph.edges[caller].contains(&callee) {
                        graph.edges[caller].push(callee);
                    }
                }
                let call_idx = graph.calls.len();
                graph.calls.push(CallSite {
                    caller,
                    name: site.name,
                    is_method: site.is_method,
                    line: lexed.tokens[k].line,
                    at: k,
                    args_open: site.args_open,
                    resolved,
                });
                graph.calls_by_def[caller].push(call_idx);
                k += 1;
            }
        }
        graph
    }

    /// Resolves a called name to candidate def ids.
    ///
    /// * a `.name(…)` method call whose name is ubiquitous std surface
    ///   ([`is_common_std_method`]) → no edges, by design;
    /// * otherwise a method call → every workspace **method** of that
    ///   name; a free, unqualified call → every **free** `fn` of that
    ///   name; a snake_case qualifier (a module path like
    ///   `session::fnv1a_fold`) → free `fn`s likewise;
    /// * `Self::name` → narrowed to the caller's own `impl` owner;
    /// * a CamelCase qualifier that owns workspace fns → narrowed to
    ///   definitions under that type/trait (empty when the type has no
    ///   such method — a derived or std-trait call);
    /// * a CamelCase qualifier unknown to the workspace (`Vec::new`,
    ///   `Instant::now`) → unresolved, never a false edge into
    ///   same-named workspace constructors.
    fn resolve(
        &self,
        name: &str,
        qualifier: Option<&str>,
        is_method: bool,
        caller: usize,
    ) -> Vec<usize> {
        if is_method && is_common_std_method(name) {
            return Vec::new();
        }
        let Some(candidates) = self.by_name.get(name) else {
            return Vec::new();
        };
        let narrow_to = |owner: &str| -> Vec<usize> {
            candidates
                .iter()
                .copied()
                .filter(|&id| {
                    let d = &self.defs[id];
                    d.owner.as_deref() == Some(owner) || d.trait_name.as_deref() == Some(owner)
                })
                .collect()
        };
        // Free calls and method calls live in disjoint namespaces: a
        // bare `foo(…)` can only be a free fn, an `x.foo(…)` can only
        // be a method (UFCS aside, which always carries a qualifier).
        let same_shape = |ids: &[usize]| -> Vec<usize> {
            ids.iter()
                .copied()
                .filter(|&id| self.defs[id].owner.is_some() == is_method)
                .collect()
        };
        match qualifier {
            None => same_shape(candidates),
            Some("Self") => match self.defs[caller].owner.clone() {
                Some(owner) => {
                    let narrowed = narrow_to(&owner);
                    if narrowed.is_empty() {
                        candidates.clone()
                    } else {
                        narrowed
                    }
                }
                None => candidates.clone(),
            },
            Some(q) if q.starts_with(|c: char| c.is_ascii_uppercase()) => {
                if self.owners.contains(q) {
                    narrow_to(q)
                } else {
                    Vec::new()
                }
            }
            // snake_case: a module path segment, not a type — the
            // segment addresses a free fn in that module.
            Some(_) => same_shape(candidates),
        }
    }

    /// The call sites made from one def.
    pub fn calls_of(&self, def: usize) -> impl Iterator<Item = &CallSite> {
        self.calls_by_def[def].iter().map(|&i| &self.calls[i])
    }

    /// Def ids reachable from `entries` (inclusive) along call edges,
    /// restricted to non-test library defs — the only code the
    /// determinism and hot-path contracts cover.
    pub fn reachable(&self, entries: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.defs.len()];
        let mut stack: Vec<usize> = entries.to_vec();
        for &e in entries {
            seen[e] = true;
        }
        while let Some(id) = stack.pop() {
            for &next in &self.edges[id] {
                let d = &self.defs[next];
                if !seen[next] && !d.in_test && d.class == FileClass::Lib {
                    seen[next] = true;
                    stack.push(next);
                }
            }
        }
        seen
    }

    /// Unresolved call sites from non-test library/binary defs: the
    /// graph's blind spots, surfaced in the report's analysis block.
    pub fn unresolved_calls(&self) -> impl Iterator<Item = &CallSite> {
        self.calls.iter().filter(|c| {
            let d = &self.defs[c.caller];
            c.resolved.is_empty()
                && !d.in_test
                && matches!(d.class, FileClass::Lib | FileClass::Bin)
        })
    }

    /// Total number of call edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Records struct names annotated `#[derive(… Serialize …)]`.
    fn collect_serialized(&mut self, tokens: &[Token]) {
        let mut i = 0;
        while i + 1 < tokens.len() {
            if !(tokens[i].is_punct('#') && tokens[i + 1].is_punct('[')) {
                i += 1;
                continue;
            }
            let Some(close) = close_square(tokens, i + 1) else {
                break;
            };
            let args = &tokens[i + 2..close];
            let is_serialize_derive = args.first().is_some_and(|t| t.is_ident("derive"))
                && args.iter().any(|t| t.is_ident("Serialize"));
            if is_serialize_derive {
                // Skip further attributes, visibility, then expect
                // `struct Name` (enums serialize too, but their variant
                // fields are not struct-literal sinks).
                let mut j = close + 1;
                while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[')
                {
                    match close_square(tokens, j + 1) {
                        Some(end) => j = end + 1,
                        None => break,
                    }
                }
                while j < tokens.len()
                    && (tokens[j].is_ident("pub")
                        || tokens[j].is_punct('(')
                        || tokens[j].is_punct(')')
                        || tokens[j].is_ident("crate")
                        || tokens[j].is_ident("super"))
                {
                    j += 1;
                }
                if tokens[j..].first().is_some_and(|t| t.is_ident("struct")) {
                    if let Some(name) = tokens.get(j + 1) {
                        if name.kind == TokenKind::Ident {
                            self.serialized_structs.insert(name.text.clone());
                        }
                    }
                }
            }
            i = close + 1;
        }
    }

    /// Renders the graph as Graphviz DOT: one node per non-test def,
    /// hot-path nodes filled, unresolved calls as dashed edges to a
    /// per-caller `?name` placeholder.
    pub fn render_dot(&self, files: &[String], hot: &[bool]) -> String {
        let mut out =
            String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        for (id, def) in self.defs.iter().enumerate() {
            if def.in_test {
                continue;
            }
            let label = match &def.owner {
                Some(owner) => format!("{owner}::{}", def.name),
                None => def.name.clone(),
            };
            let style = if hot.get(id).copied().unwrap_or(false) {
                ", style=filled, fillcolor=lightsalmon"
            } else {
                ""
            };
            out.push_str(&format!(
                "  n{id} [label=\"{}\\n{}:{}\"{}];\n",
                dot_escape(&label),
                dot_escape(files.get(def.file).map(String::as_str).unwrap_or("?")),
                def.line,
                style
            ));
        }
        for (id, callees) in self.edges.iter().enumerate() {
            if self.defs[id].in_test {
                continue;
            }
            for &callee in callees {
                if !self.defs[callee].in_test {
                    out.push_str(&format!("  n{id} -> n{callee};\n"));
                }
            }
        }
        for call in self.unresolved_calls() {
            out.push_str(&format!(
                "  n{} -> \"?{}\" [style=dashed, color=gray];\n",
                call.caller,
                dot_escape(&call.name)
            ));
        }
        out.push_str("}\n");
        out
    }
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One `impl`/`trait` block with its brace-matched extent.
#[derive(Debug, Clone)]
struct OwnerBlock {
    open: usize,
    close: usize,
    owner: Option<String>,
    trait_name: Option<String>,
}

/// Finds every `impl …` / `trait …` block and the type names that own
/// it. `impl Trait for Type` records owner=Type, trait=Trait; a bare
/// `impl Type` records owner=Type; `trait Name` records both as Name.
fn owner_blocks(tokens: &[Token]) -> Vec<OwnerBlock> {
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_ident("trait") {
            if let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                if let Some((open, close)) = block_extent(tokens, i + 2) {
                    blocks.push(OwnerBlock {
                        open,
                        close,
                        owner: Some(name.text.clone()),
                        trait_name: Some(name.text.clone()),
                    });
                    i += 2;
                    continue;
                }
            }
        } else if t.is_ident("impl") {
            if let Some(block) = parse_impl(tokens, i) {
                blocks.push(block);
            }
        }
        i += 1;
    }
    blocks
}

/// Parses `impl [<…>] PathA [for PathB] [where …] { … }` starting at
/// the `impl` keyword.
fn parse_impl(tokens: &[Token], at: usize) -> Option<OwnerBlock> {
    let mut i = at + 1;
    if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_angles(tokens, i)?;
    }
    let (path_a, mut i) = parse_type_path(tokens, i)?;
    let mut path_b = None;
    if tokens.get(i).is_some_and(|t| t.is_ident("for")) {
        let (b, after) = parse_type_path(tokens, i + 1)?;
        path_b = Some(b);
        i = after;
    }
    let (open, close) = block_extent(tokens, i)?;
    match path_b {
        Some(b) => Some(OwnerBlock {
            open,
            close,
            owner: Some(b),
            trait_name: Some(path_a),
        }),
        None => Some(OwnerBlock {
            open,
            close,
            owner: Some(path_a),
            trait_name: None,
        }),
    }
}

/// Parses a type path (`a::b::C<X>`, `&mut T`, `dyn T`) and returns its
/// last identifier segment and the index just past it (generic
/// arguments skipped).
fn parse_type_path(tokens: &[Token], mut i: usize) -> Option<(String, usize)> {
    while tokens.get(i).is_some_and(|t| {
        t.is_punct('&') || t.kind == TokenKind::Lifetime || t.is_ident("mut") || t.is_ident("dyn")
    }) {
        i += 1;
    }
    let mut last = None;
    loop {
        match tokens.get(i) {
            Some(t) if t.kind == TokenKind::Ident => {
                last = Some(t.text.clone());
                i += 1;
            }
            _ => break,
        }
        if tokens.get(i).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        {
            i += 2;
            continue;
        }
        if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
            i = skip_angles(tokens, i)?;
        }
        break;
    }
    last.map(|l| (l, i))
}

/// From `from`, finds the next top-level `{` (skipping a `where`
/// clause) and returns (open, close); `None` when a `;` ends the item
/// first (e.g. `impl Trait for Type;` never occurs, but trait aliases
/// can).
fn block_extent(tokens: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            let close = close_brace(tokens, i)?;
            return Some((i, close));
        }
        if t.is_punct(';') {
            return None;
        }
        if t.is_punct('<') {
            i = skip_angles(tokens, i)?;
            continue;
        }
        if t.is_punct('(') || t.is_punct('[') {
            i = close_delim(tokens, i)? + 1;
            continue;
        }
        i += 1;
    }
    None
}

fn close_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

fn close_square(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

fn close_delim(tokens: &[Token], open: usize) -> Option<usize> {
    let (o, c) = match tokens.get(open).map(|t| t.kind) {
        Some(TokenKind::Punct('(')) => ('(', ')'),
        Some(TokenKind::Punct('[')) => ('[', ']'),
        _ => return None,
    };
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Skips past a `<…>` group honoring `->`; returns the index just past
/// the closing `>`.
fn skip_angles(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            let is_arrow = i > 0 && tokens[i - 1].is_punct('-') && tokens[i - 1].is_joint(t);
            if !is_arrow {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
        }
        i += 1;
    }
    None
}

/// The path qualifier of the ident at `k`: for `session::fnv1a_fold`
/// or `Vec::<u8>::with_capacity`, the ident segment before the final
/// `::` (skipping back over a turbofish/generic group).
pub(crate) fn path_qualifier(tokens: &[Token], k: usize) -> Option<&str> {
    if k < 3 || !tokens[k - 1].is_punct(':') || !tokens[k - 2].is_punct(':') {
        return None;
    }
    let mut q = k - 3;
    if tokens[q].is_punct('>') {
        // Walk back over `<…>` (e.g. `Vec::<u8>::`), then any `::`.
        let mut depth = 0usize;
        loop {
            let t = &tokens[q];
            if t.is_punct('>') {
                depth += 1;
            } else if t.is_punct('<') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if q == 0 {
                return None;
            }
            q -= 1;
        }
        while q > 0 && tokens[q - 1].is_punct(':') {
            q -= 1;
        }
        if q == 0 {
            return None;
        }
        q -= 1;
    }
    if tokens[q].kind == TokenKind::Ident {
        Some(&tokens[q].text)
    } else {
        None
    }
}

/// A raw call site before resolution.
struct RawCall {
    name: String,
    qualifier: Option<String>,
    is_method: bool,
    args_open: usize,
}

/// Recognizes a call whose callee name sits at token `k`: `name(…)`,
/// `name::<T>(…)`, `x.name(…)`, or `Type::name(…)`. Macro bangs and
/// `fn` definitions are excluded.
fn call_at(tokens: &[Token], k: usize) -> Option<RawCall> {
    let t = tokens.get(k)?;
    if t.kind != TokenKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    // Definition, not a call.
    if k > 0 && tokens[k - 1].is_ident("fn") {
        return None;
    }
    // Find the arg-list `(`: either directly, or after a turbofish.
    let mut open = k + 1;
    if tokens.get(open).is_some_and(|t| t.is_punct(':'))
        && tokens.get(open + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(open + 2).is_some_and(|t| t.is_punct('<'))
    {
        open = skip_angles(tokens, open + 2)?;
    }
    if !tokens.get(open).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let is_method = k > 0 && tokens[k - 1].is_punct('.');
    let qualifier = path_qualifier(tokens, k).map(str::to_string);
    Some(RawCall {
        name: t.text.clone(),
        qualifier,
        is_method,
        args_open: open,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::classify;
    use crate::lexer::lex;

    fn graph_of(path: &str, src: &str) -> (CallGraph, Vec<(String, LexedFile)>) {
        let files = vec![(path.to_string(), lex(src))];
        let contexts: Vec<FileContext> = files
            .iter()
            .map(|(p, l)| FileContext::build(classify(p), l))
            .collect();
        (CallGraph::build(&files, &contexts), files)
    }

    const LIB: &str = "crates/demo/src/lib.rs";

    #[test]
    fn defs_record_impl_and_trait_ownership() {
        let src = "trait Kernel { fn go(&self) { helper(); } }\n\
                   struct S;\n\
                   impl Kernel for S { fn go(&self) {} }\n\
                   impl S { fn own(&self) {} }\n\
                   fn helper() {}\n";
        let (g, _) = graph_of(LIB, src);
        let names: Vec<(String, Option<String>, Option<String>)> = g
            .defs
            .iter()
            .map(|d| (d.name.clone(), d.owner.clone(), d.trait_name.clone()))
            .collect();
        assert!(names.contains(&("go".into(), Some("Kernel".into()), Some("Kernel".into()))));
        assert!(names.contains(&("go".into(), Some("S".into()), Some("Kernel".into()))));
        assert!(names.contains(&("own".into(), Some("S".into()), None)));
        assert!(names.contains(&("helper".into(), None, None)));
    }

    #[test]
    fn calls_resolve_and_edges_form() {
        let src = "struct C;\n\
                   impl C { fn mth(&self) {} }\n\
                   fn a(c: &C) { b(); c.mth(); }\nfn b() { }\n";
        let (g, _) = graph_of(LIB, src);
        let a = g.defs.iter().position(|d| d.name == "a").unwrap();
        let b = g.defs.iter().position(|d| d.name == "b").unwrap();
        let m = g.defs.iter().position(|d| d.name == "mth").unwrap();
        assert!(g.edges[a].contains(&b));
        // Method calls resolve by bare name across all workspace methods.
        assert!(g.edges[a].contains(&m));
    }

    #[test]
    fn method_and_free_namespaces_never_cross() {
        // `x.relay()` must not edge into the free `fn relay`, and the
        // free `probe()` must not edge into the method `probe` — else
        // every `.collect()` in the tree would resolve to any free
        // `fn collect` and wire unrelated crates together.
        let src = "struct S;\n\
                   impl S { fn probe(&self) {} }\n\
                   fn relay() {}\n\
                   fn f(s: &S) { s.relay(); probe(); }\n";
        let (g, _) = graph_of(LIB, src);
        let f = g.defs.iter().position(|d| d.name == "f").unwrap();
        assert!(g.edges[f].is_empty(), "edges: {:?}", g.edges[f]);
        let unresolved: Vec<&str> = g.unresolved_calls().map(|c| c.name.as_str()).collect();
        assert_eq!(unresolved, vec!["relay", "probe"]);
    }

    #[test]
    fn common_std_method_names_never_edge_into_the_workspace() {
        // A workspace type may define `len`; `.len()` calls elsewhere
        // still must not edge to it (nor to any of the other eight
        // same-named methods a real tree accumulates). The call is not
        // even recorded as unresolved noise for the hot-path rule —
        // check_unresolved allow-lists these names.
        let src = "struct Q;\n\
                   impl Q { fn len(&self) -> usize { 0 } }\n\
                   fn f(v: &[u8]) -> usize { v.len() }\n";
        let (g, _) = graph_of(LIB, src);
        let f = g.defs.iter().position(|d| d.name == "f").unwrap();
        assert!(g.edges[f].is_empty(), "edges: {:?}", g.edges[f]);
        // An explicit `Q::len(&q)` UFCS call still resolves, though.
        let src2 = "struct Q;\n\
                    impl Q { fn len(&self) -> usize { 0 } }\n\
                    fn f(q: &Q) -> usize { Q::len(q) }\n";
        let (g2, _) = graph_of(LIB, src2);
        let f2 = g2.defs.iter().position(|d| d.name == "f").unwrap();
        let q_len = g2
            .defs
            .iter()
            .position(|d| d.name == "len" && d.owner.as_deref() == Some("Q"))
            .unwrap();
        assert!(g2.edges[f2].contains(&q_len));
    }

    #[test]
    fn qualified_calls_narrow_to_owner() {
        let src = "struct A; struct B;\n\
                   impl A { fn new() -> A { A } }\n\
                   impl B { fn new() -> B { B } }\n\
                   fn f() { let x = A::new(); }\n";
        let (g, _) = graph_of(LIB, src);
        let f = g.defs.iter().position(|d| d.name == "f").unwrap();
        let a_new = g
            .defs
            .iter()
            .position(|d| d.name == "new" && d.owner.as_deref() == Some("A"))
            .unwrap();
        let b_new = g
            .defs
            .iter()
            .position(|d| d.name == "new" && d.owner.as_deref() == Some("B"))
            .unwrap();
        assert!(g.edges[f].contains(&a_new));
        assert!(!g.edges[f].contains(&b_new));
    }

    #[test]
    fn unresolved_calls_are_accounted() {
        let src = "fn f(v: &mut Vec<u8>) { v.mystery_method(); known(); }\nfn known() {}\n";
        let (g, _) = graph_of(LIB, src);
        let unresolved: Vec<&str> = g.unresolved_calls().map(|c| c.name.as_str()).collect();
        assert_eq!(unresolved, vec!["mystery_method"]);
    }

    #[test]
    fn reachability_walks_edges_and_skips_tests() {
        let src = "fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n\
                   fn island() {}\n\
                   #[cfg(test)]\nmod t { fn gated() {} }\n";
        let (g, _) = graph_of(LIB, src);
        let top = g.defs.iter().position(|d| d.name == "top").unwrap();
        let hot = g.reachable(&[top]);
        let hot_names: Vec<&str> = g
            .defs
            .iter()
            .enumerate()
            .filter(|(i, _)| hot[*i])
            .map(|(_, d)| d.name.as_str())
            .collect();
        assert_eq!(hot_names, vec!["top", "mid", "leaf"]);
    }

    #[test]
    fn serialize_derives_are_collected() {
        let src =
            "#[derive(Debug, Clone, Serialize, Deserialize)]\npub struct WireReport { x: u8 }\n\
                   #[derive(Debug)]\nstruct Plain { y: u8 }\n";
        let (g, _) = graph_of(LIB, src);
        assert!(g.serialized_structs.contains("WireReport"));
        assert!(!g.serialized_structs.contains("Plain"));
    }

    #[test]
    fn turbofish_calls_are_recognized() {
        let src = "fn f() { g::<u8>(); }\nfn g<T>() {}\n";
        let (g, _) = graph_of(LIB, src);
        let f = g.defs.iter().position(|d| d.name == "f").unwrap();
        let gd = g.defs.iter().position(|d| d.name == "g").unwrap();
        assert!(g.edges[f].contains(&gd));
    }
}
