//! Hot-path allocation analysis: reachability from the serving
//! entry points, allocation-prone constructs, and unresolvable calls.
//!
//! ## Entry points
//!
//! * every method of the `DecisionKernel` trait (declarations, default
//!   bodies, and each `impl DecisionKernel for …`);
//! * `decide*` methods on any `…Engine…` type;
//! * `run*` methods on `DeviceSession`.
//!
//! The **hot set** is everything reachable from those along the call
//! graph, restricted to non-test library code.
//!
//! ## Rules
//!
//! * [`crate::rules::Rule::HotPathAlloc`] — heap-allocation-prone
//!   constructs in a hot function: heap-type constructors
//!   (`Vec::new`, `Box::new`, `String::from`, …), `vec!`/`format!`,
//!   and the copying methods `.clone()`, `.collect()`, `.to_vec()`,
//!   `.to_owned()`, `.to_string()`. `Vec::new()` itself is lazy, but
//!   the growth it invites lands on the hot path — flag at the source.
//! * [`crate::rules::Rule::UnresolvedHotCall`] — a call in a hot
//!   function that the graph cannot resolve to any workspace `fn` and
//!   that is not on the allow-list of provably allocation-free std
//!   methods. Hot code must stay *analyzable*: either the callee is
//!   ours (resolvable), a known-harmless std method, or the call is
//!   exempted with a reviewable `// lint:hot-exempt(<why>)`.
//!
//! Both rules suppress via `// lint:hot-exempt(<why>)` (or a targeted
//! `lint:allow`), trailing or on the line above, covering the full
//! statement span.

use crate::callgraph::CallGraph;
use crate::context::{FileClass, FileContext};
use crate::lexer::{LexedFile, Token, TokenKind};
use crate::rules::{Finding, Rule};

/// What the hot-path pass produced.
#[derive(Debug, Clone, Default)]
pub struct HotOutcome {
    /// Findings, unfiltered by suppressions (the caller filters).
    pub findings: Vec<Finding>,
    /// Per-def: whether the function is on the hot path.
    pub hot: Vec<bool>,
}

/// Types whose associated constructors manage heap storage.
const HEAP_TYPES: [&str; 10] = [
    "Vec", "VecDeque", "Box", "String", "Arc", "Rc", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
];

/// Constructor names that, on a heap type, (pre)allocate or copy.
const HEAP_CTORS: [&str; 4] = ["new", "with_capacity", "from", "from_iter"];

/// Method calls that copy into fresh heap storage.
pub(crate) const COPYING_METHODS: [&str; 5] =
    ["clone", "collect", "to_vec", "to_owned", "to_string"];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Unresolved method/function names that are provably allocation-free
/// std surface (iterator adaptors, Option/Result combinators, slice
/// accessors, numeric ops, seeded-RNG draws). Anything *not* here —
/// `push`, `insert`, `extend`, `sort`, `reserve` — stays a finding so
/// the growth-prone std surface needs an explicit exemption.
pub(crate) const STD_ALLOC_FREE: [&str; 157] = [
    // iterator adaptors and consumers (lazy or O(1)-state)
    "iter",
    "iter_mut",
    "into_iter",
    "enumerate",
    "zip",
    "rev",
    "take",
    "take_while",
    "skip",
    "skip_while",
    "chain",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "fold",
    "sum",
    "product",
    "count",
    "position",
    "rposition",
    "find",
    "find_map",
    "any",
    "all",
    "by_ref",
    "copied",
    "cloned",
    "step_by",
    "last",
    "next",
    "nth",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    // Option / Result combinators
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map_or",
    "map_or_else",
    "map_err",
    "ok_or",
    "ok_or_else",
    "ok",
    "err",
    "and_then",
    "or_else",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "as_ref",
    "as_mut",
    "as_deref",
    "take",
    "replace",
    "then",
    "then_some",
    // slices and collections, read-only or in-place
    "get",
    "get_mut",
    "first",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "starts_with",
    "ends_with",
    "split_at",
    "split_first",
    "split_last",
    "chunks",
    "chunks_exact",
    "windows",
    "fill",
    "swap",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "binary_search",
    "binary_search_by",
    "as_slice",
    "as_mut_slice",
    "as_bytes",
    "copy_from_slice",
    "truncate",
    "clear",
    "pop",
    // VecDeque's O(1) front removal: shrinks, never grows (push_back
    // and push_front stay findings — ring growth reallocates)
    "pop_front",
    // numeric / bit ops
    "abs",
    "signum",
    "clamp",
    "powi",
    "powf",
    "sqrt",
    "exp",
    "ln",
    "sin",
    "cos",
    "log2",
    "log10",
    "floor",
    "ceil",
    "round",
    "trunc",
    "fract",
    "recip",
    "mul_add",
    "is_finite",
    "is_nan",
    "to_bits",
    "from_bits",
    "rotate_left",
    "rotate_right",
    "count_ones",
    "leading_zeros",
    "trailing_zeros",
    "rem_euclid",
    "div_euclid",
    "pow",
    // slice search / ordering without reallocation
    "partition_point",
    "partial_cmp",
    "cmp",
    "capacity",
    // checked / wrapping / saturating integer arithmetic
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "is_multiple_of",
    // fixed-size byte conversions (arrays on the stack)
    "to_le_bytes",
    "to_be_bytes",
    "from_le_bytes",
    "from_be_bytes",
    // sizing and lazy iterator constructors
    "size_of",
    "size_of_val",
    "repeat_n",
    // combinator probes
    "is_some_and",
    "is_none_or",
    // conversions (moves, not copies)
    "into",
    "from",
    "try_from",
    "try_into",
    // seeded-RNG draws and construction (deterministic, stack-only:
    // seed_from_u64 expands via SplitMix64 into a fixed [u8; 32])
    "gen",
    "gen_range",
    "gen_bool",
    "seed_from_u64",
];

/// Runs the hot-path analysis over the whole workspace.
pub fn analyze(
    files: &[(String, LexedFile)],
    contexts: &[FileContext],
    graph: &CallGraph,
) -> HotOutcome {
    let _ = contexts;
    let entries: Vec<usize> = graph
        .defs
        .iter()
        .enumerate()
        .filter(|(_, d)| !d.in_test && d.class == FileClass::Lib && is_entry(d))
        .map(|(id, _)| id)
        .collect();
    // BFS with a witness: which entry pulled each def into the hot set.
    let mut witness: Vec<Option<usize>> = vec![None; graph.defs.len()];
    let mut stack = Vec::new();
    for &e in &entries {
        witness[e] = Some(e);
        stack.push(e);
    }
    while let Some(id) = stack.pop() {
        let root = witness[id].unwrap_or(id);
        for &next in &graph.edges[id] {
            let d = &graph.defs[next];
            if witness[next].is_none() && !d.in_test && d.class == FileClass::Lib {
                witness[next] = Some(root);
                stack.push(next);
            }
        }
    }
    let hot: Vec<bool> = witness.iter().map(Option::is_some).collect();

    let mut findings = Vec::new();
    for (id, def) in graph.defs.iter().enumerate() {
        if !hot[id] {
            continue;
        }
        let tokens = &files[def.file].1.tokens;
        let path = files[def.file].0.as_str();
        let via = witness[id]
            .map(|e| entry_label(graph, e))
            .unwrap_or_default();
        check_allocs(tokens, def.open, def.close, path, &via, &mut findings);
        check_unresolved(graph, id, tokens, path, &via, &mut findings);
    }
    HotOutcome { findings, hot }
}

/// Whether a def is one of the serving hot-path entry points.
fn is_entry(d: &crate::callgraph::FnDef) -> bool {
    let owner = d.owner.as_deref().unwrap_or("");
    let trait_name = d.trait_name.as_deref().unwrap_or("");
    owner == "DecisionKernel"
        || trait_name == "DecisionKernel"
        || (owner.contains("Engine") && d.name.starts_with("decide"))
        || (owner == "DeviceSession" && d.name.starts_with("run"))
}

/// `Owner::name` label for hot-path attribution in messages.
fn entry_label(graph: &CallGraph, id: usize) -> String {
    let d = &graph.defs[id];
    match &d.owner {
        Some(owner) => format!("{owner}::{}", d.name),
        None => d.name.clone(),
    }
}

/// Scans a hot body for allocation-prone constructs.
fn check_allocs(
    tokens: &[Token],
    open: usize,
    close: usize,
    path: &str,
    via: &str,
    out: &mut Vec<Finding>,
) {
    for k in open + 1..close {
        let t = &tokens[k];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next_bang = tokens.get(k + 1).is_some_and(|n| n.is_punct('!'));
        if next_bang && ALLOC_MACROS.contains(&t.text.as_str()) {
            out.push(alloc_finding(path, t.line, &format!("{}!", t.text), via));
            continue;
        }
        if HEAP_CTORS.contains(&t.text.as_str()) {
            if let Some(q) = crate::callgraph::path_qualifier(tokens, k) {
                if HEAP_TYPES.contains(&q) {
                    let label = format!("{q}::{}", t.text);
                    out.push(alloc_finding(path, t.line, &label, via));
                    continue;
                }
            }
        }
        let is_method = k > 0 && tokens[k - 1].is_punct('.');
        let called = tokens.get(k + 1).is_some_and(|n| n.is_punct('('))
            || (tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
                && tokens.get(k + 2).is_some_and(|n| n.is_punct(':')));
        if is_method && called && COPYING_METHODS.contains(&t.text.as_str()) {
            out.push(alloc_finding(path, t.line, &format!(".{}()", t.text), via));
        }
    }
}

fn alloc_finding(path: &str, line: u32, what: &str, via: &str) -> Finding {
    Finding {
        file: path.to_string(),
        line,
        rule: Rule::HotPathAlloc,
        message: format!(
            "`{what}` allocates on the serving hot path (reachable from `{via}`); \
             preallocate outside the decision loop or exempt with lint:hot-exempt(<why>)"
        ),
    }
}

/// Flags unresolved, non-allow-listed calls in a hot body.
fn check_unresolved(
    graph: &CallGraph,
    id: usize,
    tokens: &[Token],
    path: &str,
    via: &str,
    out: &mut Vec<Finding>,
) {
    for call in graph.calls_of(id) {
        if !call.resolved.is_empty() {
            continue;
        }
        // Variant/tuple-struct constructors (`Some(x)`, `State(i)`) and
        // heap ctors (reported as hot-path-alloc) are not call targets
        // the graph was ever going to resolve.
        if call.name.starts_with(|c: char| c.is_ascii_uppercase()) {
            continue;
        }
        if STD_ALLOC_FREE.contains(&call.name.as_str()) {
            continue;
        }
        // Copying methods and heap-type constructors are already
        // reported as hot-path-alloc; don't double up.
        if COPYING_METHODS.contains(&call.name.as_str()) {
            continue;
        }
        let qualified_heap = crate::callgraph::path_qualifier(tokens, call.at)
            .is_some_and(|q| HEAP_TYPES.contains(&q));
        if qualified_heap {
            continue;
        }
        out.push(Finding {
            file: path.to_string(),
            line: call.line,
            rule: Rule::UnresolvedHotCall,
            message: format!(
                "`{}{}(…)` on the hot path (reachable from `{via}`) resolves to no workspace \
                 fn and is not allow-listed allocation-free std; keep hot code analyzable or \
                 exempt with lint:hot-exempt(<why>)",
                if call.is_method { "." } else { "" },
                call.name
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::classify;

    fn run(path: &str, src: &str) -> HotOutcome {
        let files = vec![(path.to_string(), crate::lexer::lex(src))];
        let contexts: Vec<FileContext> = files
            .iter()
            .map(|(p, l)| FileContext::build(classify(p), l))
            .collect();
        let graph = CallGraph::build(&files, &contexts);
        analyze(&files, &contexts, &graph)
    }

    const LIB: &str = "crates/demo/src/lib.rs";

    fn rules_hit(out: &HotOutcome) -> Vec<(u32, &'static str)> {
        out.findings
            .iter()
            .map(|f| (f.line, f.rule.name()))
            .collect()
    }

    #[test]
    fn alloc_reachable_from_kernel_is_flagged() {
        let src = "trait DecisionKernel { fn select(&self) -> usize { helper() } }\n\
                   fn helper() -> usize { deep() }\n\
                   fn deep() -> usize { let v = Vec::<usize>::with_capacity(4); v.len() }\n";
        let out = run(LIB, src);
        assert!(
            rules_hit(&out).contains(&(3, "hot-path-alloc")),
            "{:?}",
            out.findings
        );
    }

    #[test]
    fn alloc_off_the_hot_path_is_fine() {
        let src = "fn cold() -> Vec<u8> { Vec::new() }\n\
                   trait DecisionKernel { fn select(&self) -> usize { 0 } }\n";
        let out = run(LIB, src);
        assert!(rules_hit(&out).is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn engine_decide_and_session_run_are_entries() {
        let src = "struct AutoScaleEngine; struct DeviceSession;\n\
                   impl AutoScaleEngine { fn decide(&self) { fmt_state(); } }\n\
                   impl DeviceSession { fn run(&self) { fmt_state(); } }\n\
                   fn fmt_state() { let s = format!(\"x\"); }\n";
        let out = run(LIB, src);
        assert_eq!(rules_hit(&out), vec![(4, "hot-path-alloc")]);
    }

    #[test]
    fn clone_and_collect_are_flagged() {
        let src =
            "struct E; impl E { fn decide_kernel(&self, v: &[u8]) -> Vec<u8> { v.to_vec() } }\n";
        // Owner `E` does not contain "Engine" — not hot, no finding.
        assert!(rules_hit(&run(LIB, src)).is_empty());
        let hot = "struct XEngine; impl XEngine { fn decide_kernel(&self, v: &[u8]) -> Vec<u8> { v.to_vec() } }\n";
        assert_eq!(rules_hit(&run(LIB, hot)), vec![(1, "hot-path-alloc")]);
    }

    #[test]
    fn unresolved_hot_calls_are_flagged_but_std_is_not() {
        let src = "struct XEngine;\n\
                   impl XEngine { fn decide(&self, v: &mut Vec<u8>, x: Option<u8>) {\n\
                   let _ = x.unwrap_or(0);\n\
                   v.push(1);\n\
                   } }\n";
        let out = run(LIB, src);
        assert_eq!(rules_hit(&out), vec![(4, "unresolved-hot-call")]);
    }

    #[test]
    fn test_code_never_joins_the_hot_set() {
        let src = "trait DecisionKernel { fn select(&self) -> usize { 0 } }\n\
                   #[cfg(test)]\nmod t { fn select_test() { let v = vec![1]; } }\n";
        assert!(rules_hit(&run(LIB, src)).is_empty());
    }
}
