//! Long-form rule documentation for `--explain <rule>`.
//!
//! `--list-rules` answers "what exists"; `--explain` answers "why does
//! this rule exist, what exactly fires it, and how do I satisfy or
//! waive it". CI runs `--explain all` as a smoke step so every rule
//! keeps a non-empty explanation.

use crate::rules::Rule;

/// The full explanation for one rule: what fires, why it matters for
/// the determinism/energy-accounting contract, and the sanctioned ways
/// out.
pub fn explain(rule: Rule) -> &'static str {
    match rule {
        Rule::NondeterministicTime => {
            "nondeterministic-time — wall-clock reads in library code.\n\
             \n\
             Fires on `Instant::now()` and any `SystemTime` mention in a file\n\
             classified as library code (outside `#[cfg(test)]`). Session\n\
             reports and trace digests must be pure functions of\n\
             (trace, seed, index); a wall-clock read anywhere near that path\n\
             makes replays diverge and shard counts observable.\n\
             \n\
             Fix: thread simulated time (`tick`, `slot_ms`) through instead.\n\
             Waive: quarantine the read behind a helper annotated\n\
             `// lint:allow(nondeterministic-time): <why>` — the taint pass\n\
             will still track its value into digests if it leaks."
        }
        Rule::NondeterministicRng => {
            "nondeterministic-rng — entropy-seeded RNG construction.\n\
             \n\
             Fires on `thread_rng`, `from_entropy`, `from_os_rng`, `OsRng`,\n\
             `getrandom`, and `rand::random` in every file class, including\n\
             tests: one entropy-seeded stream anywhere breaks bit-identical\n\
             replay, and digest assertions cannot localize which stream it\n\
             was.\n\
             \n\
             Fix: derive every stream from an explicit seed (`seeded_rng`,\n\
             `cell_seed`-style mixing)."
        }
        Rule::UnorderedIteration => {
            "unordered-iteration — HashMap/HashSet iteration near digests.\n\
             \n\
             Fires on `.iter()`/`.keys()`/`.values()`/`.drain()`/… inside a\n\
             function that both mentions HashMap/HashSet and touches digests,\n\
             serialization, or SessionReport. Hash iteration order is\n\
             randomized per process, so it leaks straight into supposedly\n\
             deterministic output.\n\
             \n\
             Fix: use BTreeMap/BTreeSet, or collect and sort before folding."
        }
        Rule::PanicInLib => {
            "panic-in-lib — aborts in non-test library code.\n\
             \n\
             Fires on `.unwrap()`, `.expect()`, `panic!`, `unreachable!`,\n\
             `todo!`, `unimplemented!`. A panic in the serving stack takes\n\
             down every session on the thread, not just the offending one.\n\
             \n\
             Fix: return a Result. Waive provably-infallible cases with\n\
             `// lint:allow(panic-in-lib): <proof sketch>`."
        }
        Rule::PrintInLib => {
            "print-in-lib — stdio writes from library code.\n\
             \n\
             Fires on `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!`\n\
             outside binaries, examples, and benches. Library code reports\n\
             through return values; binaries own presentation.\n\
             \n\
             Fix: return the value, or move the print to the bin/example."
        }
        Rule::UnitMismatch => {
            "unit-mismatch — arithmetic across incompatible suffix units.\n\
             \n\
             Fires when `+`/`-`/comparison/assignment combine expressions\n\
             whose suffix-inferred units provably differ: ms vs mJ is a\n\
             dimension clash, ms vs ns a scale clash. Multiplication and\n\
             division combine dimensions, so `power_w * slot_ms` inferring\n\
             mJ stays clean.\n\
             \n\
             Fix: convert explicitly (`* 1_000.0`, `/ 1e6`) or rename the\n\
             binding to its true unit."
        }
        Rule::UnitArgMismatch => {
            "unit-arg-mismatch — call argument contradicts parameter suffix.\n\
             \n\
             Fires when an argument's inferred unit contradicts the callee\n\
             parameter's name suffix, resolved through the workspace-wide\n\
             signature index. Only fires when every same-name, same-arity\n\
             definition in the workspace agrees on the parameter's unit, so\n\
             cross-crate homonyms cannot produce false positives.\n\
             \n\
             Fix: convert at the call site, or fix the parameter name."
        }
        Rule::UnitBindingMismatch => {
            "unit-binding-mismatch — binding suffix contradicts initializer.\n\
             \n\
             Fires on `let x_ms = <mJ expr>` and `field_ms: <mJ expr>`: the\n\
             declared suffix promises one unit, the initializer's inferred\n\
             unit is another. Downstream code trusts names, so the lie\n\
             propagates.\n\
             \n\
             Fix: rename the binding or convert the initializer."
        }
        Rule::TaintedDigest => {
            "tainted-digest — nondeterminism reaches a digest update.\n\
             \n\
             The interprocedural taint pass seeds taint at wall-clock reads\n\
             (`Instant::now`, `SystemTime`), env reads (`env::var`),\n\
             entropy-seeded RNGs, and statements marked\n\
             `// lint:taint-source(<why>)`. Taint propagates through\n\
             let-bindings, assignments, and *across workspace call edges*\n\
             via functions whose return value is tainted. The rule fires\n\
             when a tainted value is passed to `fnv1a_fold` / any\n\
             `*digest*` call or assigned into a `*digest*` binding — even\n\
             if the source sits two helper functions away.\n\
             \n\
             This is the contract the per-file rules cannot see: a\n\
             `lint:allow(nondeterministic-time)` quarantine is fine only\n\
             while the quarantined value stays out of digested state; this\n\
             rule checks exactly that.\n\
             \n\
             Fix: keep wall-clock values out of digest inputs entirely.\n\
             There is deliberately no casual waiver — if a digest must fold\n\
             a nondeterministic value, the design is wrong."
        }
        Rule::TaintedReportField => {
            "tainted-report-field — nondeterminism reaches serialized state.\n\
             \n\
             Same taint engine as tainted-digest, different sinks: fields of\n\
             struct literals whose type ends in `Report` or derives serde\n\
             `Serialize`, and arguments to `serialize`/`to_value` calls.\n\
             Reports are the replay contract's public surface — a tainted\n\
             field makes two identical runs produce different artifacts.\n\
             \n\
             Fix: report simulated time/energy, not wall-clock; keep\n\
             measured-wall-time diagnostics in bench binaries, outside\n\
             serialized session state."
        }
        Rule::HotPathAlloc => {
            "hot-path-alloc — allocation on the decision hot path.\n\
             \n\
             The call graph computes every function reachable from\n\
             `DecisionKernel::*`, `*Engine::decide*`, or\n\
             `DeviceSession::run*` (non-test library code only). Within that\n\
             set the rule fires on heap-allocating constructors\n\
             (`Vec::new`, `Box::new`, `String::from`, `with_capacity`, …),\n\
             `vec!`/`format!`, `clone()`, `collect()`, `to_vec()`,\n\
             `to_owned()`, `to_string()`.\n\
             \n\
             The serve hot path holds ~3M decisions/s because it is\n\
             allocation-free; a single Vec in a kernel inner loop is the\n\
             regression class the bench gate catches only after the fact.\n\
             \n\
             Fix: preallocate in setup code and reuse buffers. Waive\n\
             deliberate setup-time allocation with\n\
             `// lint:hot-exempt(<why>)` (also covers\n\
             unresolved-hot-call on the same statement)."
        }
        Rule::UnresolvedHotCall => {
            "unresolved-hot-call — unanalyzable call on the hot path.\n\
             \n\
             Fires when a function on the decision hot path makes a call the\n\
             workspace call graph cannot resolve to a definition and that is\n\
             not on the known allocation-free std whitelist (iterator\n\
             adaptors, Option/Result combinators, slice reads, …). Growth-\n\
             prone std methods (`push`, `insert`, `extend`, `reserve`) are\n\
             deliberately off the whitelist: they allocate on resize, so\n\
             they must be either resolved, exempted, or removed.\n\
             \n\
             Unresolved edges are where the hot-path-alloc guarantee would\n\
             silently leak; this rule keeps the hot path analyzable.\n\
             \n\
             Fix: name the callee so the graph can resolve it (avoid\n\
             trait-object indirection on the hot path), or waive with\n\
             `// lint:hot-exempt(<why>)`."
        }
        Rule::UnderivedRngStream => {
            "underived-rng-stream — RNG seeded outside the derivation scheme.\n\
             \n\
             Fires on `seed_from_u64(…)` / `from_seed(…)` whose argument\n\
             span mentions no seed-derived identifier (`cell_seed`,\n\
             `seeded_rng`, anything containing `seed`), in non-test lib and\n\
             bin code. The determinism contract says every stream is a pure\n\
             function of (base_seed, cell index, stream index); an RNG\n\
             seeded from a literal or ad-hoc expression is a stream nobody\n\
             can re-derive, and collides with real streams silently.\n\
             \n\
             Fix: derive the seed through `cell_seed`/`seeded_rng`. Waive a\n\
             deliberate fixed stream with\n\
             `// lint:draws-exempt(<why>)` or\n\
             `// lint:allow(underived-rng-stream): <why>`."
        }
        Rule::DivergentRngDraws => {
            "divergent-rng-draws — branch arms draw unequal RNG counts.\n\
             \n\
             The stream pass computes a draw-count interval for every\n\
             function (summing callee intervals through the call graph) and\n\
             walks branchy control flow in every function reachable from\n\
             per-request entry points: FaultInjector request methods,\n\
             DecisionKernel impls, `decide_*`. It fires when the arms of an\n\
             `if`/`match` consume provably different counts — the next\n\
             request's draws then shift depending on data, so fault\n\
             schedules stop being prefix-stable (see\n\
             FAULT_DRAWS_PER_REQUEST in crates/sim/src/faults.rs).\n\
             \n\
             Fix: equalize arms with a burn draw, or hoist draws above the\n\
             branch. Waive a deliberately divergent protocol with\n\
             `// lint:draws-exempt(<why>)`."
        }
        Rule::PolicyDependentDraws => {
            "policy-dependent-draws — draw count branches on policy state.\n\
             \n\
             A divergent-draws finding upgrades to this rule when the\n\
             branch condition mentions policy/Q-state identifiers (epsilon,\n\
             greedy, argmax, q_table, agent, action, …). Unequal arms that\n\
             depend on *data* shift schedules between runs; arms that\n\
             depend on the *policy* make the environment's fault schedule a\n\
             function of the agent under test — traces stop being\n\
             comparable across agents, which is the property every A/B\n\
             energy comparison in the paper rests on.\n\
             \n\
             Fix: draw unconditionally and discard on the cheap arm, or\n\
             move the policy branch below all draws. Waive a pinned,\n\
             digest-protected protocol (e.g. epsilon-greedy's\n\
             exploration-only bounded draw) with\n\
             `// lint:draws-exempt(<why>)`."
        }
        Rule::SharedMutableHotState => {
            "shared-mutable-hot-state — shared mutable state on the serve path.\n\
             \n\
             Fires on (1) `static mut` and interior-mutable `static`s\n\
             (Mutex/RwLock/RefCell/Cell/OnceLock/Atomic*) in non-test\n\
             lib/bin/bench code; (2) interior-mutability types or uses of\n\
             those statics inside functions reachable from serve shard\n\
             entry points (`serve*`, `DeviceSession::run*`, DecisionKernel\n\
             impls, `decide_*`), reported with the caller witness chain;\n\
             (3) non-SeqCst atomic orderings (Relaxed/Acquire/Release/\n\
             AcqRel) in functions that also touch digested or serialized\n\
             state. Shard-parallel serving is deterministic because shards\n\
             share nothing mutable; each exception makes interleaving\n\
             observable.\n\
             \n\
             Fix: scope state per shard (the `run_cells` pattern: disjoint\n\
             indices, merge at the barrier). Waive deliberate diagnostics\n\
             with `// lint:allow(shared-mutable-hot-state): <why>`."
        }
        Rule::LockOrderCycle => {
            "lock-order-cycle — inconsistent lock acquisition order.\n\
             \n\
             The shared-state pass records every `.lock()` (and\n\
             `.read()`/`.write()` on receivers declared as RwLocks), builds\n\
             a lock-order graph — within a function, every earlier\n\
             acquisition precedes every later one; a call made while a lock\n\
             is held orders that lock before everything the callee\n\
             transitively acquires — and reports every cycle. A cycle means\n\
             two shards can interleave opposite orders and deadlock; the\n\
             fleet barrier then never completes, which in CI looks like a\n\
             hang, not a failure.\n\
             \n\
             Fix: impose one global acquisition order (sort by lock\n\
             identity) or collapse to a single lock. Waive a provably\n\
             single-threaded cycle with\n\
             `// lint:allow(lock-order-cycle): <why>`."
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_a_real_explanation() {
        for rule in Rule::ALL {
            let text = explain(rule);
            assert!(
                text.starts_with(rule.name()),
                "{} explanation must lead with its name",
                rule.name()
            );
            assert!(
                text.contains("Fix:"),
                "{} explanation must state a fix",
                rule.name()
            );
            assert!(text.len() > 200, "{} explanation too thin", rule.name());
        }
    }
}
