//! A workspace-wide index of function signatures, for call-site unit
//! checking.
//!
//! The units checker's rule (b) — "this argument's unit contradicts the
//! callee's parameter-name suffix" — needs to know every `fn`'s
//! parameter names before any file is checked. [`SigIndex`] is built in
//! a first pass over all workspace sources (or over a single file for
//! self-contained analysis) by scanning each token stream for `fn`
//! items and recording name, parameter names, and the units their
//! suffixes declare.
//!
//! Rust has no overloading, but the same bare name may be defined in
//! several modules (`new`, `len`, `step`, …), and the index is
//! deliberately name-based rather than path-based — resolving imports
//! is out of scope for a lexer-level analyzer. The lookup is therefore
//! conservative: a parameter position only yields an expectation when
//! every candidate signature of matching arity agrees on a known unit.
//! Disagreement, unknown units, or arity mismatch all degrade to "no
//! expectation", never to a finding.

use std::collections::BTreeMap;

use crate::lexer::LexedFile;
use crate::parser::parse_fn_signature;
use crate::units::Unit;

/// One recorded parameter: its declared name (if the parameter is a
/// plain identifier rather than a pattern) and the unit that name's
/// suffix declares.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name, `None` for destructuring patterns.
    pub name: Option<String>,
    /// Unit declared by the name's suffix.
    pub unit: Unit,
}

/// One function signature: its parameters, `self` excluded (so method
/// calls and free calls index positions identically).
#[derive(Debug, Clone, PartialEq)]
pub struct FnSig {
    /// The parameters, in declaration order.
    pub params: Vec<Param>,
}

/// The index: bare function name → every signature seen under it.
#[derive(Debug, Clone, Default)]
pub struct SigIndex {
    by_name: BTreeMap<String, Vec<FnSig>>,
}

impl SigIndex {
    /// An empty index (no call-site checking).
    pub fn new() -> SigIndex {
        SigIndex::default()
    }

    /// Records every `fn` signature found in one lexed file.
    pub fn add_file(&mut self, lexed: &LexedFile) {
        let tokens = &lexed.tokens;
        let mut i = 0;
        while i < tokens.len() {
            if tokens[i].is_ident("fn") {
                if let Some((name, sig, end)) = parse_fn_signature(tokens, i) {
                    let sigs = self.by_name.entry(name).or_default();
                    if !sigs.contains(&sig) {
                        sigs.push(sig);
                    }
                    i = end;
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Number of distinct (name, signature) entries recorded.
    pub fn len(&self) -> usize {
        self.by_name.values().map(Vec::len).sum()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// The unit expectation for argument `idx` of a call to `callee`
    /// with `argc` arguments, together with the parameter name that
    /// declares it.
    ///
    /// Returns `Some` only when every signature recorded under `callee`
    /// with exactly `argc` parameters declares the same known unit at
    /// that position. Everything else — unknown callee, arity mismatch,
    /// unsuffixed parameter, conflicting definitions — returns `None`.
    pub fn expected_param(&self, callee: &str, argc: usize, idx: usize) -> Option<(&str, Unit)> {
        let candidates: Vec<&FnSig> = self
            .by_name
            .get(callee)?
            .iter()
            .filter(|sig| sig.params.len() == argc)
            .collect();
        let first = candidates.first()?.params.get(idx)?;
        let name = first.name.as_deref()?;
        if !first.unit.is_known() {
            return None;
        }
        for sig in &candidates[1..] {
            let param = sig.params.get(idx)?;
            if param.unit != first.unit {
                return None;
            }
        }
        Some((name, first.unit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::units::ident_unit;

    fn index(src: &str) -> SigIndex {
        let mut idx = SigIndex::new();
        idx.add_file(&lex(src));
        idx
    }

    #[test]
    fn signatures_are_recorded_with_units() {
        let idx = index(
            "pub fn on_device_energy_mj(p: &Processor, cond: &Cond, latency_ms: f64, base_power_w: f64) -> E { }",
        );
        assert_eq!(idx.len(), 1);
        let (name, unit) = idx
            .expected_param("on_device_energy_mj", 4, 2)
            .expect("param 2 known");
        assert_eq!(name, "latency_ms");
        assert_eq!(unit, ident_unit("latency_ms"));
        // Unsuffixed parameters carry no expectation.
        assert!(idx.expected_param("on_device_energy_mj", 4, 0).is_none());
        // Arity mismatch carries no expectation.
        assert!(idx.expected_param("on_device_energy_mj", 3, 2).is_none());
    }

    #[test]
    fn self_is_excluded_so_methods_align_with_free_calls() {
        let idx = index("impl X { fn charge(&mut self, energy_mj: f64) {} }");
        let (name, _) = idx.expected_param("charge", 1, 0).expect("aligned");
        assert_eq!(name, "energy_mj");
    }

    #[test]
    fn conflicting_definitions_yield_no_expectation() {
        let idx = index(
            "fn cost(latency_ms: f64) -> f64 { 0.0 }\nmod other { fn cost(energy_mj: f64) -> f64 { 0.0 } }",
        );
        assert!(idx.expected_param("cost", 1, 0).is_none());
    }

    #[test]
    fn agreeing_duplicate_definitions_still_check() {
        let idx = index("fn f(t_ms: f64) {}\nmod m { fn f(t_ms: f64) {} }");
        assert!(idx.expected_param("f", 1, 0).is_some());
    }

    #[test]
    fn generic_and_where_heavy_signatures_parse() {
        let idx = index(
            "fn run<F: Fn() -> u64, const N: usize>(work: F, budget_ms: f64) -> [u8; 4] where F: Send { [0; 4] }",
        );
        let (name, _) = idx.expected_param("run", 2, 1).expect("budget param");
        assert_eq!(name, "budget_ms");
    }

    #[test]
    fn bodiless_trait_methods_are_indexed() {
        let idx = index("trait T { fn wait(&self, pause_ms: f64); }");
        assert!(idx.expected_param("wait", 1, 0).is_some());
    }

    // The tests below pin the *cross-crate* resolution contract the
    // call graph builds on: the index is bare-name-based, one namespace
    // for the whole workspace, fed by one `add_file` call per file.

    fn index_files(files: &[&str]) -> SigIndex {
        let mut idx = SigIndex::new();
        for src in files {
            idx.add_file(&lex(src));
        }
        idx
    }

    #[test]
    fn same_name_across_crates_must_agree_to_check() {
        // Two crates defining `budget` with different param names but
        // agreeing units keep the expectation; a disagreeing crate
        // kills it for the *whole* workspace — conservative by design.
        let agree = index_files(&[
            "pub fn budget(window_ms: f64) -> f64 { window_ms }",
            "pub fn budget(span_ms: f64) -> f64 { span_ms * 2.0 }",
        ]);
        assert_eq!(agree.len(), 2);
        assert!(agree.expected_param("budget", 1, 0).is_some());

        let disagree = index_files(&[
            "pub fn budget(window_ms: f64) -> f64 { window_ms }",
            "pub fn budget(window_mj: f64) -> f64 { window_mj }",
        ]);
        assert!(disagree.expected_param("budget", 1, 0).is_none());
    }

    #[test]
    fn identical_signatures_across_crates_dedupe() {
        // Workspace-wide pass sees the same textual signature twice
        // (e.g. a trait and its impl): one entry, expectation intact.
        let idx = index_files(&[
            "trait K { fn pick(&self, slack_ms: f64) -> usize; }",
            "impl K for G { fn pick(&self, slack_ms: f64) -> usize { 0 } }",
        ]);
        assert_eq!(idx.len(), 1);
        assert!(idx.expected_param("pick", 1, 0).is_some());
    }

    #[test]
    fn impl_methods_and_free_functions_share_one_namespace() {
        // A method `Device::drain(power_w)` and a free `drain(power_w)`
        // in another crate collide under the bare name. Agreement keeps
        // checking; a unit conflict degrades to no expectation rather
        // than a cross-namespace false positive.
        let agree = index_files(&[
            "impl Device { fn drain(&mut self, power_w: f64) {} }",
            "pub fn drain(power_w: f64) {}",
        ]);
        assert!(agree.expected_param("drain", 1, 0).is_some());

        let clash = index_files(&[
            "impl Device { fn drain(&mut self, power_w: f64) {} }",
            "pub fn drain(budget_ms: f64) {}",
        ]);
        assert!(clash.expected_param("drain", 1, 0).is_none());
    }

    #[test]
    fn re_exports_are_invisible_to_the_index() {
        // `pub use` carries no signature: the definition is indexed
        // once, under its bare name, no matter how many re-export paths
        // exist — and the re-export line itself must not be mistaken
        // for a definition.
        let idx = index_files(&[
            "pub fn step(dt_ms: f64) {}",
            "pub use crate::engine::step;\npub use crate::engine::step as advance;",
        ]);
        assert_eq!(idx.len(), 1);
        assert!(idx.expected_param("step", 1, 0).is_some());
        // The alias has no entry of its own.
        assert!(idx.expected_param("advance", 1, 0).is_none());
    }
}
