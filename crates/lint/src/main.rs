//! `autoscale-lint` — the workspace's determinism & robustness gate.
//!
//! ```text
//! cargo run -p autoscale-lint                    # human output, exit 1 on findings
//! cargo run -p autoscale-lint -- --format json   # stable JSON (the baseline format)
//! cargo run -p autoscale-lint -- --list-rules    # what the rules check
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use autoscale_lint::rules::Rule;

/// Output formats.
enum Format {
    Human,
    Json,
}

struct Args {
    format: Format,
    root: PathBuf,
}

const USAGE: &str = "\
autoscale-lint: determinism & robustness static analysis for this workspace

USAGE:
    autoscale-lint [--format human|json] [--root PATH] [--list-rules]

OPTIONS:
    --format human|json   Output format (default: human)
    --root PATH           Workspace root to analyze (default: .)
    --list-rules          Print every rule with its description and exit
    -h, --help            Show this help

EXIT CODES:
    0  clean (no unsuppressed findings)
    1  findings reported
    2  usage or I/O error

Suppress a single finding with `// lint:allow(<rule>): <justification>`
on the offending line or on the line directly above it.";

fn parse_args() -> Result<Option<Args>, String> {
    let mut format = Format::Human;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                let value = args.next().ok_or("--format requires a value")?;
                format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root requires a path")?);
            }
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{:<24} {}", rule.name(), rule.description());
                }
                return Ok(None);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(Args { format, root }))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("autoscale-lint: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = match autoscale_lint::analyze_workspace(&args.root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("autoscale-lint: I/O error: {err}");
            return ExitCode::from(2);
        }
    };
    match args.format {
        Format::Human => print!("{}", report.render_human()),
        Format::Json => print!("{}", report.render_json()),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
