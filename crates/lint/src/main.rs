//! `autoscale-lint` — the workspace's determinism & robustness gate.
//!
//! ```text
//! cargo run -p autoscale-lint                    # human output, exit 1 on findings
//! cargo run -p autoscale-lint -- --format json   # stable JSON (the baseline format)
//! cargo run -p autoscale-lint -- --list-rules    # what the rules check
//! cargo run -p autoscale-lint -- --check-baseline results/lint_baseline.json
//! cargo run -p autoscale-lint -- --write-baseline
//! cargo run -p autoscale-lint -- --explain tainted-digest
//! cargo run -p autoscale-lint -- --graph-out target/callgraph.dot
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use autoscale_lint::report::parse_baseline;
use autoscale_lint::rules::Rule;

/// Output formats.
enum Format {
    Human,
    Json,
}

/// Where the baseline lives unless a path is given explicitly.
const DEFAULT_BASELINE: &str = "results/lint_baseline.json";

struct Args {
    format: Format,
    root: PathBuf,
    /// Compare against this committed baseline: fail only on findings
    /// it does not list, and report the ones it lists that are gone.
    check_baseline: Option<PathBuf>,
    /// Write the run's JSON report to this path as the new baseline.
    write_baseline: Option<PathBuf>,
    /// Always write the JSON report here too (CI artifact on failure).
    report_out: Option<PathBuf>,
    /// Dump the workspace call graph as Graphviz DOT to this path.
    graph_out: Option<PathBuf>,
    /// Keep per-pass wall-clock timings in the report output.
    timings: bool,
}

const USAGE: &str = "\
autoscale-lint: determinism & robustness static analysis for this workspace

USAGE:
    autoscale-lint [--format human|json] [--root PATH] [--list-rules]
                   [--explain RULE|all] [--check-baseline [PATH]]
                   [--write-baseline [PATH]] [--report-out PATH]
                   [--graph-out PATH] [--timings]

OPTIONS:
    --format human|json     Output format (default: human)
    --root PATH             Workspace root to analyze (default: .)
    --list-rules            Print every rule with its description and exit
    --explain RULE|all      Print the long-form documentation for one rule
                            (or every rule) and exit
    --check-baseline [PATH] Fail only on findings absent from the baseline
                            (default path: results/lint_baseline.json);
                            baseline entries no longer reported are listed
                            as fixed
    --write-baseline [PATH] Write this run's JSON report as the new
                            baseline (default path as above) and exit 0
    --report-out PATH       Additionally write the JSON report to PATH
                            (for CI artifacts)
    --graph-out PATH        Dump the workspace call graph as Graphviz DOT
                            (hot-path functions are highlighted)
    --timings               Keep per-pass wall-clock timings (lex, parse,
                            callgraph, taint, hotpath, streams, shared; ms)
                            in the report, so a blown CI budget names the
                            slow pass; always stripped from baselines
    -h, --help              Show this help

EXIT CODES:
    0  clean (no unsuppressed findings / none beyond the baseline)
    1  findings reported
    2  usage or I/O error

Suppress a single finding with `// lint:allow(<rule>): <justification>`
on the offending line or standing alone directly above it (a standalone
annotation covers the full statement that starts on the next line).
`// lint:hot-exempt(<why>)` waives both hot-path rules at once;
`// lint:draws-exempt(<why>)` waives the three RNG stream rules at once;
`// lint:taint-source(<why>)` marks a statement as a taint source.";

/// Consumes an optional path value for a flag: the next argument if it
/// exists and is not itself a flag, the default otherwise.
fn optional_path(argv: &[String], i: &mut usize) -> PathBuf {
    match argv.get(*i + 1) {
        Some(next) if !next.starts_with('-') => {
            *i += 1;
            PathBuf::from(next)
        }
        _ => PathBuf::from(DEFAULT_BASELINE),
    }
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut args = Args {
        format: Format::Human,
        root: PathBuf::from("."),
        check_baseline: None,
        write_baseline: None,
        report_out: None,
        graph_out: None,
        timings: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--format" => {
                i += 1;
                let value = argv.get(i).ok_or("--format requires a value")?;
                args.format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--root" => {
                i += 1;
                args.root = PathBuf::from(argv.get(i).ok_or("--root requires a path")?);
            }
            "--check-baseline" => {
                args.check_baseline = Some(optional_path(argv, &mut i));
            }
            "--write-baseline" => {
                args.write_baseline = Some(optional_path(argv, &mut i));
            }
            "--report-out" => {
                i += 1;
                args.report_out = Some(PathBuf::from(
                    argv.get(i).ok_or("--report-out requires a path")?,
                ));
            }
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{:<24} {}", rule.name(), rule.description());
                }
                return Ok(None);
            }
            "--explain" => {
                i += 1;
                let value = argv
                    .get(i)
                    .ok_or("--explain requires a rule name or `all`")?;
                if value == "all" {
                    for (k, rule) in Rule::ALL.into_iter().enumerate() {
                        if k > 0 {
                            println!("\n---\n");
                        }
                        println!("{}", autoscale_lint::explain::explain(rule));
                    }
                } else {
                    let rule = Rule::from_name(value)
                        .ok_or_else(|| format!("unknown rule `{value}` (try --list-rules)"))?;
                    println!("{}", autoscale_lint::explain::explain(rule));
                }
                return Ok(None);
            }
            "--graph-out" => {
                i += 1;
                args.graph_out = Some(PathBuf::from(
                    argv.get(i).ok_or("--graph-out requires a path")?,
                ));
            }
            "--timings" => {
                args.timings = true;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if args.check_baseline.is_some() && args.write_baseline.is_some() {
        return Err("--check-baseline and --write-baseline are mutually exclusive".to_string());
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("autoscale-lint: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let analysis = match autoscale_lint::analyze_workspace_full(&args.root) {
        Ok(analysis) => analysis,
        Err(err) => {
            eprintln!("autoscale-lint: I/O error: {err}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.graph_out {
        let dot = analysis.graph.render_dot(&analysis.files, &analysis.hot);
        if let Err(err) = write_report(path, &dot) {
            eprintln!("autoscale-lint: cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    let mut report = analysis.report;
    if !args.timings {
        report.timings = None;
    }
    if let Some(path) = &args.report_out {
        if let Err(err) = write_report(path, &report.render_json()) {
            eprintln!("autoscale-lint: cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &args.write_baseline {
        // Baselines must stay byte-stable run to run: timings never
        // belong in one, even under --timings.
        let mut baseline = report.clone();
        baseline.timings = None;
        let target = args.root.join(path);
        if let Err(err) = write_report(&target, &baseline.render_json()) {
            eprintln!("autoscale-lint: cannot write {}: {err}", target.display());
            return ExitCode::from(2);
        }
        println!(
            "autoscale-lint: baseline written to {} ({} finding{})",
            path.display(),
            report.findings.len(),
            if report.findings.len() == 1 { "" } else { "s" },
        );
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &args.check_baseline {
        return check_against_baseline(&args, path, &report);
    }
    match args.format {
        Format::Human => print!("{}", report.render_human()),
        Format::Json => print!("{}", report.render_json()),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `--check-baseline` mode: new findings fail, fixed ones inform.
fn check_against_baseline(
    args: &Args,
    path: &std::path::Path,
    report: &autoscale_lint::Report,
) -> ExitCode {
    let target = args.root.join(path);
    let text = match std::fs::read_to_string(&target) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("autoscale-lint: cannot read {}: {err}", target.display());
            return ExitCode::from(2);
        }
    };
    let baseline = match parse_baseline(&text) {
        Ok(entries) => entries,
        Err(message) => {
            eprintln!(
                "autoscale-lint: bad baseline {}: {message}",
                target.display()
            );
            return ExitCode::from(2);
        }
    };
    let diff = report.against_baseline(&baseline);
    for f in &diff.new {
        println!(
            "{}:{}: [{}] {} (new)",
            f.file,
            f.line,
            f.rule.name(),
            f.message
        );
    }
    for e in &diff.fixed {
        println!(
            "{}:{}: [{}] fixed — regenerate the baseline",
            e.file, e.line, e.rule
        );
    }
    println!(
        "autoscale-lint: {} new, {} fixed vs baseline {} ({} finding{} total, {} files)",
        diff.new.len(),
        diff.fixed.len(),
        path.display(),
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.files_scanned,
    );
    if diff.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Writes `contents` to `path`, creating parent directories.
fn write_report(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}
