//! Shared-state concurrency analysis: process-global mutable state,
//! interior mutability on the serve path, lock-order cycles, and
//! relaxed atomics feeding digested state.
//!
//! The fleet layer's determinism story is that shards share **nothing
//! mutable**: `run_cells` hands each worker disjoint cell indices and
//! every session owns its own RNGs and Q-state. That invariant decays
//! one `static` or one `Arc<Mutex<…>>` at a time, and each one makes
//! shard interleaving observable — exactly the class of bug the
//! digest tests detect but cannot localize.
//!
//! ## What fires
//!
//! * [`crate::rules::Rule::SharedMutableHotState`] —
//!   * a `static mut`, or a `static` whose type is interior-mutable
//!     (`Mutex`, `RwLock`, `RefCell`, `Cell`, `UnsafeCell`, `OnceLock`,
//!     `LazyLock`, `OnceCell`, `Atomic*`), in non-test lib/bin/bench
//!     code;
//!   * a mention of an interior-mutability type (or a use of one of
//!     the statics above) inside a function reachable from a serve
//!     shard entry point (`serve*`, `DeviceSession::run*`,
//!     `DecisionKernel` impls, `decide*`), reported with the caller
//!     witness chain;
//!   * a non-`SeqCst` atomic ordering (`Relaxed`/`Acquire`/`Release`/
//!     `AcqRel`) inside a function that also touches digested or
//!     serialized state — cross-thread visibility of digest inputs
//!     must not depend on platform memory-order.
//! * [`crate::rules::Rule::LockOrderCycle`] — the pass records every
//!   `.lock()` (and `.read()`/`.write()` on receivers declared as
//!   `RwLock`s), builds a lock-acquisition-order graph (intra-function
//!   order, plus edges into locks acquired by callees while a lock is
//!   held), and flags every cycle: two shards interleaving opposite
//!   acquisition orders can deadlock.
//!
//! ## Soundness caveats
//!
//! Lock receivers are identified by identifier name, not by object —
//! two different mutexes bound to the same local name alias in the
//! order graph, and guard drops are invisible, so "held while
//! acquiring" is an over-approximation of scopes. Both err toward
//! reporting; waive deliberate designs with
//! `lint:allow(lock-order-cycle)` / `lint:allow(shared-mutable-hot-state)`
//! and a justification.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, FnDef};
use crate::context::{FileClass, FileContext};
use crate::lexer::{LexedFile, Token, TokenKind};
use crate::rules::{Finding, Rule};

/// What the shared-state pass produced.
#[derive(Debug, Clone, Default)]
pub struct SharedOutcome {
    /// Findings, unfiltered by suppressions (the caller filters).
    pub findings: Vec<Finding>,
    /// Lock acquisition sites seen workspace-wide.
    pub lock_sites: usize,
}

/// Type names whose values are interior-mutable (shared-write capable).
const INTERIOR_MUTABLE: [&str; 8] = [
    "Mutex",
    "RwLock",
    "RefCell",
    "UnsafeCell",
    "OnceLock",
    "LazyLock",
    "OnceCell",
    "Cell",
];

/// Non-`SeqCst` atomic ordering variants.
const RELAXED_ORDERINGS: [&str; 4] = ["Relaxed", "Acquire", "Release", "AcqRel"];

/// Runs the shared-state analysis over the whole workspace.
pub fn analyze(
    files: &[(String, LexedFile)],
    contexts: &[FileContext],
    graph: &CallGraph,
) -> SharedOutcome {
    let mut findings = Vec::new();

    // Pass A: static declarations (and the names of the mutable ones).
    let mut mutable_statics: BTreeSet<String> = BTreeSet::new();
    for (i, (path, lexed)) in files.iter().enumerate() {
        check_statics(
            path,
            lexed,
            &contexts[i],
            &mut mutable_statics,
            &mut findings,
        );
    }

    // Pass B: serve-path reachability with caller witnesses.
    let n = graph.defs.len();
    let entries: Vec<usize> = graph
        .defs
        .iter()
        .enumerate()
        .filter(|(_, d)| !d.in_test && d.class == FileClass::Lib && is_serve_entry(d))
        .map(|(id, _)| id)
        .collect();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut reachable = vec![false; n];
    let mut stack = Vec::new();
    for &e in &entries {
        reachable[e] = true;
        stack.push(e);
    }
    while let Some(id) = stack.pop() {
        for &next in &graph.edges[id] {
            let d = &graph.defs[next];
            if !reachable[next] && !d.in_test && d.class == FileClass::Lib {
                reachable[next] = true;
                parent[next] = Some(id);
                stack.push(next);
            }
        }
    }
    // Nested fn spans per file, so an outer body scan skips inner items
    // (they report through their own def when reachable).
    let mut nested_by_file: Vec<Vec<(usize, usize)>> = vec![Vec::new(); files.len()];
    for d in &graph.defs {
        nested_by_file[d.file].push((d.start, d.close));
    }
    for (id, def) in graph.defs.iter().enumerate() {
        if !reachable[id] {
            continue;
        }
        let via = witness_path(graph, &parent, id);
        check_reachable_body(
            def,
            files,
            &nested_by_file[def.file],
            &mutable_statics,
            &via,
            &mut findings,
        );
    }

    // Pass C: relaxed atomic orderings near digested/serialized state.
    for (id, def) in graph.defs.iter().enumerate() {
        let _ = id;
        check_orderings(def, files, &mut findings);
    }

    // Pass D: the lock-acquisition-order graph and its cycles.
    let lock_sites = check_lock_order(files, graph, &mut findings);

    SharedOutcome {
        findings,
        lock_sites,
    }
}

/// Whether a def is a serve shard entry point.
fn is_serve_entry(d: &FnDef) -> bool {
    let owner = d.owner.as_deref().unwrap_or("");
    let trait_name = d.trait_name.as_deref().unwrap_or("");
    d.name.starts_with("serve")
        || owner == "DecisionKernel"
        || trait_name == "DecisionKernel"
        || d.name.starts_with("decide")
        || (owner == "DeviceSession" && d.name.starts_with("run"))
}

/// `entry → … → def` caller chain from the BFS parent links.
fn witness_path(graph: &CallGraph, parent: &[Option<usize>], id: usize) -> String {
    let mut chain = vec![id];
    let mut at = id;
    while let Some(p) = parent[at] {
        chain.push(p);
        at = p;
        if chain.len() >= 6 {
            break;
        }
    }
    chain.reverse();
    chain
        .iter()
        .map(|&d| label(graph, d))
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// `Owner::name` label for a def.
fn label(graph: &CallGraph, id: usize) -> String {
    let d = &graph.defs[id];
    match &d.owner {
        Some(owner) => format!("{owner}::{}", d.name),
        None => d.name.clone(),
    }
}

/// Flags `static mut` and interior-mutable `static` declarations, and
/// records their names for the reachability pass.
fn check_statics(
    path: &str,
    lexed: &LexedFile,
    ctx: &FileContext,
    names: &mut BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    if !matches!(
        ctx.class,
        FileClass::Lib | FileClass::Bin | FileClass::Bench
    ) {
        return;
    }
    let tokens = &lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if ctx.in_test[i] || !t.is_ident("static") {
            continue;
        }
        let is_mut = tokens.get(i + 1).is_some_and(|n| n.is_ident("mut"));
        let name_at = if is_mut { i + 2 } else { i + 1 };
        let Some(name) = tokens.get(name_at).filter(|n| n.kind == TokenKind::Ident) else {
            continue;
        };
        if is_mut {
            names.insert(name.text.clone());
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: Rule::SharedMutableHotState,
                message: format!(
                    "`static mut {}` is process-global mutable state; globals make shard runs \
                     order-dependent — scope the state per shard or waive with \
                     lint:allow(shared-mutable-hot-state): <why>",
                    name.text
                ),
            });
            continue;
        }
        // `static NAME: <type> = …` — scan the type span for
        // interior-mutable names.
        if !tokens.get(name_at + 1).is_some_and(|n| n.is_punct(':')) {
            continue;
        }
        let type_end = static_type_end(tokens, name_at + 2);
        let interior = tokens[name_at + 2..type_end].iter().find_map(|tt| {
            if tt.kind != TokenKind::Ident {
                return None;
            }
            if INTERIOR_MUTABLE.contains(&tt.text.as_str()) || tt.text.starts_with("Atomic") {
                Some(tt.text.clone())
            } else {
                None
            }
        });
        if let Some(what) = interior {
            names.insert(name.text.clone());
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: Rule::SharedMutableHotState,
                message: format!(
                    "`static {}: …{what}…` is process-global interior-mutable state; globals \
                     make shard runs order-dependent — scope the state per shard or waive with \
                     lint:allow(shared-mutable-hot-state): <why>",
                    name.text
                ),
            });
        }
    }
}

/// End of a static's type annotation: the `=` or `;` at depth 0.
fn static_type_end(tokens: &[Token], from: usize) -> usize {
    let mut depth = 0i32;
    for (k, token) in tokens.iter().enumerate().skip(from) {
        if let TokenKind::Punct(c) = token.kind {
            match c {
                '(' | '[' | '{' | '<' => depth += 1,
                ')' | ']' | '}' | '>' => depth -= 1,
                '=' | ';' if depth <= 0 => return k,
                _ => {}
            }
        }
    }
    tokens.len()
}

/// Flags interior-mutability mentions and mutable-static uses inside a
/// serve-reachable body.
fn check_reachable_body(
    def: &FnDef,
    files: &[(String, LexedFile)],
    nested: &[(usize, usize)],
    mutable_statics: &BTreeSet<String>,
    via: &str,
    out: &mut Vec<Finding>,
) {
    let tokens = &files[def.file].1.tokens;
    let path = files[def.file].0.as_str();
    let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
    let mut k = def.open + 1;
    while k < def.close {
        if let Some(&(_, close)) = nested.iter().find(|&&(s, c)| s == k && c < def.close) {
            k = close + 1;
            continue;
        }
        let t = &tokens[k];
        if t.kind != TokenKind::Ident {
            k += 1;
            continue;
        }
        let name = t.text.as_str();
        // `Cell` must be qualified (`Cell::new` / `cell::Cell`): the
        // workspace has its own zero-interior-mutability `Cell` type in
        // `parallel.rs` that shares the bare name.
        let interior = (INTERIOR_MUTABLE.contains(&name) && name != "Cell")
            || name.starts_with("Atomic")
            || (name == "Cell" && qualified_cell(tokens, k));
        let static_use = mutable_statics.contains(name);
        if (interior || static_use) && seen.insert((t.line, t.text.clone())) {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: Rule::SharedMutableHotState,
                message: format!(
                    "`{}` is shared mutable state on the serve path (via {via}); shard \
                     determinism depends on per-shard isolation — restructure, or waive with \
                     lint:allow(shared-mutable-hot-state): <why>",
                    t.text
                ),
            });
        }
        k += 1;
    }
}

/// `Cell :: …` or `cell :: Cell` — the std `Cell`, not the workspace's.
fn qualified_cell(tokens: &[Token], k: usize) -> bool {
    let followed = tokens.get(k + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(k + 2).is_some_and(|t| t.is_punct(':'));
    let preceded = k >= 3
        && tokens[k - 1].is_punct(':')
        && tokens[k - 2].is_punct(':')
        && tokens[k - 3].is_ident("cell");
    followed || preceded
}

/// Flags non-`SeqCst` atomic orderings inside defs that also touch
/// digested or serialized state.
fn check_orderings(def: &FnDef, files: &[(String, LexedFile)], out: &mut Vec<Finding>) {
    if def.in_test || !matches!(def.class, FileClass::Lib | FileClass::Bin) {
        return;
    }
    let tokens = &files[def.file].1.tokens;
    let path = files[def.file].0.as_str();
    let span = &tokens[def.start..=def.close];
    let sensitive = span.iter().any(|t| {
        t.kind == TokenKind::Ident && crate::rules::SENSITIVE_IDENTS.contains(&t.text.as_str())
    });
    if !sensitive {
        return;
    }
    for (k, t) in span.iter().enumerate() {
        let ordering = t.is_ident("Ordering")
            && span.get(k + 1).is_some_and(|n| n.is_punct(':'))
            && span.get(k + 2).is_some_and(|n| n.is_punct(':'))
            && span
                .get(k + 3)
                .is_some_and(|n| RELAXED_ORDERINGS.contains(&n.text.as_str()));
        if ordering {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: Rule::SharedMutableHotState,
                message: format!(
                    "non-SeqCst atomic ordering `Ordering::{}` in `{}`, which touches \
                     digested/serialized state; digest inputs must not depend on platform \
                     memory-order — use SeqCst or waive with \
                     lint:allow(shared-mutable-hot-state): <why>",
                    span[k + 3].text,
                    def.name
                ),
            });
        }
    }
}

/// One lock acquisition inside a def body.
struct Acquisition {
    /// The receiver ident (`state` in `state.lock()`).
    name: String,
    /// Token index of the method name.
    at: usize,
    /// 1-based line.
    line: u32,
}

/// Builds the lock-order graph and reports its cycles. Returns the
/// number of acquisition sites seen.
fn check_lock_order(
    files: &[(String, LexedFile)],
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) -> usize {
    // Receivers declared as RwLocks (`name: RwLock<…>` / `name = RwLock::new`),
    // so bare `.read()`/`.write()` on unrelated types stay silent.
    let mut rwlock_names: BTreeSet<String> = BTreeSet::new();
    for (_, lexed) in files {
        for (k, t) in lexed.tokens.iter().enumerate() {
            if t.is_ident("RwLock") && k >= 2 {
                let sep = &lexed.tokens[k - 1];
                if (sep.is_punct(':') || sep.is_punct('='))
                    && lexed.tokens[k - 2].kind == TokenKind::Ident
                {
                    rwlock_names.insert(lexed.tokens[k - 2].text.clone());
                }
            }
        }
    }

    // Per-def acquisition lists, in body order.
    let n = graph.defs.len();
    let mut acquisitions: Vec<Vec<Acquisition>> = Vec::with_capacity(n);
    let mut lock_sites = 0usize;
    for def in &graph.defs {
        let mut list = Vec::new();
        if !def.in_test && matches!(def.class, FileClass::Lib | FileClass::Bin) {
            let tokens = &files[def.file].1.tokens;
            for k in def.open + 1..def.close {
                let t = &tokens[k];
                if t.kind != TokenKind::Ident
                    || !tokens[k - 1].is_punct('.')
                    || !tokens.get(k + 1).is_some_and(|nt| nt.is_punct('('))
                {
                    continue;
                }
                let is_lock = t.text == "lock"
                    || ((t.text == "read" || t.text == "write")
                        && k >= 2
                        && rwlock_names.contains(&tokens[k - 2].text));
                if !is_lock {
                    continue;
                }
                // Receiver must be a simple ident: `state.lock()`, not
                // `stdout().lock()` — expression receivers have no
                // stable name for the order graph.
                if k < 2 || tokens[k - 2].kind != TokenKind::Ident {
                    continue;
                }
                lock_sites += 1;
                list.push(Acquisition {
                    name: tokens[k - 2].text.clone(),
                    at: k,
                    line: t.line,
                });
            }
        }
        acquisitions.push(list);
    }

    // Transitive lock sets per def (bounded fixpoint over call edges).
    let mut lock_sets: Vec<BTreeSet<String>> = acquisitions
        .iter()
        .map(|list| list.iter().map(|a| a.name.clone()).collect())
        .collect();
    for _ in 0..64 {
        let mut changed = false;
        for id in 0..n {
            let mut add: Vec<String> = Vec::new();
            for &callee in &graph.edges[id] {
                for name in &lock_sets[callee] {
                    if !lock_sets[id].contains(name) {
                        add.push(name.clone());
                    }
                }
            }
            for name in add {
                lock_sets[id].insert(name);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Order edges: within a def, every earlier acquisition precedes
    // every later one; a call made after an acquisition orders the held
    // lock before everything the callee (transitively) acquires.
    let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut edge_site: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    let mut add_edge = |from: &str, to: &str, file: &str, line: u32| {
        if from == to {
            return;
        }
        edges
            .entry(from.to_string())
            .or_default()
            .insert(to.to_string());
        edge_site
            .entry((from.to_string(), to.to_string()))
            .or_insert((file.to_string(), line));
    };
    for (id, list) in acquisitions.iter().enumerate() {
        let def = &graph.defs[id];
        let path = files[def.file].0.as_str();
        for (p, first) in list.iter().enumerate() {
            for later in &list[p + 1..] {
                add_edge(&first.name, &later.name, path, later.line);
            }
            for call in graph.calls_of(id) {
                if call.at <= first.at {
                    continue;
                }
                for &callee in &call.resolved {
                    for name in &lock_sets[callee] {
                        add_edge(&first.name, name, path, call.line);
                    }
                }
            }
        }
    }

    // Cycle detection: DFS from each node; report each distinct cycle
    // once, normalized by rotating to its smallest member.
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&String> = edges.keys().collect();
    for &start in &nodes {
        let mut path_stack: Vec<&String> = vec![start];
        let mut iter_stack: Vec<std::collections::btree_set::Iter<String>> =
            vec![edges[start].iter()];
        while let Some(it) = iter_stack.last_mut() {
            let Some(next) = it.next() else {
                path_stack.pop();
                iter_stack.pop();
                continue;
            };
            if next == start {
                let cycle = normalize_cycle(&path_stack);
                if reported.insert(cycle.clone()) {
                    let (file, line) = edge_site
                        .get(&(cycle[0].clone(), cycle[1 % cycle.len()].clone()))
                        .cloned()
                        .unwrap_or_else(|| (files[0].0.clone(), 1));
                    let mut loop_desc = cycle.join(" -> ");
                    loop_desc.push_str(" -> ");
                    loop_desc.push_str(&cycle[0]);
                    out.push(Finding {
                        file,
                        line,
                        rule: Rule::LockOrderCycle,
                        message: format!(
                            "lock acquisition order cycle `{loop_desc}`; two shards interleaving \
                             opposite orders can deadlock — impose one global acquisition order \
                             or waive with lint:allow(lock-order-cycle): <why>"
                        ),
                    });
                }
                continue;
            }
            if path_stack.contains(&next) {
                continue; // a cycle not through `start`; found from its own root
            }
            if let Some(outgoing) = edges.get(next) {
                path_stack.push(next);
                iter_stack.push(outgoing.iter());
            }
        }
    }
    lock_sites
}

/// Rotates a cycle so its lexicographically-smallest lock comes first.
fn normalize_cycle(path: &[&String]) -> Vec<String> {
    let min_at = path
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.as_str())
        .map(|(i, _)| i)
        .unwrap_or(0);
    path[min_at..]
        .iter()
        .chain(path[..min_at].iter())
        .map(|s| s.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::classify;

    const LIB: &str = "crates/demo/src/lib.rs";

    fn run(path: &str, src: &str) -> SharedOutcome {
        let files = vec![(path.to_string(), crate::lexer::lex(src))];
        let contexts: Vec<FileContext> = files
            .iter()
            .map(|(p, l)| FileContext::build(classify(p), l))
            .collect();
        let graph = CallGraph::build(&files, &contexts);
        analyze(&files, &contexts, &graph)
    }

    fn rules_hit(out: &SharedOutcome) -> Vec<(u32, &'static str)> {
        out.findings
            .iter()
            .map(|f| (f.line, f.rule.name()))
            .collect()
    }

    #[test]
    fn static_mut_and_atomic_statics_are_flagged() {
        let src = "static mut COUNTER: u64 = 0;\n\
                   static HITS: AtomicU64 = AtomicU64::new(0);\n\
                   static NAME: &str = \"fine\";\n";
        let out = run(LIB, src);
        assert_eq!(
            rules_hit(&out),
            vec![
                (1, "shared-mutable-hot-state"),
                (2, "shared-mutable-hot-state")
            ]
        );
    }

    #[test]
    fn interior_mutability_on_the_serve_path_has_a_witness() {
        let src = "pub fn serve_fleet() -> u64 { helper() }\n\
                   fn helper() -> u64 { let m = Mutex::new(1u64); 1 }\n";
        let out = run(LIB, src);
        assert_eq!(rules_hit(&out), vec![(2, "shared-mutable-hot-state")]);
        assert!(
            out.findings[0].message.contains("serve_fleet -> helper"),
            "{}",
            out.findings[0].message
        );
    }

    #[test]
    fn interior_mutability_off_the_serve_path_is_not_reported() {
        let src = "pub fn setup() -> u64 { let m = Mutex::new(1u64); 1 }\n";
        assert!(rules_hit(&run(LIB, src)).is_empty());
    }

    #[test]
    fn a_mutable_static_used_under_a_decide_path_is_caught() {
        let src = "static mut SAB: u64 = 0;\n\
                   fn bump() -> u64 { unsafe { SAB += 1; SAB } }\n\
                   pub fn decide_probe() -> u64 { bump() }\n";
        let out = run(LIB, src);
        let usage = out
            .findings
            .iter()
            .find(|f| f.line == 2)
            .expect("usage finding");
        assert!(usage.message.contains("decide_probe -> bump"));
    }

    #[test]
    fn the_workspace_bare_cell_type_is_not_interior_mutability() {
        // `parallel.rs` defines its own `Cell<'a, T>` work descriptor;
        // only qualified `Cell::new` / `cell::Cell` mean `std::cell::Cell`.
        let src = "pub fn serve_cells(cells: &[Cell<u64>]) -> usize { cells.len() }\n\
                   pub fn serve_std() -> u32 { let c = Cell::new(0u32); c.get() }\n";
        let out = run(LIB, src);
        assert_eq!(rules_hit(&out), vec![(2, "shared-mutable-hot-state")]);
    }

    #[test]
    fn relaxed_orderings_near_digests_are_flagged() {
        let src = "fn fold(digest: u64, hits: &AtomicU64) -> u64 {\n\
                   digest ^ hits.fetch_add(1, Ordering::Relaxed)\n\
                   }\n";
        let out = run(LIB, src);
        assert!(
            rules_hit(&out).contains(&(2, "shared-mutable-hot-state")),
            "{:?}",
            out.findings
        );
        let src_clean = "fn count(hits: &AtomicU64) -> u64 {\n\
                   hits.fetch_add(1, Ordering::Relaxed)\n\
                   }\n";
        let clean = run(LIB, src_clean);
        assert!(
            !clean
                .findings
                .iter()
                .any(|f| f.message.contains("Ordering")),
            "{:?}",
            clean.findings
        );
    }

    #[test]
    fn opposite_lock_orders_form_a_cycle() {
        let src = "fn serve_ab(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {\n\
                   let x = a.lock().unwrap_or_else(|e| e.into_inner());\n\
                   let y = b.lock().unwrap_or_else(|e| e.into_inner());\n\
                   *x + *y\n}\n\
                   fn serve_ba(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {\n\
                   let y = b.lock().unwrap_or_else(|e| e.into_inner());\n\
                   let x = a.lock().unwrap_or_else(|e| e.into_inner());\n\
                   *x + *y\n}\n";
        let out = run(LIB, src);
        assert!(
            out.findings.iter().any(|f| f.rule == Rule::LockOrderCycle),
            "{:?}",
            out.findings
        );
        assert_eq!(out.lock_sites, 4);
    }

    #[test]
    fn consistent_lock_orders_are_cycle_free() {
        let src = "fn first(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {\n\
                   let x = a.lock().unwrap_or_else(|e| e.into_inner());\n\
                   let y = b.lock().unwrap_or_else(|e| e.into_inner());\n\
                   *x + *y\n}\n\
                   fn second(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 { first(a, b) }\n";
        let out = run(LIB, src);
        assert!(
            !out.findings.iter().any(|f| f.rule == Rule::LockOrderCycle),
            "{:?}",
            out.findings
        );
    }

    #[test]
    fn a_cycle_through_a_callee_is_found() {
        let src = "fn serve_outer(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {\n\
                   let x = a.lock().unwrap_or_else(|e| e.into_inner());\n\
                   inner(b)\n}\n\
                   fn inner(b: &Mutex<u64>) -> u64 {\n\
                   let y = b.lock().unwrap_or_else(|e| e.into_inner());\n\
                   *y\n}\n\
                   fn serve_rev(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {\n\
                   let y = b.lock().unwrap_or_else(|e| e.into_inner());\n\
                   let x = a.lock().unwrap_or_else(|e| e.into_inner());\n\
                   *x + *y\n}\n";
        let out = run(LIB, src);
        assert!(
            out.findings.iter().any(|f| f.rule == Rule::LockOrderCycle),
            "{:?}",
            out.findings
        );
    }

    #[test]
    fn rwlock_read_write_count_only_on_declared_rwlocks() {
        let src = "struct S { table: RwLock<u64> }\n\
                   fn serve_s(s: &S, io: &FileLike) -> u64 {\n\
                   let g = table.read();\n\
                   let _ = io.read();\n\
                   1\n}\n";
        let out = run(LIB, src);
        // `table` is a declared RwLock receiver; `io` is not.
        assert_eq!(out.lock_sites, 1);
    }

    #[test]
    fn bench_statics_are_flagged_but_test_statics_are_not() {
        let src = "static HITS: AtomicU64 = AtomicU64::new(0);\n";
        assert_eq!(
            rules_hit(&run("crates/bench/src/bin/b.rs", src)),
            vec![(1, "shared-mutable-hot-state")]
        );
        let test_src = "#[cfg(test)]\nmod t {\n static HITS: AtomicU64 = AtomicU64::new(0);\n}\n";
        assert!(rules_hit(&run(LIB, test_src)).is_empty());
    }
}
