//! A small hand-written Rust lexer — just enough syntax to run textual
//! rules safely.
//!
//! The analyzer's rules match identifier and punctuation sequences, so
//! the one job of this lexer is to make sure those matches never land
//! inside a string literal, a char literal, or a comment. It therefore
//! understands, precisely:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), which it captures as [`Comment`]s so suppression
//!   annotations can be read back out;
//! * string literals with escapes, byte strings, and raw strings with
//!   any number of `#` guards (`r"…"`, `r#"…"#`, `br##"…"##`);
//! * char and byte-char literals vs. lifetimes (`'a'` is a literal,
//!   `'a` is a lifetime);
//! * identifiers, numbers, and single-character punctuation.
//!
//! Everything else about Rust — types, macros, expressions — is left to
//! the rule engine, which works on the token stream with file-path
//! context.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `HashMap`, …).
    Ident,
    /// A numeric, string, char, byte, or raw-string literal.
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`.`, `!`, `:`, `{`, …).
    Punct(char),
}

/// One token of the source, with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token's text. String/char literals keep a placeholder (their
    /// contents are deliberately opaque to the rules); number literals
    /// keep their exact source text.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 0-based char offset the token starts at. Adjacency between
    /// consecutive punctuation tokens (`pos + 1 == next.pos`) is how
    /// the parser tells compound operators (`==`, `->`, `..`, `>>`)
    /// from coincidental neighbors (`a > -b`).
    pub pos: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether `next` starts at the very next char after this token —
    /// true for the halves of a compound operator like `::` or `>>`,
    /// false for `> >` written apart. Only meaningful for
    /// single-character punctuation tokens.
    pub fn is_joint(&self, next: &Token) -> bool {
        self.pos + 1 == next.pos
    }
}

/// One comment of the source (line or block), captured so suppression
/// annotations can be parsed from it.
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equal to `line` for line
    /// comments).
    pub end_line: u32,
    /// Whether the comment is the first non-whitespace on its line (a
    /// standalone comment, as opposed to a trailing one).
    pub owns_line: bool,
    /// The comment text, including its `//` or `/*` introducer.
    pub text: String,
}

/// The result of lexing one file: the code tokens and the comments,
/// each in source order.
#[derive(Debug, Clone, Default)]
pub struct LexedFile {
    /// Code tokens in source order; comments and literal contents are
    /// never part of this stream.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer<'a> {
    chars: &'a [char],
    pos: usize,
    line: u32,
    /// Whether only whitespace has been seen since the last newline.
    at_line_start: bool,
    out: LexedFile,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.at_line_start = true;
        }
        Some(c)
    }

    fn push_token(&mut self, kind: TokenKind, text: String, line: u32, pos: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            pos,
        });
    }

    /// Lexes a `//` comment (to end of line, newline not consumed).
    fn line_comment(&mut self, owns_line: bool) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            owns_line,
            text,
        });
    }

    /// Lexes a `/* … */` comment, honoring nesting.
    fn block_comment(&mut self, owns_line: bool) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '/' && self.peek(0) == Some('*') {
                text.push('*');
                self.bump();
                depth += 1;
            } else if c == '*' && self.peek(0) == Some('/') {
                text.push('/');
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            owns_line,
            text,
        });
    }

    /// Lexes a `"…"` string body; the opening quote is already consumed.
    fn quoted_string(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Lexes a raw string: `pos` is at the first `#` or the opening
    /// quote. Returns false if this is not actually a raw string (e.g.
    /// `r#foo`, a raw identifier).
    fn raw_string(&mut self) -> bool {
        let start = self.pos;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some('"') {
            self.pos = start;
            return false;
        }
        self.bump(); // opening quote
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'scan;
                    }
                }
                self.pos += hashes;
                break;
            }
        }
        true
    }

    /// Lexes a char literal or lifetime; `pos` is at the `'`.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let start = self.pos as u32;
        self.pos += 1; // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: skip to the closing quote.
                self.pos += 1; // backslash
                self.pos += 1; // escaped char (enough even for \u{…})
                while let Some(c) = self.peek(0) {
                    self.pos += 1;
                    if c == '\'' {
                        break;
                    }
                }
                self.push_token(TokenKind::Literal, "'…'".to_string(), line, start);
            }
            Some(c) if is_ident_start(c) => {
                // `'r#async` is a raw lifetime: strip the `r#` so the
                // token carries the escaped name and the stream stays
                // in sync (naively it would desync into 'r + # + ident).
                if c == 'r' && self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start)
                {
                    self.pos += 2;
                }
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    name.push(c);
                    self.pos += 1;
                }
                if self.peek(0) == Some('\'') {
                    self.pos += 1;
                    self.push_token(TokenKind::Literal, "'…'".to_string(), line, start);
                } else {
                    self.push_token(TokenKind::Lifetime, name, line, start);
                }
            }
            Some(_) => {
                // A non-identifier char literal like ' ' or '0'.
                self.pos += 1;
                if self.peek(0) == Some('\'') {
                    self.pos += 1;
                }
                self.push_token(TokenKind::Literal, "'…'".to_string(), line, start);
            }
            None => {}
        }
    }

    /// Lexes an identifier at `pos`, handling string-literal prefixes
    /// (`r"…"`, `b"…"`, `br#"…"#`, `b'…'`) and raw identifiers.
    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let start = self.pos as u32;
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            name.push(c);
            self.pos += 1;
        }
        match (name.as_str(), self.peek(0)) {
            ("r" | "br" | "rb", Some('"' | '#')) => {
                if self.raw_string() {
                    self.push_token(TokenKind::Literal, "\"…\"".to_string(), line, start);
                } else if name == "r"
                    && self.peek(0) == Some('#')
                    && self.peek(1).is_some_and(is_ident_start)
                {
                    // `r#type` — a raw identifier; lex it as the plain
                    // identifier it escapes, so rules see `type`.
                    self.pos += 1; // the '#'
                    let mut raw = String::new();
                    while let Some(c) = self.peek(0) {
                        if !is_ident_continue(c) {
                            break;
                        }
                        raw.push(c);
                        self.pos += 1;
                    }
                    self.push_token(TokenKind::Ident, raw, line, start);
                } else {
                    self.push_token(TokenKind::Ident, name, line, start);
                }
            }
            ("b", Some('"')) => {
                self.bump();
                self.quoted_string();
                self.push_token(TokenKind::Literal, "\"…\"".to_string(), line, start);
            }
            ("b", Some('\'')) => {
                self.char_or_lifetime();
            }
            _ => self.push_token(TokenKind::Ident, name, line, start),
        }
    }

    /// Appends a run of digit/identifier chars (digits, `_` separators,
    /// hex digits, exponent `e`, type suffixes like `f64`) to `text`.
    fn digit_run(&mut self, text: &mut String) {
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
    }

    /// Lexes a number literal, keeping its exact text: integers with
    /// radix prefixes and `_` separators, floats with a decimal point
    /// and/or signed exponent, and type suffixes (`1e9`, `1.5f64`,
    /// `0x1f`, `2.5E+3`, `1_000u64`).
    fn number(&mut self) {
        let line = self.line;
        let start = self.pos as u32;
        let mut text = String::new();
        self.digit_run(&mut text);
        // A decimal point (`1.5`) — but not the range in `1..5`.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.pos += 1;
            self.digit_run(&mut text);
        }
        // A signed exponent: `1e-9`, `2.5E+3`. The `e` itself was
        // consumed by the runs above; radix-prefixed literals (`0xee`)
        // never carry one.
        let radix_prefixed =
            text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b");
        if !radix_prefixed
            && (text.ends_with('e') || text.ends_with('E'))
            && matches!(self.peek(0), Some('+' | '-'))
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            text.push(self.peek(0).unwrap_or('+'));
            self.pos += 1;
            self.digit_run(&mut text);
        }
        self.push_token(TokenKind::Literal, text, line, start);
    }

    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('/') {
                let owns = self.at_line_start;
                self.at_line_start = false;
                self.line_comment(owns);
            } else if c == '/' && self.peek(1) == Some('*') {
                let owns = self.at_line_start;
                self.at_line_start = false;
                self.block_comment(owns);
            } else if c == '"' {
                let line = self.line;
                let start = self.pos as u32;
                self.at_line_start = false;
                self.bump();
                self.quoted_string();
                self.push_token(TokenKind::Literal, "\"…\"".to_string(), line, start);
            } else if c == '\'' {
                self.at_line_start = false;
                self.char_or_lifetime();
            } else if is_ident_start(c) {
                self.at_line_start = false;
                self.ident_or_prefixed_literal();
            } else if c.is_ascii_digit() {
                self.at_line_start = false;
                self.number();
            } else if c.is_whitespace() {
                self.bump();
            } else {
                let line = self.line;
                let start = self.pos as u32;
                self.at_line_start = false;
                self.pos += 1;
                self.push_token(TokenKind::Punct(c), c.to_string(), line, start);
            }
        }
        self.out
    }
}

/// Lexes one Rust source file into tokens and comments.
pub fn lex(source: &str) -> LexedFile {
    let chars: Vec<char> = source.chars().collect();
    Lexer {
        chars: &chars,
        pos: 0,
        line: 1,
        at_line_start: true,
        out: LexedFile::default(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // thread_rng in a comment
            /* Instant::now in /* a nested */ block */
            let s = "thread_rng() and \" quotes";
            let r = r#"Instant::now"#;
            call();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "thread_rng"));
        assert!(!ids.iter().any(|i| i == "Instant"));
        assert!(ids.iter().any(|i| i == "call"));
    }

    #[test]
    fn char_literals_and_lifetimes_are_distinguished() {
        let lexed = lex("fn f<'a>(c: char) { let x = 'y'; let z = '\\n'; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 1);
        assert_eq!(lifetimes[0].text, "a");
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(literals, 2);
    }

    #[test]
    fn byte_and_raw_strings_are_opaque() {
        let ids = idents(r##"let a = b"SystemTime"; let c = br#"unwrap"#; done();"##);
        assert!(!ids.iter().any(|i| i == "SystemTime"));
        assert!(!ids.iter().any(|i| i == "unwrap"));
        assert!(ids.iter().any(|i| i == "done"));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* c\nc */\nmarker();\n";
        let lexed = lex(src);
        let marker = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("marker"))
            .expect("marker token");
        assert_eq!(marker.line, 5);
    }

    #[test]
    fn comments_record_ownership_of_their_line() {
        let src = "x(); // trailing\n// standalone\ny();\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].owns_line);
        assert!(lexed.comments[1].owns_line);
    }

    #[test]
    fn punctuation_sequences_survive() {
        let lexed = lex("Instant::now()");
        let texts: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["Instant", ":", ":", "now", "(", ")"]);
    }

    #[test]
    fn raw_identifiers_lex_as_their_escaped_name() {
        let lexed = lex("let r#type = r#fn + other;");
        let texts: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "type", "=", "fn", "+", "other", ";"]);
        assert!(lexed.tokens.iter().all(|t| t.kind != TokenKind::Literal));
    }

    #[test]
    fn raw_lifetimes_lex_as_single_tokens() {
        // `'r#async` must not desync into 'r + # + async — a stray `#`
        // in the stream would shift every downstream token position.
        let lexed = lex("fn f<'r#async>(x: &'r#async str) -> &'r#async str { x }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "async"));
        assert!(!lexed.tokens.iter().any(|t| t.is_punct('#')));
    }

    #[test]
    fn deeply_nested_block_comments_terminate_correctly() {
        let src = "/* a /* b /* \" 'c' */ */ still comment */ after();";
        assert_eq!(idents(src), vec!["after"]);
        // An unbalanced inner opener swallows the rest of the file
        // rather than resurfacing mid-comment.
        let unterminated = "/* open /* never closed */ still_comment();";
        assert!(idents(unterminated).is_empty());
    }

    #[test]
    fn raw_strings_still_beat_raw_identifiers() {
        // `r#"…"#` is a raw string; `r#ident` is a raw identifier.
        let lexed = lex(r##"let a = r#"text"#; let b = r#match;"##);
        let literals: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(literals.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("match")));
    }

    #[test]
    fn float_literals_keep_their_exact_text() {
        let src = "a(1e9, 1.5f64, 2.5E+3, 1e-9, 1_000u64, 0x1f, 3.25)";
        let nums: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text)
            .collect();
        assert_eq!(
            nums,
            ["1e9", "1.5f64", "2.5E+3", "1e-9", "1_000u64", "0x1f", "3.25"]
        );
    }

    #[test]
    fn ranges_are_not_swallowed_by_float_lexing() {
        let texts: Vec<String> = lex("for i in 0..10 {}")
            .tokens
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, ["for", "i", "in", "0", ".", ".", "10", "{", "}"]);
    }

    #[test]
    fn hex_literals_do_not_grow_exponents() {
        // `0xee-1` is a subtraction, not a malformed exponent.
        let texts: Vec<String> = lex("0xee-1").tokens.into_iter().map(|t| t.text).collect();
        assert_eq!(texts, ["0xee", "-", "1"]);
    }

    #[test]
    fn adjacency_distinguishes_compound_operators() {
        let lexed = lex("a >> b; c > -d; Vec<Vec<u8>>");
        let gt: Vec<&Token> = lexed.tokens.iter().filter(|t| t.is_punct('>')).collect();
        assert_eq!(gt.len(), 5);
        // `>>` in the shift is joint …
        assert!(gt[0].is_joint(gt[1]));
        // … `> -` is not …
        let minus = lexed
            .tokens
            .iter()
            .find(|t| t.is_punct('-'))
            .expect("minus");
        assert!(!gt[2].is_joint(minus));
        // … and the generic close-close is joint too: only parsing
        // context, not spacing, separates it from a shift.
        assert!(gt[3].is_joint(gt[4]));
    }

    #[test]
    fn lifetime_vs_char_literal_with_adjacent_generics() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'a'; let nl = '\\n'; }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 2);
    }
}
