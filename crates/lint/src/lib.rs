//! # autoscale-lint
//!
//! Determinism & robustness static analysis for the AutoScale
//! workspace — the "Analysis layer" of DESIGN.md.
//!
//! The workspace's load-bearing guarantee is that every sweep and every
//! serve fleet is **bit-identical for any thread/shard count**: all
//! randomness derives from explicit seeds ([`cell_seed`]-style mixing)
//! and all reports are pure functions of specs and seeds, fingerprinted
//! by FNV-1a trace digests. That invariant is easy to break silently —
//! one stray `Instant::now()` in a report path, one entropy-seeded RNG,
//! one `HashMap` iteration feeding a digest — and tests can miss all
//! three. This crate enforces the invariant mechanically, as a blocking
//! CI step.
//!
//! ## How it works
//!
//! 1. [`lexer`] tokenizes every workspace `.rs` file with a small
//!    hand-written lexer that correctly skips string literals, char
//!    literals, and nested block comments — so rules can never fire on
//!    text inside a string or a comment.
//! 2. [`context`] classifies each file by path (library, binary,
//!    example, test, bench) and marks `#[cfg(test)]` token regions and
//!    function-body spans.
//! 3. [`rules`] runs the token-pattern rules (see [`rules::Rule`]) and
//!    filters findings through per-line `// lint:allow(<rule>)`
//!    suppressions; [`parser`] adds the semantic units checker — a
//!    recursive-descent expression parser whose dimensional algebra
//!    ([`units`]) checks the workspace's suffix conventions
//!    (`latency_ms`, `busy_power_w`, …) against a workspace-wide
//!    signature index ([`sigindex`]).
//! 4. [`report`] renders the findings as terminal lines or stable JSON
//!    (`results/lint_baseline.json` is one such document).
//!
//! The crate is std-only and dependency-free on purpose: the analyzer
//! must keep working when anything else in the tree is broken, and it
//! must not be able to perturb what it measures.
//!
//! [`cell_seed`]: https://docs.rs/autoscale

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod sigindex;
pub mod units;
pub mod walk;

pub use report::Report;
pub use rules::{analyze_file, Finding, Rule};
pub use sigindex::SigIndex;

/// Analyzes every workspace source file under `root` and returns the
/// aggregated report.
///
/// Two passes: the first lexes every file and builds the workspace-wide
/// [`SigIndex`] (so call-site unit checks see every `fn` in the tree),
/// the second runs the rules per file against that index.
///
/// # Errors
///
/// Returns the first I/O error hit while walking or reading sources.
pub fn analyze_workspace(root: &std::path::Path) -> std::io::Result<Report> {
    let files = walk::workspace_sources(root)?;
    let files_scanned = files.len();
    let mut lexed_files = Vec::with_capacity(files.len());
    let mut sigs = SigIndex::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let lexed = lexer::lex(&source);
        sigs.add_file(&lexed);
        lexed_files.push((rel_str, lexed));
    }
    let mut findings = Vec::new();
    for (rel_str, lexed) in &lexed_files {
        findings.extend(rules::analyze_lexed(rel_str, lexed, &sigs));
    }
    Ok(Report::new(findings, files_scanned))
}
