//! # autoscale-lint
//!
//! Determinism & robustness static analysis for the AutoScale
//! workspace — the "Analysis layer" of DESIGN.md.
//!
//! The workspace's load-bearing guarantee is that every sweep and every
//! serve fleet is **bit-identical for any thread/shard count**: all
//! randomness derives from explicit seeds ([`cell_seed`]-style mixing)
//! and all reports are pure functions of specs and seeds, fingerprinted
//! by FNV-1a trace digests. That invariant is easy to break silently —
//! one stray `Instant::now()` in a report path, one entropy-seeded RNG,
//! one `HashMap` iteration feeding a digest — and tests can miss all
//! three. This crate enforces the invariant mechanically, as a blocking
//! CI step.
//!
//! ## How it works
//!
//! 1. [`lexer`] tokenizes every workspace `.rs` file with a small
//!    hand-written lexer that correctly skips string literals, char
//!    literals, and nested block comments — so rules can never fire on
//!    text inside a string or a comment.
//! 2. [`context`] classifies each file by path (library, binary,
//!    example, test, bench) and marks `#[cfg(test)]` token regions and
//!    function-body spans.
//! 3. [`rules`] runs the token-pattern rules (see [`rules::Rule`]) and
//!    filters findings through `// lint:allow(<rule>)` suppressions;
//!    [`parser`] adds the semantic units checker — a recursive-descent
//!    expression parser whose dimensional algebra ([`units`]) checks
//!    the workspace's suffix conventions (`latency_ms`,
//!    `busy_power_w`, …) against a workspace-wide signature index
//!    ([`sigindex`]).
//! 4. [`callgraph`] builds a conservative workspace call graph on top
//!    of the same token streams; [`taint`] runs forward determinism-
//!    taint dataflow over it (wall-clock/env/entropy sources → digest
//!    and report-field sinks) and [`hotpath`] flags allocation in
//!    functions reachable from the decision hot path. [`streams`]
//!    checks RNG stream discipline (seed derivation, draw-count
//!    interval analysis over per-request paths) and [`shared`] checks
//!    shared-state hygiene (global mutable state, serve-path interior
//!    mutability, lock-order cycles, relaxed atomics near digests).
//! 5. [`report`] renders the findings as terminal lines or stable JSON
//!    (`results/lint_baseline.json` is one such document).
//!
//! The crate is std-only and dependency-free on purpose: the analyzer
//! must keep working when anything else in the tree is broken, and it
//! must not be able to perturb what it measures.
//!
//! [`cell_seed`]: https://docs.rs/autoscale

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod context;
pub mod explain;
pub mod hotpath;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod shared;
pub mod sigindex;
pub mod streams;
pub mod taint;
pub mod units;
pub mod walk;

pub use report::{AnalysisStats, PassTimings, Report};
pub use rules::{analyze_file, Finding, Rule};
pub use sigindex::SigIndex;

use crate::context::{classify, FileContext};

/// A full workspace analysis: the report plus the artifacts behind it,
/// so callers (the CLI's `--graph-out`, tests) can inspect the graph.
#[derive(Debug)]
pub struct Analysis {
    /// Findings, suppressions, and coverage stats.
    pub report: Report,
    /// The workspace call graph the interprocedural passes ran on.
    pub graph: callgraph::CallGraph,
    /// Per-definition hot-path membership, indexed like `graph.defs`.
    pub hot: Vec<bool>,
    /// Workspace-relative paths, in the order the graph's `file`
    /// indices reference them.
    pub files: Vec<String>,
}

/// Runs the whole pipeline — per-file rules, signature index, call
/// graph, taint, hot-path — over in-memory `(path, source)` pairs.
///
/// This is the substitution point the sabotage tests use: read the real
/// workspace, swap one file's source for a doctored version, and assert
/// the launder is caught.
pub fn analyze_sources(sources: Vec<(String, String)>) -> Analysis {
    let mut timings = PassTimings::default();
    let t = pass_clock();
    let mut sigs = SigIndex::new();
    let mut files = Vec::with_capacity(sources.len());
    for (rel, source) in &sources {
        let lexed = lexer::lex(source);
        sigs.add_file(&lexed);
        files.push((rel.clone(), lexed));
    }
    let contexts: Vec<FileContext> = files
        .iter()
        .map(|(rel, lexed)| FileContext::build(classify(rel), lexed))
        .collect();
    timings.lex_ms = millis_between(t, pass_clock());

    let t = pass_clock();
    let graph = callgraph::CallGraph::build(&files, &contexts);
    timings.callgraph_ms = millis_between(t, pass_clock());
    let t = pass_clock();
    let tainted = taint::analyze(&files, &contexts, &graph);
    timings.taint_ms = millis_between(t, pass_clock());
    let t = pass_clock();
    let hot = hotpath::analyze(&files, &contexts, &graph);
    timings.hotpath_ms = millis_between(t, pass_clock());
    let t = pass_clock();
    let streamed = streams::analyze(&files, &contexts, &graph);
    timings.streams_ms = millis_between(t, pass_clock());
    let t = pass_clock();
    let shared_state = shared::analyze(&files, &contexts, &graph);
    timings.shared_ms = millis_between(t, pass_clock());

    // Global (interprocedural) findings, grouped by file so each file's
    // suppressions can waive them alongside the per-file rules.
    let mut global: Vec<Finding> = tainted.findings;
    global.extend(hot.findings);
    global.extend(streamed.findings);
    global.extend(shared_state.findings);

    let t = pass_clock();
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for (i, (rel, lexed)) in files.iter().enumerate() {
        let sup = rules::Suppressions::parse(&lexed.comments, &lexed.tokens);
        let mut raw = rules::per_file_findings(rel, lexed, &contexts[i], &sigs);
        raw.extend(global.iter().filter(|f| &f.file == rel).cloned());
        for f in raw {
            if sup.allows(f.line, f.rule) {
                suppressed.push(f);
            } else {
                findings.push(f);
            }
        }
        rules::push_unknown_rule_findings(rel, &sup, &mut findings);
    }
    timings.parse_ms = millis_between(t, pass_clock());

    let analysis = AnalysisStats {
        functions: graph.defs.len(),
        call_edges: graph.edge_count(),
        unresolved_calls: graph.unresolved_calls().count(),
        hot_functions: hot.hot.iter().filter(|&&h| h).count(),
        taint_returning: tainted.taint_returning.iter().filter(|&&t| t).count(),
        stream_checked: streamed.checked.iter().filter(|&&c| c).count(),
        lock_sites: shared_state.lock_sites,
    };
    let mut report = Report::with_details(findings, suppressed, files.len(), analysis);
    report.timings = Some(timings);
    Analysis {
        report,
        graph,
        hot: hot.hot,
        files: files.into_iter().map(|(rel, _)| rel).collect(),
    }
}

/// Reads the pass timer. Quarantines the analyzer's one wall-clock
/// read: timings are diagnostics for the CI budget, never folded into
/// findings, digests, or baselines.
fn pass_clock() -> std::time::Instant {
    // lint:allow(nondeterministic-time): pass timings are diagnostics, stripped from baselines
    std::time::Instant::now()
}

/// Elapsed milliseconds between two pass-clock reads.
fn millis_between(start: std::time::Instant, end: std::time::Instant) -> f64 {
    end.duration_since(start).as_secs_f64() * 1e3
}

/// Reads every workspace source file under `root` into memory as
/// `(workspace-relative path, source)` pairs, in walk order.
///
/// # Errors
///
/// Returns the first I/O error hit while walking or reading sources.
pub fn read_workspace_sources(root: &std::path::Path) -> std::io::Result<Vec<(String, String)>> {
    let files = walk::workspace_sources(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        sources.push((rel.to_string_lossy().replace('\\', "/"), source));
    }
    Ok(sources)
}

/// Analyzes every workspace source file under `root` and returns the
/// full [`Analysis`] (report + call graph).
///
/// # Errors
///
/// Returns the first I/O error hit while walking or reading sources.
pub fn analyze_workspace_full(root: &std::path::Path) -> std::io::Result<Analysis> {
    Ok(analyze_sources(read_workspace_sources(root)?))
}

/// Analyzes every workspace source file under `root` and returns the
/// aggregated report.
///
/// # Errors
///
/// Returns the first I/O error hit while walking or reading sources.
pub fn analyze_workspace(root: &std::path::Path) -> std::io::Result<Report> {
    Ok(analyze_workspace_full(root)?.report)
}
