//! Stream-discipline analysis: RNG seed derivation and draw-count
//! stability on per-request paths.
//!
//! The workspace's determinism contract has two halves the per-file
//! rules cannot see:
//!
//! 1. **Every RNG stream derives from the workspace seed discipline.**
//!    Sessions split their seed as `cell_seed(seed, 0/1/2)` and hand
//!    each sub-stream to `seeded_rng`/`StdRng::seed_from_u64`. A
//!    constructor fed a bare literal (`seed_from_u64(42)`) creates a
//!    stream no replay harness can re-derive —
//!    [`crate::rules::Rule::UnderivedRngStream`].
//! 2. **Per-request code consumes a branch-invariant number of
//!    draws.** The fault injector draws exactly
//!    `FAULT_DRAWS_PER_REQUEST` values per request (see
//!    `crates/sim/src/faults.rs`) so fault schedules are prefix-stable
//!    and policy-independent; a branch that draws on one arm but not
//!    the other silently shifts every later stream. The pass runs a
//!    per-function **draw-count interval analysis** over branchy
//!    control flow, sums callee intervals through the workspace call
//!    graph, and flags any function reachable from a per-request entry
//!    point whose branch arms consume unequal counts
//!    ([`crate::rules::Rule::DivergentRngDraws`]) or whose count
//!    depends on policy/Q-state
//!    ([`crate::rules::Rule::PolicyDependentDraws`]).
//!
//! ## Entry points
//!
//! * every method of `FaultInjector` (the per-request fault stream);
//! * every method of the `DecisionKernel` trait and its impls;
//! * every method of `ArrivalSampler` and `ChurnWindow` (the
//!   per-session traffic streams: fixed draws per arrival / per
//!   session keep open-loop schedules prefix-stable);
//! * any function whose name starts with `decide`.
//!
//! Reachability is restricted to non-test library code, like the
//! hot-path pass.
//!
//! ## Interval rules
//!
//! * a draw intrinsic (`.gen()`, `.gen_range(…)`, `.gen_bool(…)`,
//!   `.next_u32/u64/f64()`, `.fill_bytes(…)`) counts as exactly one
//!   draw event;
//! * sequencing adds intervals (saturating at a cap);
//! * `if`/`match` unions the arm intervals — and records a
//!   **divergence event** when the arms differ (a missing `else` is an
//!   implicit zero-draw arm);
//! * loops whose header or body draws widen to `[0, max]`: a widened
//!   interval is *not* itself a divergence event (a fixed-bound loop
//!   like the injector's per-link attempt loop stays clean), but it
//!   participates conservatively in any enclosing branch comparison;
//! * a call site contributes the union of its resolved callees'
//!   intervals; unresolved calls contribute nothing (std surface does
//!   not draw — the RNG intrinsics above are matched directly).
//!
//! ## Soundness caveats
//!
//! Draws inside closures passed to iterator adaptors are counted once,
//! not per element — hoist them into explicit loops if they matter.
//! Match-arm guards are attributed to their arm even though Rust
//! evaluates guards in pattern order. The fixpoint is bounded: a
//! recursive cycle that keeps growing is pinned to the full interval
//! rather than iterated to saturation.
//!
//! ## Waiving
//!
//! `// lint:draws-exempt(<why>)` (trailing, or standalone above the
//! branch) waives all three stream rules for the covered statement.
//! The epsilon-greedy draw protocol — one uniform draw per decision
//! plus one bounded integer draw on the exploration arm only — is the
//! sanctioned, digest-pinned example of a deliberately divergent
//! branch.

use std::collections::BTreeMap;

use crate::callgraph::{CallGraph, FnDef};
use crate::context::{FileClass, FileContext};
use crate::lexer::{LexedFile, Token, TokenKind};
use crate::rules::{Finding, Rule};

/// What the stream-discipline pass produced.
#[derive(Debug, Clone, Default)]
pub struct StreamOutcome {
    /// Findings, unfiltered by suppressions (the caller filters).
    pub findings: Vec<Finding>,
    /// Per-def: whether the function is reachable from a per-request
    /// stream entry point (and therefore draw-count checked).
    pub checked: Vec<bool>,
}

/// Saturation cap for draw counts: anything at or beyond this is "many".
const MAX_DRAWS: u32 = 1 << 16;

/// Fixpoint bound before a still-changing def is pinned to [`Interval::TOP`].
const MAX_ROUNDS: usize = 64;

/// How many times one def may change before being pinned (breaks
/// slow-growing recursion without iterating to saturation).
const MAX_CHANGES: u32 = 32;

/// A draw-count interval `[lo, hi]`, saturating at [`MAX_DRAWS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Fewest draws any path through the code consumes.
    pub lo: u32,
    /// Most draws any path consumes (saturating).
    pub hi: u32,
}

impl Interval {
    /// No draws on any path.
    pub const ZERO: Interval = Interval { lo: 0, hi: 0 };
    /// The full range — the analysis gave up counting.
    pub const TOP: Interval = Interval {
        lo: 0,
        hi: MAX_DRAWS,
    };

    /// Exactly `n` draws on every path.
    pub fn exact(n: u32) -> Interval {
        let n = n.min(MAX_DRAWS);
        Interval { lo: n, hi: n }
    }

    /// Sequential composition: both intervals are consumed.
    pub fn seq(self, other: Interval) -> Interval {
        Interval {
            lo: (self.lo + other.lo).min(MAX_DRAWS),
            hi: (self.hi + other.hi).min(MAX_DRAWS),
        }
    }

    /// Branch join: either interval may be consumed.
    pub fn union(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Human rendering: `2`, `0..1`, or `1..many`.
    pub fn render(self) -> String {
        if self.lo == self.hi {
            return self.lo.to_string();
        }
        if self.hi >= MAX_DRAWS {
            return format!("{}..many", self.lo);
        }
        format!("{}..{}", self.lo, self.hi)
    }
}

/// Method names that consume exactly one draw event from an RNG.
const DRAW_METHODS: [&str; 8] = [
    "gen",
    "gen_bool",
    "gen_range",
    "next_u32",
    "next_u64",
    "next_f64",
    "fill_bytes",
    "random",
];

/// Identifier fragments that mark a branch condition as policy/Q-state
/// dependent (matched case-insensitively as substrings).
const POLICY_IDENTS: [&str; 11] = [
    "epsilon", "policy", "greedy", "explor", "exploit", "argmax", "q_table", "qtable", "q_value",
    "agent", "action",
];

/// One branch whose arms consume unequal draw counts.
#[derive(Debug, Clone)]
struct Divergence {
    /// 1-based line of the `if`/`match` keyword (the waiver anchor).
    line: u32,
    /// `"if"` or `"match"`.
    construct: &'static str,
    /// The smallest arm interval.
    min_arm: Interval,
    /// The largest arm interval.
    max_arm: Interval,
    /// The policy ident the condition mentions, when it does.
    policy: Option<String>,
}

/// Runs the stream-discipline analysis over the whole workspace.
pub fn analyze(
    files: &[(String, LexedFile)],
    contexts: &[FileContext],
    graph: &CallGraph,
) -> StreamOutcome {
    let mut findings = Vec::new();
    for (i, (path, lexed)) in files.iter().enumerate() {
        check_underived(path, lexed, &contexts[i], &mut findings);
    }

    // Nested fn spans per file, so an outer body walk skips inner items.
    let mut nested_by_file: Vec<Vec<(usize, usize)>> = vec![Vec::new(); files.len()];
    for d in &graph.defs {
        nested_by_file[d.file].push((d.start, d.close));
    }

    // Bounded monotone fixpoint of per-def draw intervals.
    let n = graph.defs.len();
    let mut summaries = vec![Interval::ZERO; n];
    let mut changes = vec![0u32; n];
    for _round in 0..MAX_ROUNDS {
        let mut changed = false;
        for (id, def) in graph.defs.iter().enumerate() {
            if summaries[id] == Interval::TOP {
                continue;
            }
            let (next, _) = walk_def(id, files, graph, &summaries, &nested_by_file[def.file]);
            if next != summaries[id] {
                changes[id] += 1;
                summaries[id] = if changes[id] > MAX_CHANGES {
                    Interval::TOP
                } else {
                    next
                };
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Reachability from per-request entry points, with caller witnesses.
    let entries: Vec<usize> = graph
        .defs
        .iter()
        .enumerate()
        .filter(|(_, d)| !d.in_test && d.class == FileClass::Lib && is_entry(d))
        .map(|(id, _)| id)
        .collect();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut checked = vec![false; n];
    let mut stack = Vec::new();
    for &e in &entries {
        checked[e] = true;
        stack.push(e);
    }
    while let Some(id) = stack.pop() {
        for &next in &graph.edges[id] {
            let d = &graph.defs[next];
            if !checked[next] && !d.in_test && d.class == FileClass::Lib {
                checked[next] = true;
                parent[next] = Some(id);
                stack.push(next);
            }
        }
    }

    // Final event pass with converged summaries, checked defs only.
    for (id, def) in graph.defs.iter().enumerate() {
        if !checked[id] {
            continue;
        }
        let (_, events) = walk_def(id, files, graph, &summaries, &nested_by_file[def.file]);
        let path = files[def.file].0.as_str();
        let via = witness_path(graph, &parent, id);
        for ev in events {
            findings.push(divergence_finding(path, def, &via, &ev));
        }
    }
    StreamOutcome { findings, checked }
}

/// Whether a def is a per-request stream entry point.
fn is_entry(d: &FnDef) -> bool {
    let owner = d.owner.as_deref().unwrap_or("");
    let trait_name = d.trait_name.as_deref().unwrap_or("");
    owner == "FaultInjector"
        || owner == "ArrivalSampler"
        || owner == "ChurnWindow"
        || owner == "DecisionKernel"
        || trait_name == "DecisionKernel"
        || d.name.starts_with("decide")
}

/// `entry → … → def` caller chain from the BFS parent links.
fn witness_path(graph: &CallGraph, parent: &[Option<usize>], id: usize) -> String {
    let mut chain = vec![id];
    let mut at = id;
    while let Some(p) = parent[at] {
        chain.push(p);
        at = p;
        if chain.len() >= 6 {
            break;
        }
    }
    chain.reverse();
    chain
        .iter()
        .map(|&d| label(graph, d))
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// `Owner::name` label for a def.
fn label(graph: &CallGraph, id: usize) -> String {
    let d = &graph.defs[id];
    match &d.owner {
        Some(owner) => format!("{owner}::{}", d.name),
        None => d.name.clone(),
    }
}

fn divergence_finding(path: &str, def: &FnDef, via: &str, ev: &Divergence) -> Finding {
    match &ev.policy {
        Some(ident) => Finding {
            file: path.to_string(),
            line: ev.line,
            rule: Rule::PolicyDependentDraws,
            message: format!(
                "the number of RNG draws in `{}` depends on policy/Q-state (`{}` branches on \
                 `{ident}`, arms draw {} vs {}; via {via}); policy-dependent counts entangle \
                 exploration with every later stream — use a fixed draw protocol or waive with \
                 lint:draws-exempt(<why>)",
                def.name,
                ev.construct,
                ev.min_arm.render(),
                ev.max_arm.render(),
            ),
        },
        None => Finding {
            file: path.to_string(),
            line: ev.line,
            rule: Rule::DivergentRngDraws,
            message: format!(
                "`{}` arms in `{}` consume unequal RNG draw counts ({} vs {}; via {via}); \
                 per-request draw counts must be branch-invariant so downstream streams stay \
                 aligned — equalize with a burn draw or waive with lint:draws-exempt(<why>)",
                ev.construct,
                def.name,
                ev.min_arm.render(),
                ev.max_arm.render(),
            ),
        },
    }
}

/// Walks one def body, returning its draw interval and divergence
/// events, using the current callee summaries.
fn walk_def(
    id: usize,
    files: &[(String, LexedFile)],
    graph: &CallGraph,
    summaries: &[Interval],
    nested: &[(usize, usize)],
) -> (Interval, Vec<Divergence>) {
    let def = &graph.defs[id];
    let tokens = &files[def.file].1.tokens;
    // Call sites by token index, pre-joined over resolved callees.
    let mut calls: BTreeMap<usize, Interval> = BTreeMap::new();
    for call in graph.calls_of(id) {
        if call.resolved.is_empty() {
            continue;
        }
        let mut iv = summaries[call.resolved[0]];
        for &r in &call.resolved[1..] {
            iv = iv.union(summaries[r]);
        }
        if iv != Interval::ZERO {
            calls.insert(call.at, iv);
        }
    }
    let mut walker = Walker {
        tokens,
        calls: &calls,
        nested,
        events: Vec::new(),
    };
    let iv = walker.walk(def.open + 1, def.close);
    (iv, walker.events)
}

/// The recursive body walker.
struct Walker<'a> {
    tokens: &'a [Token],
    calls: &'a BTreeMap<usize, Interval>,
    nested: &'a [(usize, usize)],
    events: Vec<Divergence>,
}

impl Walker<'_> {
    /// Linear walk of `[i, end)`, recursing into control flow.
    fn walk(&mut self, mut i: usize, end: usize) -> Interval {
        let mut total = Interval::ZERO;
        while i < end {
            // Skip nested fn items: their draws belong to their own def.
            if let Some(&(_, close)) = self.nested.iter().find(|&&(s, c)| s == i && c < end) {
                i = close + 1;
                continue;
            }
            let t = &self.tokens[i];
            if t.kind == TokenKind::Ident {
                match t.text.as_str() {
                    "if" => {
                        let (iv, next) = self.parse_if(i, end);
                        total = total.seq(iv);
                        i = next.max(i + 1);
                        continue;
                    }
                    "match" => {
                        let (iv, next) = self.parse_match(i, end);
                        total = total.seq(iv);
                        i = next.max(i + 1);
                        continue;
                    }
                    "for" | "while" | "loop" => {
                        let (iv, next) = self.parse_loop(i, end);
                        total = total.seq(iv);
                        i = next.max(i + 1);
                        continue;
                    }
                    _ => {}
                }
                if self.is_draw(i) {
                    total = total.seq(Interval::exact(1));
                    i += 1;
                    continue;
                }
                if let Some(iv) = self.calls.get(&i) {
                    total = total.seq(*iv);
                    i += 1;
                    continue;
                }
            }
            i += 1;
        }
        total
    }

    /// `.gen(…)`, `.gen::<T>(…)`, `.next_f64()`, … — one draw event.
    fn is_draw(&self, i: usize) -> bool {
        if i == 0 || !self.tokens[i - 1].is_punct('.') {
            return false;
        }
        if !DRAW_METHODS.contains(&self.tokens[i].text.as_str()) {
            return false;
        }
        let direct = self.tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        let turbofish = self.tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && self.tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && self.tokens.get(i + 3).is_some_and(|t| t.is_punct('<'));
        direct || turbofish
    }

    /// An `if`/`else if`/`else` chain starting at the `if` keyword.
    fn parse_if(&mut self, i: usize, end: usize) -> (Interval, usize) {
        let Some(open) = self.cond_block_open(i + 1, end) else {
            return (Interval::ZERO, i + 1);
        };
        let cond = self.walk(i + 1, open);
        let close = block_end(self.tokens, open);
        let then_iv = self.walk(open + 1, close);
        let mut after = close + 1;
        let mut else_iv = Interval::ZERO;
        if after < end && self.tokens[after].is_ident("else") {
            if self.tokens.get(after + 1).is_some_and(|t| t.is_ident("if")) {
                let (iv, next) = self.parse_if(after + 1, end);
                else_iv = iv;
                after = next;
            } else if self.tokens.get(after + 1).is_some_and(|t| t.is_punct('{')) {
                let else_close = block_end(self.tokens, after + 1);
                else_iv = self.walk(after + 2, else_close);
                after = else_close + 1;
            }
        }
        if then_iv != else_iv {
            self.events.push(Divergence {
                line: self.tokens[i].line,
                construct: "if",
                min_arm: if then_iv.hi <= else_iv.hi {
                    then_iv
                } else {
                    else_iv
                },
                max_arm: if then_iv.hi <= else_iv.hi {
                    else_iv
                } else {
                    then_iv
                },
                policy: self.policy_mention(i + 1, open),
            });
        }
        (cond.seq(then_iv.union(else_iv)), after)
    }

    /// A `match` expression starting at the `match` keyword.
    fn parse_match(&mut self, i: usize, end: usize) -> (Interval, usize) {
        let Some(open) = self.plain_block_open(i + 1, end) else {
            return (Interval::ZERO, i + 1);
        };
        let scrut = self.walk(i + 1, open);
        let close = block_end(self.tokens, open);
        let mut arms: Vec<Interval> = Vec::new();
        let mut k = open + 1;
        while k < close {
            let Some(arrow) = find_arrow(self.tokens, k, close) else {
                break;
            };
            // Pattern + guard draws count toward the arm (see caveats).
            let mut arm = self.walk(k, arrow);
            let body = arrow + 2;
            if body >= close {
                arms.push(arm);
                break;
            }
            if self.tokens[body].is_punct('{') {
                let body_close = block_end(self.tokens, body);
                arm = arm.seq(self.walk(body + 1, body_close));
                k = body_close + 1;
                if k < close && self.tokens[k].is_punct(',') {
                    k += 1;
                }
            } else {
                let stop = find_arm_end(self.tokens, body, close);
                arm = arm.seq(self.walk(body, stop));
                k = stop + 1;
            }
            arms.push(arm);
        }
        let Some(&first) = arms.first() else {
            return (scrut, close + 1);
        };
        let mut joined = first;
        let mut min_arm = first;
        let mut max_arm = first;
        let mut diverges = false;
        for &a in &arms[1..] {
            if a != first {
                diverges = true;
            }
            joined = joined.union(a);
            if a.hi < min_arm.hi || (a.hi == min_arm.hi && a.lo < min_arm.lo) {
                min_arm = a;
            }
            if a.hi > max_arm.hi || (a.hi == max_arm.hi && a.lo > max_arm.lo) {
                max_arm = a;
            }
        }
        if diverges {
            self.events.push(Divergence {
                line: self.tokens[i].line,
                construct: "match",
                min_arm,
                max_arm,
                policy: self.policy_mention(i + 1, open),
            });
        }
        (scrut.seq(joined), close + 1)
    }

    /// A `for`/`while`/`loop` starting at its keyword: any draw in the
    /// header or body widens to the full interval (not a divergence).
    fn parse_loop(&mut self, i: usize, end: usize) -> (Interval, usize) {
        let open = match self.tokens[i].text.as_str() {
            "loop" => self.plain_block_open(i + 1, end),
            "for" => self.for_block_open(i + 1, end),
            _ => self.cond_block_open(i + 1, end), // while / while let
        };
        let Some(open) = open else {
            return (Interval::ZERO, i + 1);
        };
        let events_before = self.events.len();
        let header = self.walk(i + 1, open);
        let close = block_end(self.tokens, open);
        let body = self.walk(open + 1, close);
        let once = header.seq(body);
        if once.hi == 0 {
            return (Interval::ZERO, close + 1);
        }
        // Per-iteration divergences inside a widened loop are already
        // absorbed into [0, many]; reporting them too would double up.
        self.events.truncate(events_before);
        (Interval::TOP, close + 1)
    }

    /// First `{` at depth 0 — for `match` scrutinees and `loop`.
    fn plain_block_open(&self, from: usize, end: usize) -> Option<usize> {
        let mut depth = 0i32;
        for k in from..end {
            if let TokenKind::Punct(c) = self.tokens[k].kind {
                match c {
                    '{' if depth == 0 => return Some(k),
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    _ => {}
                }
            }
        }
        None
    }

    /// Block opener of an `if`/`while` condition. `if let PAT = expr {`
    /// may carry braces inside the pattern, so the scan first crosses
    /// the pattern's `=` when one exists.
    fn cond_block_open(&self, from: usize, end: usize) -> Option<usize> {
        let start = if self.tokens.get(from).is_some_and(|t| t.is_ident("let")) {
            self.find_pattern_eq(from + 1, end)?
        } else {
            from
        };
        self.plain_block_open(start, end)
    }

    /// Block opener of a `for PAT in expr {` loop: cross the `in` first
    /// (struct patterns may carry braces).
    fn for_block_open(&self, from: usize, end: usize) -> Option<usize> {
        let mut depth = 0i32;
        for k in from..end {
            let t = &self.tokens[k];
            if depth == 0 && t.is_ident("in") {
                return self.plain_block_open(k + 1, end);
            }
            if let TokenKind::Punct(c) = t.kind {
                match c {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    _ => {}
                }
            }
        }
        None
    }

    /// The pattern-terminating `=` of an `if let`/`while let` (not part
    /// of `==`, `=>`, `<=`, `>=`, `!=`, or a compound assignment).
    fn find_pattern_eq(&self, from: usize, end: usize) -> Option<usize> {
        let mut depth = 0i32;
        for k in from..end {
            if let TokenKind::Punct(c) = self.tokens[k].kind {
                match c {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    '=' if depth == 0 => {
                        let next_breaks = self
                            .tokens
                            .get(k + 1)
                            .is_some_and(|t| t.is_punct('=') || t.is_punct('>'));
                        let prev_breaks = k > 0
                            && matches!(
                                self.tokens[k - 1].kind,
                                TokenKind::Punct(
                                    '=' | '<'
                                        | '>'
                                        | '!'
                                        | '+'
                                        | '-'
                                        | '*'
                                        | '/'
                                        | '%'
                                        | '&'
                                        | '|'
                                        | '^'
                                )
                            );
                        if !next_breaks && !prev_breaks {
                            return Some(k + 1);
                        }
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// The first policy/Q-state ident in `[from, to)`, when any.
    fn policy_mention(&self, from: usize, to: usize) -> Option<String> {
        for t in &self.tokens[from..to.min(self.tokens.len())] {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let lower = t.text.to_lowercase();
            if POLICY_IDENTS.iter().any(|p| lower.contains(p)) {
                return Some(t.text.clone());
            }
        }
        None
    }
}

/// Matching `}` for the `{` at `open` (falls back to the last token).
fn block_end(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if let TokenKind::Punct(c) = t.kind {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// The `=>` of the match arm whose pattern starts at `from`.
fn find_arrow(tokens: &[Token], from: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    for k in from..end {
        if let TokenKind::Punct(c) = tokens[k].kind {
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => depth -= 1,
                '=' if depth == 0 && tokens.get(k + 1).is_some_and(|t| t.is_punct('>')) => {
                    return Some(k)
                }
                _ => {}
            }
        }
    }
    None
}

/// End of an expression match arm: the `,` at depth 0, or `end`.
fn find_arm_end(tokens: &[Token], from: usize, end: usize) -> usize {
    let mut depth = 0i32;
    for (k, token) in tokens.iter().enumerate().take(end).skip(from) {
        if let TokenKind::Punct(c) = token.kind {
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => depth -= 1,
                ',' if depth == 0 => return k,
                _ => {}
            }
        }
    }
    end
}

/// Flags RNG constructions whose seed argument shows no sign of the
/// workspace derivation discipline (no `*seed*` ident in the argument).
fn check_underived(path: &str, lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if !matches!(ctx.class, FileClass::Lib | FileClass::Bin) {
        return;
    }
    let tokens = &lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text != "seed_from_u64" && t.text != "from_seed" {
            continue;
        }
        // `fn seed_from_u64(…)` is a definition, not a construction.
        if i > 0 && tokens[i - 1].is_ident("fn") {
            continue;
        }
        let Some(open) = tokens.get(i + 1).filter(|n| n.is_punct('(')).map(|_| i + 1) else {
            continue;
        };
        let close = paren_end(tokens, open);
        let derived = tokens[open + 1..close]
            .iter()
            .any(|a| a.kind == TokenKind::Ident && a.text.to_lowercase().contains("seed"));
        if !derived {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: Rule::UnderivedRngStream,
                message: format!(
                    "`{}(…)` constructs an RNG stream outside the seed-derivation discipline; \
                     derive the seed via `cell_seed`/`seeded_rng` (or pass a `*seed*`-named \
                     value) or waive with lint:draws-exempt(<why>)",
                    t.text
                ),
            });
        }
    }
}

/// Matching `)` for the `(` at `open` (falls back to the last token).
fn paren_end(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if let TokenKind::Punct(c) = t.kind {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::classify;

    const LIB: &str = "crates/demo/src/lib.rs";

    fn run(path: &str, src: &str) -> StreamOutcome {
        let files = vec![(path.to_string(), crate::lexer::lex(src))];
        let contexts: Vec<FileContext> = files
            .iter()
            .map(|(p, l)| FileContext::build(classify(p), l))
            .collect();
        let graph = CallGraph::build(&files, &contexts);
        analyze(&files, &contexts, &graph)
    }

    fn rules_hit(out: &StreamOutcome) -> Vec<(u32, &'static str)> {
        out.findings
            .iter()
            .map(|f| (f.line, f.rule.name()))
            .collect()
    }

    #[test]
    fn a_one_armed_draw_in_a_decide_fn_diverges() {
        let src = "fn decide_x(rng: &mut StdRng, lucky: bool) -> f64 {\n\
                   if lucky {\n\
                   rng.gen::<f64>()\n\
                   } else {\n\
                   0.0\n\
                   }\n}\n";
        let out = run(LIB, src);
        assert_eq!(rules_hit(&out), vec![(2, "divergent-rng-draws")]);
    }

    #[test]
    fn equal_arms_are_clean() {
        let src = "fn decide_x(rng: &mut StdRng, lucky: bool) -> f64 {\n\
                   if lucky { rng.gen::<f64>() } else { rng.gen::<f64>() * 2.0 }\n}\n";
        assert!(rules_hit(&run(LIB, src)).is_empty());
    }

    #[test]
    fn missing_else_is_an_implicit_zero_arm() {
        let src = "fn decide_x(rng: &mut StdRng, lucky: bool) {\n\
                   if lucky { let _ = rng.gen::<f64>(); }\n}\n";
        assert_eq!(rules_hit(&run(LIB, src)), vec![(2, "divergent-rng-draws")]);
    }

    #[test]
    fn epsilon_conditions_classify_as_policy_dependent() {
        let src = "fn decide_x(rng: &mut StdRng, epsilon: f64) -> u32 {\n\
                   if rng.gen::<f64>() < epsilon {\n\
                   rng.gen_range(0..4)\n\
                   } else {\n\
                   0\n\
                   }\n}\n";
        assert_eq!(
            rules_hit(&run(LIB, src)),
            vec![(2, "policy-dependent-draws")]
        );
    }

    #[test]
    fn divergence_two_calls_below_an_entry_is_found_with_a_witness() {
        let src =
            "trait DecisionKernel { fn select(&self, rng: &mut StdRng) -> f64 { hop(rng) } }\n\
                   fn hop(rng: &mut StdRng) -> f64 { drifty(rng) }\n\
                   fn drifty(rng: &mut StdRng) -> f64 {\n\
                   if rng.gen::<f64>() > 0.5 { rng.gen::<f64>() } else { 0.0 }\n}\n";
        let out = run(LIB, src);
        assert_eq!(rules_hit(&out), vec![(4, "divergent-rng-draws")]);
        assert!(
            out.findings[0].message.contains("select -> hop -> drifty"),
            "{}",
            out.findings[0].message
        );
    }

    #[test]
    fn unequal_callee_draw_counts_diverge_through_the_graph() {
        let src = "fn decide_x(rng: &mut StdRng, b: bool) {\n\
                   if b { two(rng); } else { one(rng); }\n\
                   }\n\
                   fn two(rng: &mut StdRng) { let _ = rng.gen::<f64>(); let _ = rng.gen::<f64>(); }\n\
                   fn one(rng: &mut StdRng) { let _ = rng.gen::<f64>(); }\n";
        let out = run(LIB, src);
        assert_eq!(rules_hit(&out), vec![(2, "divergent-rng-draws")]);
        assert!(out.findings[0].message.contains("1 vs 2"));
    }

    #[test]
    fn fixed_loops_widen_without_diverging() {
        // The injector's per-link attempt loop shape: a fixed-bound
        // loop drawing once per iteration is not a divergence.
        let src = "fn decide_x(rng: &mut StdRng, attempts: &mut [f64; 4]) {\n\
                   for slot in attempts.iter_mut() { *slot = rng.gen(); }\n\
                   }\n";
        assert!(rules_hit(&run(LIB, src)).is_empty());
    }

    #[test]
    fn a_branch_between_drawing_and_silent_loops_still_diverges() {
        let src = "fn decide_x(rng: &mut StdRng, b: bool, xs: &[u64]) {\n\
                   if b { for _x in xs.iter() { let _ = rng.gen::<f64>(); } }\n\
                   }\n";
        assert_eq!(rules_hit(&run(LIB, src)), vec![(2, "divergent-rng-draws")]);
    }

    #[test]
    fn match_arms_with_unequal_draws_diverge() {
        let src = "fn decide_x(rng: &mut StdRng, k: u8) -> f64 {\n\
                   match k {\n\
                   0 => rng.gen::<f64>(),\n\
                   _ => 0.0,\n\
                   }\n}\n";
        assert_eq!(rules_hit(&run(LIB, src)), vec![(2, "divergent-rng-draws")]);
    }

    #[test]
    fn unreachable_divergence_is_not_reported() {
        let src = "fn helper(rng: &mut StdRng, b: bool) -> f64 {\n\
                   if b { rng.gen::<f64>() } else { 0.0 }\n}\n";
        assert!(rules_hit(&run(LIB, src)).is_empty());
    }

    #[test]
    fn test_code_is_not_checked() {
        let src = "#[cfg(test)]\nmod t {\n\
                   fn decide_x(rng: &mut StdRng, b: bool) -> f64 {\n\
                   if b { rng.gen::<f64>() } else { 0.0 }\n}\n}\n";
        assert!(rules_hit(&run(LIB, src)).is_empty());
    }

    #[test]
    fn literal_seeds_are_underived_and_named_seeds_are_fine() {
        let src = "fn fresh() -> StdRng { StdRng::seed_from_u64(42) }\n\
                   fn derived(cell_seed: u64) -> StdRng { StdRng::seed_from_u64(cell_seed) }\n";
        assert_eq!(rules_hit(&run(LIB, src)), vec![(1, "underived-rng-stream")]);
        // Tests may pin literal seeds freely.
        let test_src = "#[cfg(test)]\nmod t { fn f() -> StdRng { StdRng::seed_from_u64(7) } }\n";
        assert!(rules_hit(&run(LIB, test_src)).is_empty());
    }

    #[test]
    fn draws_exempt_waives_the_divergence() {
        let src = "fn decide_x(rng: &mut StdRng, lucky: bool) -> f64 {\n\
                   // lint:draws-exempt(protocol: exploration arm draws once more)\n\
                   if lucky {\n\
                   rng.gen::<f64>()\n\
                   } else {\n\
                   0.0\n\
                   }\n}\n";
        let findings = crate::rules::analyze_file(LIB, src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn intervals_saturate_and_render() {
        let big = Interval::exact(MAX_DRAWS).seq(Interval::exact(5));
        assert_eq!(big.hi, MAX_DRAWS);
        assert_eq!(Interval::exact(2).render(), "2");
        assert_eq!(
            Interval { lo: 1, hi: 3 }.union(Interval::ZERO).render(),
            "0..3"
        );
        assert_eq!(Interval::TOP.render(), "0..many");
    }
}
