//! A small dimensional algebra over the workspace's identifier-suffix
//! vocabulary.
//!
//! The whole reproduction encodes physical dimensions purely by naming
//! convention: `latency_ms` is milliseconds, `busy_power_w` watts,
//! `traffic_bytes` bytes, `efficiency_ipj` inferences per joule. The
//! paper's energy equations (eqs. (1)–(3)) rely on those conventions
//! combining coherently — `W × ms = mJ`, `MACs ÷ (MAC/s) = s` — so this
//! module gives each suffix a [`Unit`]: a vector of exponents over four
//! base dimensions (time, energy, information, compute) plus a decimal
//! *scale* relative to the SI-ish base units (s, J, bytes, MACs).
//!
//! Tracking scale separately is what makes an `_ms` ↔ `_ns` swap
//! detectable: both are time, but `ms` sits at 10⁻³ and `ns` at 10⁻⁹.
//! Anything the algebra cannot prove degrades to [`Unit::Unknown`] (or
//! a scale of `None`), which never produces a finding — the checker is
//! built to be quiet when unsure.

/// Exponents of the four base dimensions the workspace's physics uses:
/// time (seconds), energy (joules), information (bytes), and compute
/// (MAC operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Dim {
    /// Exponent of time.
    pub time: i8,
    /// Exponent of energy.
    pub energy: i8,
    /// Exponent of information.
    pub info: i8,
    /// Exponent of compute.
    pub compute: i8,
}

impl Dim {
    /// The dimensionless vector (ratios, fractions, counts).
    pub const NONE: Dim = Dim {
        time: 0,
        energy: 0,
        info: 0,
        compute: 0,
    };

    const fn new(time: i8, energy: i8, info: i8, compute: i8) -> Dim {
        Dim {
            time,
            energy,
            info,
            compute,
        }
    }

    /// Whether every exponent is zero.
    pub fn is_dimensionless(self) -> bool {
        self == Dim::NONE
    }

    fn checked_add(self, o: Dim) -> Option<Dim> {
        Some(Dim {
            time: self.time.checked_add(o.time)?,
            energy: self.energy.checked_add(o.energy)?,
            info: self.info.checked_add(o.info)?,
            compute: self.compute.checked_add(o.compute)?,
        })
    }

    fn checked_sub(self, o: Dim) -> Option<Dim> {
        Some(Dim {
            time: self.time.checked_sub(o.time)?,
            energy: self.energy.checked_sub(o.energy)?,
            info: self.info.checked_sub(o.info)?,
            compute: self.compute.checked_sub(o.compute)?,
        })
    }
}

const TIME: Dim = Dim::new(1, 0, 0, 0);
const PER_TIME: Dim = Dim::new(-1, 0, 0, 0);
const ENERGY: Dim = Dim::new(0, 1, 0, 0);
const PER_ENERGY: Dim = Dim::new(0, -1, 0, 0);
const POWER: Dim = Dim::new(-1, 1, 0, 0);
const INFO: Dim = Dim::new(0, 0, 1, 0);
const BANDWIDTH: Dim = Dim::new(-1, 0, 1, 0);
const COMPUTE: Dim = Dim::new(0, 0, 0, 1);
const COMPUTE_RATE: Dim = Dim::new(-1, 0, 0, 1);

/// The inferred unit of an expression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Unit {
    /// Nothing known — an unsuffixed identifier, an opaque call, a
    /// parse the checker gave up on. Never produces a finding.
    Unknown,
    /// A bare numeric literal: dimensionless, and also exempt from
    /// additive/comparative checks (`x_ms > 0.0` is idiomatic), but it
    /// poisons the *scale* of whatever it multiplies, because literals
    /// are how this codebase spells unit-conversion factors
    /// (`gmacs * 1e9`).
    Scalar,
    /// A quantity of known dimension. `scale` is the decimal exponent
    /// relative to the base units (s, J, bytes, MACs): `ms` is
    /// `Some(-3)`, `GHz` `Some(9)`; `None` once a conversion factor of
    /// unknown magnitude has been applied.
    Known {
        /// The dimension vector.
        dim: Dim,
        /// Decimal scale exponent, if still provable.
        scale: Option<i8>,
    },
}

impl Unit {
    /// A known unit with an exact scale.
    pub const fn known(dim: Dim, scale: i8) -> Unit {
        Unit::Known {
            dim,
            scale: Some(scale),
        }
    }

    /// Whether this unit carries a known dimension.
    pub fn is_known(self) -> bool {
        matches!(self, Unit::Known { .. })
    }
}

/// The suffix vocabulary: what each recognized identifier suffix means.
/// `efficiency_ipj` → `ipj` → 1/J; `peak_gmacs` → `gmacs` → GMAC/s
/// (this workspace's `_gmacs` names are rates, `_macs` are counts).
const VOCAB: &[(&str, Dim, i8)] = &[
    ("s", TIME, 0),
    ("ms", TIME, -3),
    ("us", TIME, -6),
    ("ns", TIME, -9),
    ("j", ENERGY, 0),
    ("mj", ENERGY, -3),
    ("w", POWER, 0),
    ("mw", POWER, -3),
    ("hz", PER_TIME, 0),
    ("khz", PER_TIME, 3),
    ("mhz", PER_TIME, 6),
    ("ghz", PER_TIME, 9),
    ("bytes", INFO, 0),
    ("kb", INFO, 3),
    ("mb", INFO, 6),
    ("gb", INFO, 9),
    ("gbps", BANDWIDTH, 9),
    ("ipj", PER_ENERGY, 0),
    ("macs", COMPUTE, 0),
    ("gmacs", COMPUTE_RATE, 9),
    ("ratio", Dim::NONE, 0),
    ("frac", Dim::NONE, 0),
];

/// The canonical suffix table, for docs and `--list-rules` output.
pub fn vocabulary() -> impl Iterator<Item = (&'static str, Unit)> {
    VOCAB
        .iter()
        .map(|&(suffix, dim, scale)| (suffix, Unit::known(dim, scale)))
}

/// Resolves an identifier to its unit via the suffix convention.
///
/// The portion after the last `_` (lowercased, so `QOS_MS` works) is
/// looked up in the vocabulary; an identifier that *is* a vocabulary
/// word (`macs`, `gmacs`) resolves as a whole. Anything else is
/// [`Unit::Unknown`].
pub fn ident_unit(ident: &str) -> Unit {
    let lower = ident.to_ascii_lowercase();
    let candidate = match lower.rsplit_once('_') {
        Some((_, suffix)) => suffix,
        None => lower.as_str(),
    };
    for &(suffix, dim, scale) in VOCAB {
        if suffix == candidate {
            return Unit::known(dim, scale);
        }
    }
    Unit::Unknown
}

/// Unit of a product `a * b`.
pub fn mul(a: Unit, b: Unit) -> Unit {
    match (a, b) {
        (Unit::Unknown, _) | (_, Unit::Unknown) => Unit::Unknown,
        (Unit::Scalar, Unit::Scalar) => Unit::Scalar,
        (Unit::Scalar, Unit::Known { dim, .. }) | (Unit::Known { dim, .. }, Unit::Scalar) => {
            // A conversion factor of unknown magnitude: dimension
            // survives, exact scale does not.
            Unit::Known { dim, scale: None }
        }
        (Unit::Known { dim: d1, scale: s1 }, Unit::Known { dim: d2, scale: s2 }) => {
            match d1.checked_add(d2) {
                Some(dim) => Unit::Known {
                    dim,
                    scale: match (s1, s2) {
                        (Some(x), Some(y)) => x.checked_add(y),
                        _ => None,
                    },
                },
                None => Unit::Unknown,
            }
        }
    }
}

/// Unit of a quotient `a / b`.
pub fn div(a: Unit, b: Unit) -> Unit {
    match (a, b) {
        (Unit::Unknown, _) | (_, Unit::Unknown) => Unit::Unknown,
        (Unit::Scalar, Unit::Scalar) => Unit::Scalar,
        (Unit::Known { dim, .. }, Unit::Scalar) => Unit::Known { dim, scale: None },
        (Unit::Scalar, Unit::Known { dim, .. }) => match Dim::NONE.checked_sub(dim) {
            Some(dim) => Unit::Known { dim, scale: None },
            None => Unit::Unknown,
        },
        (Unit::Known { dim: d1, scale: s1 }, Unit::Known { dim: d2, scale: s2 }) => {
            match d1.checked_sub(d2) {
                Some(dim) => Unit::Known {
                    dim,
                    scale: match (s1, s2) {
                        (Some(x), Some(y)) => x.checked_sub(y),
                        _ => None,
                    },
                },
                None => Unit::Unknown,
            }
        }
    }
}

/// Why two units cannot meet additively (in `+`, `-`, a comparison, an
/// assignment, or a binding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MismatchKind {
    /// Different dimensions entirely (ms vs mJ).
    Dimension,
    /// Same dimension, provably different decimal scale (ms vs ns).
    Scale,
}

/// Checks whether `a` and `b` may meet additively. `None` means "no
/// provable conflict" — including every case involving `Unknown` or a
/// bare literal.
pub fn additive_mismatch(a: Unit, b: Unit) -> Option<MismatchKind> {
    let (Unit::Known { dim: d1, scale: s1 }, Unit::Known { dim: d2, scale: s2 }) = (a, b) else {
        return None;
    };
    if d1 != d2 {
        return Some(MismatchKind::Dimension);
    }
    match (s1, s2) {
        (Some(x), Some(y)) if x != y => Some(MismatchKind::Scale),
        _ => None,
    }
}

/// Unit of an additive combination — the known side wins, so a chain
/// like `a_ms + overhead + b` stays checkable as milliseconds.
pub fn additive_result(a: Unit, b: Unit) -> Unit {
    match (a, b) {
        (Unit::Known { .. }, _) => a,
        (_, Unit::Known { .. }) => b,
        (Unit::Scalar, Unit::Scalar) => Unit::Scalar,
        _ => Unit::Unknown,
    }
}

/// Renders a unit for finding messages: the canonical suffix spelling
/// when one exists (`ms`, `mJ`, `GB/s`), a composed form otherwise.
pub fn render(unit: Unit) -> String {
    let (dim, scale) = match unit {
        Unit::Unknown => return "?".to_string(),
        Unit::Scalar => return "scalar".to_string(),
        Unit::Known { dim, scale } => (dim, scale),
    };
    if let Some(s) = scale {
        if let Some(name) = canonical_name(dim, s) {
            return name.to_string();
        }
    }
    let mut parts = Vec::new();
    for (exp, base) in [
        (dim.time, "s"),
        (dim.energy, "J"),
        (dim.info, "B"),
        (dim.compute, "MAC"),
    ] {
        match exp {
            0 => {}
            1 => parts.push(base.to_string()),
            e => parts.push(format!("{base}^{e}")),
        }
    }
    let body = if parts.is_empty() {
        "dimensionless".to_string()
    } else {
        parts.join("·")
    };
    match scale {
        Some(0) => body,
        Some(s) => format!("10^{s}·{body}"),
        None => format!("{body} (scale unknown)"),
    }
}

/// The preferred display name for an exact (dimension, scale) pair.
fn canonical_name(dim: Dim, scale: i8) -> Option<&'static str> {
    // Display spellings differ from the suffix vocabulary (mJ, not mj).
    const DISPLAY: &[(&str, Dim, i8)] = &[
        ("s", TIME, 0),
        ("ms", TIME, -3),
        ("us", TIME, -6),
        ("ns", TIME, -9),
        ("J", ENERGY, 0),
        ("mJ", ENERGY, -3),
        ("W", POWER, 0),
        ("mW", POWER, -3),
        ("Hz", PER_TIME, 0),
        ("kHz", PER_TIME, 3),
        ("MHz", PER_TIME, 6),
        ("GHz", PER_TIME, 9),
        ("bytes", INFO, 0),
        ("KB", INFO, 3),
        ("MB", INFO, 6),
        ("GB", INFO, 9),
        ("GB/s", BANDWIDTH, 9),
        ("1/J", PER_ENERGY, 0),
        ("MACs", COMPUTE, 0),
        ("GMAC/s", COMPUTE_RATE, 9),
        ("ratio", Dim::NONE, 0),
    ];
    DISPLAY
        .iter()
        .find(|&&(_, d, s)| d == dim && s == scale)
        .map(|&(name, _, _)| name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffixes_resolve_case_insensitively() {
        assert_eq!(ident_unit("latency_ms"), Unit::known(TIME, -3));
        assert_eq!(ident_unit("QOS_MS"), Unit::known(TIME, -3));
        assert_eq!(ident_unit("busy_power_w"), Unit::known(POWER, 0));
        assert_eq!(ident_unit("efficiency_ipj"), Unit::known(PER_ENERGY, 0));
        assert_eq!(ident_unit("freq_ratio"), Unit::known(Dim::NONE, 0));
        assert_eq!(ident_unit("macs"), Unit::known(COMPUTE, 0));
        assert_eq!(ident_unit("plain_name"), Unit::Unknown);
        // No underscore and not a vocabulary word: `macs` matches whole,
        // `params` must not match `_s`.
        assert_eq!(ident_unit("params"), Unit::Unknown);
    }

    #[test]
    fn watts_times_milliseconds_is_millijoules() {
        let w = ident_unit("busy_power_w");
        let ms = ident_unit("latency_ms");
        let mj = mul(w, ms);
        assert_eq!(mj, Unit::known(ENERGY, -3));
        assert_eq!(additive_mismatch(mj, ident_unit("base_mj")), None);
    }

    #[test]
    fn macs_over_mac_rate_is_time() {
        let t = div(ident_unit("macs"), ident_unit("peak_gmacs"));
        assert_eq!(t, Unit::known(TIME, -9));
    }

    #[test]
    fn ms_vs_ns_is_a_scale_mismatch() {
        assert_eq!(
            additive_mismatch(ident_unit("a_ms"), ident_unit("b_ns")),
            Some(MismatchKind::Scale)
        );
        assert_eq!(
            additive_mismatch(ident_unit("a_ms"), ident_unit("b_mj")),
            Some(MismatchKind::Dimension)
        );
        assert_eq!(
            additive_mismatch(ident_unit("a_ms"), ident_unit("b_ms")),
            None
        );
    }

    #[test]
    fn literals_poison_scale_but_keep_dimension() {
        let scaled = mul(ident_unit("x_ms"), Unit::Scalar);
        assert_eq!(
            scaled,
            Unit::Known {
                dim: TIME,
                scale: None
            }
        );
        // A scale-poisoned time still clashes with energy …
        assert_eq!(
            additive_mismatch(scaled, ident_unit("e_mj")),
            Some(MismatchKind::Dimension)
        );
        // … but no longer with nanoseconds.
        assert_eq!(additive_mismatch(scaled, ident_unit("t_ns")), None);
    }

    #[test]
    fn unknowns_never_mismatch() {
        assert_eq!(additive_mismatch(Unit::Unknown, ident_unit("a_ms")), None);
        assert_eq!(additive_mismatch(ident_unit("a_ms"), Unit::Scalar), None);
        assert_eq!(mul(Unit::Unknown, ident_unit("a_ms")), Unit::Unknown);
    }

    #[test]
    fn division_cancels_dimensions_into_ratios() {
        let r = div(ident_unit("fc_ms"), ident_unit("total_ms"));
        assert_eq!(r, Unit::known(Dim::NONE, 0));
        assert_eq!(additive_mismatch(r, ident_unit("share_frac")), None);
    }

    #[test]
    fn rendering_prefers_canonical_names() {
        assert_eq!(render(ident_unit("a_ms")), "ms");
        assert_eq!(render(ident_unit("e_mj")), "mJ");
        assert_eq!(render(ident_unit("p_w")), "W");
        assert_eq!(render(ident_unit("bw_gbps")), "GB/s");
        assert_eq!(
            render(mul(ident_unit("a_ms"), Unit::Scalar)),
            "s (scale unknown)"
        );
        assert_eq!(render(Unit::Unknown), "?");
    }
}
