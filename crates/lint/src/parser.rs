//! A lightweight recursive-descent parser over the token stream, and
//! the units checker built on it.
//!
//! This is not a Rust parser; it is a *unit-bearing expression* parser
//! with just enough statement and item structure to walk function
//! bodies safely. It understands operator precedence (so `a + b * c`
//! combines units in the right order), `let` bindings, calls and
//! method calls, field access, struct literals, and the control-flow
//! headers that change how `{` must be read. Everything it does not
//! understand degrades to [`Unit::Unknown`] and produces no finding —
//! when this parser is confused, it is silent, never wrong.
//!
//! Three rules are produced here:
//!
//! * `unit-mismatch` — `+`, `-`, a comparison, or a (compound)
//!   assignment whose two sides have provably different units;
//! * `unit-arg-mismatch` — a call argument whose unit contradicts the
//!   callee's parameter-name suffix, resolved through the
//!   workspace-wide [`SigIndex`];
//! * `unit-binding-mismatch` — `let x_ms = <mJ expr>` and struct-field
//!   initializers whose value contradicts the field's suffix.

use std::collections::BTreeMap;

use crate::context::{FileClass, FileContext};
use crate::lexer::{LexedFile, Token, TokenKind};
use crate::rules::{Finding, Rule};
use crate::sigindex::{FnSig, Param, SigIndex};
use crate::units::{
    additive_mismatch, additive_result, div, ident_unit, mul, render, MismatchKind, Unit,
};

/// Recursion ceiling for the expression parser. Deeper nesting than
/// this degrades to `Unknown` rather than risking the stack.
const MAX_DEPTH: u32 = 120;

/// Parses the `fn` signature starting at `at` (the index of the `fn`
/// keyword). Returns the function's name, its parameters (`self`
/// excluded), and the index just past the closing `)` — scanning may
/// resume there and still find nested functions in the body.
pub(crate) fn parse_fn_signature(tokens: &[Token], at: usize) -> Option<(String, FnSig, usize)> {
    let name_tok = tokens.get(at + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    let mut i = at + 2;
    // Generic parameters: `<…>`, where `->` inside (`F: Fn() -> u64`)
    // must not close the group.
    if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0usize;
        while i < tokens.len() {
            let t = &tokens[i];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !arrow_gt(tokens, i) {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    if !tokens.get(i).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let mut params = Vec::new();
    let mut start = i + 1;
    let (mut paren, mut angle, mut square, mut brace) = (1i32, 0i32, 0i32, 0i32);
    i += 1;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => {
                paren -= 1;
                if paren == 0 {
                    push_param(&tokens[start..i], &mut params);
                    return Some((name, FnSig { params }, i + 1));
                }
            }
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') if !arrow_gt(tokens, i) => angle -= 1,
            TokenKind::Punct('[') => square += 1,
            TokenKind::Punct(']') => square -= 1,
            TokenKind::Punct('{') => brace += 1,
            TokenKind::Punct('}') => brace -= 1,
            TokenKind::Punct(',') if paren == 1 && angle <= 0 && square == 0 && brace == 0 => {
                push_param(&tokens[start..i], &mut params);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Whether the `>` at `i` is the tail of a `->` arrow.
fn arrow_gt(tokens: &[Token], i: usize) -> bool {
    i > 0 && tokens[i - 1].is_punct('-') && tokens[i - 1].is_joint(&tokens[i])
}

/// Records one parameter from its token slice, excluding `self`
/// receivers (so method calls and free calls index identically).
fn push_param(slice: &[Token], params: &mut Vec<Param>) {
    // Strip attributes `#[…]` and binding modifiers.
    let mut k = 0;
    while k < slice.len() {
        let t = &slice[k];
        if t.is_punct('#') && slice.get(k + 1).is_some_and(|n| n.is_punct('[')) {
            let mut depth = 0usize;
            while k < slice.len() {
                if slice[k].is_punct('[') {
                    depth += 1;
                } else if slice[k].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
        } else if t.is_punct('&') || t.kind == TokenKind::Lifetime || t.is_ident("mut") {
            k += 1;
        } else {
            break;
        }
    }
    let Some(first) = slice.get(k) else { return };
    if first.is_ident("self") {
        return;
    }
    let name =
        if first.kind == TokenKind::Ident && slice.get(k + 1).is_some_and(|n| n.is_punct(':')) {
            Some(first.text.clone())
        } else {
            None
        };
    let unit = name.as_deref().map_or(Unit::Unknown, ident_unit);
    params.push(Param { name, unit });
}

/// Runs the units checker over every non-test function body of a
/// library or binary file. Findings come back unsuppressed; the caller
/// applies `lint:allow` filtering.
pub(crate) fn check_units(
    path: &str,
    lexed: &LexedFile,
    ctx: &FileContext,
    sigs: &SigIndex,
) -> Vec<Finding> {
    if !matches!(ctx.class, FileClass::Lib | FileClass::Bin) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for span in &ctx.fn_spans {
        if ctx.in_test[span.start] {
            continue;
        }
        let mut checker = Checker {
            path,
            tokens: &lexed.tokens,
            sigs,
            scopes: vec![BTreeMap::new()],
            findings: Vec::new(),
            i: span.open,
            end: span.close + 1,
            depth: 0,
        };
        checker.block();
        findings.append(&mut checker.findings);
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    // Nested fn items are walked once as part of their parent's span
    // and once as their own span; identical findings collapse.
    findings.dedup();
    findings
}

/// A parsed expression's inferred unit, a short label for messages,
/// and the line it started on.
#[derive(Debug, Clone)]
struct Val {
    unit: Unit,
    label: Option<String>,
    line: u32,
}

impl Val {
    fn unknown(line: u32) -> Val {
        Val {
            unit: Unit::Unknown,
            label: None,
            line,
        }
    }

    fn describe(&self) -> String {
        match &self.label {
            Some(l) => format!("`{l}`"),
            None => "expression".to_string(),
        }
    }
}

/// Methods that return their receiver's unit unchanged.
const UNIT_PRESERVING_METHODS: &[&str] = &[
    "abs",
    "clone",
    "copied",
    "cloned",
    "to_owned",
    "round",
    "floor",
    "ceil",
    "trunc",
    "saturating_add",
    "saturating_sub",
    "wrapping_add",
    "wrapping_sub",
];

/// Methods whose argument must share the receiver's unit, and whose
/// result keeps it (`a_ms.max(b_ns)` is as wrong as `a_ms + b_ns`).
const UNIT_JOINING_METHODS: &[&str] = &["min", "max", "clamp", "rem_euclid"];

struct Checker<'a> {
    path: &'a str,
    tokens: &'a [Token],
    sigs: &'a SigIndex,
    /// Lexical scopes of `let`-bound names whose unit was inferred from
    /// the initializer (consulted only for names without a suffix).
    scopes: Vec<BTreeMap<String, Unit>>,
    findings: Vec<Finding>,
    i: usize,
    /// Exclusive upper bound of the walk (just past the body's `}`).
    end: usize,
    depth: u32,
}

impl<'a> Checker<'a> {
    fn tok(&self, k: usize) -> Option<&'a Token> {
        if k < self.end {
            self.tokens.get(k)
        } else {
            None
        }
    }

    fn cur(&self) -> Option<&'a Token> {
        self.tok(self.i)
    }

    fn at_punct(&self, c: char) -> bool {
        self.cur().is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.cur().is_some_and(|t| t.is_ident(s))
    }

    /// Whether the current token is punct `a` with a *joint* punct `b`
    /// right behind it — a compound operator like `==`, `&&`, `=>`.
    fn joint_pair(&self, a: char, b: char) -> bool {
        match (self.cur(), self.tok(self.i + 1)) {
            (Some(t), Some(n)) => t.is_punct(a) && n.is_punct(b) && t.is_joint(n),
            _ => false,
        }
    }

    fn line(&self) -> u32 {
        self.cur().map_or(0, |t| t.line)
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn push_finding(&mut self, line: u32, rule: Rule, message: String) {
        self.findings.push(Finding {
            file: self.path.to_string(),
            line,
            rule,
            message,
        });
    }

    fn lookup(&self, name: &str) -> Unit {
        let suffixed = ident_unit(name);
        if suffixed.is_known() {
            return suffixed;
        }
        for scope in self.scopes.iter().rev() {
            if let Some(&unit) = scope.get(name) {
                return unit;
            }
        }
        Unit::Unknown
    }

    /// Skips tokens until past the matching closer of the delimiter the
    /// cursor stands on (`(`/`[`/`{`); no-op on anything else.
    fn skip_delim_group(&mut self) {
        let (open, close) = match self.cur().map(|t| t.kind) {
            Some(TokenKind::Punct('(')) => ('(', ')'),
            Some(TokenKind::Punct('[')) => ('[', ']'),
            Some(TokenKind::Punct('{')) => ('{', '}'),
            _ => return,
        };
        let mut depth = 0usize;
        while let Some(t) = self.cur() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skips a `<…>` group the cursor stands on, honoring `->`.
    fn skip_angle_group(&mut self) {
        if !self.at_punct('<') {
            return;
        }
        let mut depth = 0usize;
        while let Some(t) = self.cur() {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !arrow_gt(self.tokens, self.i) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skips an outer attribute `#[…]` the cursor stands on.
    fn skip_attr(&mut self) {
        if self.at_punct('#') {
            self.bump();
            self.skip_delim_group();
        }
    }

    /// Walks the block the cursor stands on (`{ … }`), checking every
    /// statement; leaves the cursor just past the closing `}`.
    fn block(&mut self) {
        if !self.eat_punct('{') {
            return;
        }
        self.scopes.push(BTreeMap::new());
        loop {
            if self.at_punct('}') {
                self.bump();
                break;
            }
            let Some(_) = self.cur() else { break };
            let before = self.i;
            self.stmt();
            if self.i == before {
                self.bump();
            }
        }
        self.scopes.pop();
    }

    /// One statement: a `let`, a nested item (skipped structurally), or
    /// an expression statement.
    fn stmt(&mut self) {
        while self.at_punct('#') {
            self.skip_attr();
        }
        if self.eat_punct(';') {
            return;
        }
        let Some(t) = self.cur() else { return };
        if t.is_ident("let") {
            self.let_stmt();
        } else if t.is_ident("fn") {
            // A nested fn item has its own FnSpan and is checked there;
            // here we only step over it.
            self.skip_fn_item();
        } else if t.is_ident("use")
            || t.is_ident("static")
            || t.is_ident("type")
            || (t.is_ident("const") && self.tok(self.i + 1).is_some_and(|n| !n.is_ident("fn")))
        {
            self.skip_to_semi();
        } else if t.is_ident("struct")
            || t.is_ident("enum")
            || t.is_ident("trait")
            || t.is_ident("impl")
            || t.is_ident("mod")
            || t.is_ident("union")
        {
            self.skip_item_with_block();
        } else if t.is_ident("macro_rules") {
            self.bump();
            self.eat_punct('!');
            if self.cur().is_some_and(|t| t.kind == TokenKind::Ident) {
                self.bump();
            }
            self.skip_delim_group();
        } else if t.is_ident("pub") {
            // Visibility on a nested item: `pub(crate) fn …`.
            self.bump();
            if self.at_punct('(') {
                self.skip_delim_group();
            }
        } else {
            self.expr(true);
            self.eat_punct(';');
        }
    }

    /// `let [mut] pat [: Type] = expr [else { … }] ;`
    fn let_stmt(&mut self) {
        self.bump(); // `let`
        while self.at_ident("mut") || self.at_ident("ref") {
            self.bump();
        }
        // A simple binding is a lone identifier; anything else is a
        // pattern we step over without recording.
        let bound = match self.cur() {
            Some(t)
                if t.kind == TokenKind::Ident
                    && self
                        .tok(self.i + 1)
                        .is_some_and(|n| n.is_punct(':') || n.is_punct('=') || n.is_punct(';')) =>
            {
                let name = t.text.clone();
                let line = t.line;
                self.bump();
                Some((name, line))
            }
            _ => {
                self.skip_pattern_to(&[':', '=', ';']);
                None
            }
        };
        if self.at_punct(':') {
            self.bump();
            self.skip_type_to(&['=', ';']);
        }
        if !self.eat_punct('=') {
            self.skip_to_semi();
            return;
        }
        let value = self.expr(true);
        if self.at_ident("else") {
            self.bump();
            self.block();
        }
        self.eat_punct(';');
        if let Some((name, line)) = bound {
            let declared = ident_unit(&name);
            if let Some(kind) = additive_mismatch(declared, value.unit) {
                self.push_finding(
                    line,
                    Rule::UnitBindingMismatch,
                    format!(
                        "`{name}` declares {} but its initializer {} is {} ({})",
                        render(declared),
                        value.describe(),
                        render(value.unit),
                        describe_kind(kind),
                    ),
                );
            }
            if !declared.is_known() && value.unit.is_known() {
                if let Some(scope) = self.scopes.last_mut() {
                    scope.insert(name, value.unit);
                }
            }
        }
    }

    /// Steps over a nested `fn` item (signature and body or `;`).
    fn skip_fn_item(&mut self) {
        let mut paren = 0i32;
        while let Some(t) = self.cur() {
            match t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => paren += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => paren -= 1,
                TokenKind::Punct('{') if paren == 0 => {
                    self.skip_delim_group();
                    return;
                }
                TokenKind::Punct(';') if paren == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Steps over an item that ends with its first top-level block
    /// (`struct`/`impl`/`mod`/…), or at a `;` for the bodiless forms.
    fn skip_item_with_block(&mut self) {
        while let Some(t) = self.cur() {
            if t.is_punct('{') {
                self.skip_delim_group();
                return;
            }
            if t.is_punct(';') {
                self.bump();
                return;
            }
            if t.is_punct('<') {
                self.skip_angle_group();
                continue;
            }
            self.bump();
        }
    }

    /// Skips to just past the next `;`, honoring nested delimiters
    /// (`const N: usize = [0; 4].len();` has inner semicolons).
    fn skip_to_semi(&mut self) {
        let (mut paren, mut square, mut brace) = (0i32, 0i32, 0i32);
        while let Some(t) = self.cur() {
            match t.kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => paren -= 1,
                TokenKind::Punct('[') => square += 1,
                TokenKind::Punct(']') => square -= 1,
                TokenKind::Punct('{') => brace += 1,
                TokenKind::Punct('}') => {
                    if brace == 0 {
                        return; // end of enclosing block: malformed, stop
                    }
                    brace -= 1;
                }
                TokenKind::Punct(';') if paren == 0 && square == 0 && brace == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skips a pattern until one of `stops` at delimiter depth 0.
    fn skip_pattern_to(&mut self, stops: &[char]) {
        let (mut paren, mut square, mut brace, mut angle) = (0i32, 0i32, 0i32, 0i32);
        while let Some(t) = self.cur() {
            if let TokenKind::Punct(c) = t.kind {
                if paren == 0 && square == 0 && brace == 0 && angle <= 0 && stops.contains(&c) {
                    return;
                }
                match c {
                    '(' => paren += 1,
                    ')' => {
                        if paren == 0 {
                            return;
                        }
                        paren -= 1;
                    }
                    '[' => square += 1,
                    ']' => square -= 1,
                    '{' => brace += 1,
                    '}' => {
                        if brace == 0 {
                            return;
                        }
                        brace -= 1;
                    }
                    '<' => angle += 1,
                    '>' if !arrow_gt(self.tokens, self.i) => angle -= 1,
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Skips a type until one of `stops` at depth 0. Same shape as
    /// patterns; `<Item = X>` keeps its `=` inside the angle group.
    fn skip_type_to(&mut self, stops: &[char]) {
        self.skip_pattern_to(stops);
    }

    // ---- expression parsing, lowest to highest precedence ----

    /// Full expression; `struct_ok` permits `Path { … }` literals
    /// (false in `if`/`while`/`for`/`match` headers).
    fn expr(&mut self, struct_ok: bool) -> Val {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            let line = self.line();
            self.bump();
            return Val::unknown(line);
        }
        let v = self.assign(struct_ok);
        self.depth -= 1;
        v
    }

    fn assign(&mut self, struct_ok: bool) -> Val {
        let lhs = self.range(struct_ok);
        // Plain assignment: a lone `=` (not `==`, which the comparison
        // level consumed, and not `=>`, which belongs to a match arm).
        if self.at_punct('=') && !self.joint_pair('=', '=') && !self.joint_pair('=', '>') {
            let line = self.line();
            self.bump();
            let rhs = self.expr(struct_ok);
            self.check_additive(line, "=", &lhs, &rhs);
            return Val::unknown(line);
        }
        // Compound assignment `+=` `-=` `*=` … — the binary levels
        // refuse to consume an operator glued to `=`, so it surfaces
        // here intact.
        if let Some(op) = self.compound_assign_op() {
            let line = self.line();
            let chars = op.len();
            for _ in 0..=chars {
                self.bump(); // the operator chars and the `=`
            }
            let rhs = self.expr(struct_ok);
            if op == "+" || op == "-" {
                self.check_additive(line, &format!("{op}="), &lhs, &rhs);
            }
            return Val::unknown(line);
        }
        lhs
    }

    /// If the cursor stands on a compound-assignment operator, its
    /// operator text (without the `=`).
    fn compound_assign_op(&self) -> Option<&'static str> {
        let t = self.cur()?;
        let n1 = self.tok(self.i + 1)?;
        for (c, name) in [
            ('+', "+"),
            ('-', "-"),
            ('*', "*"),
            ('/', "/"),
            ('%', "%"),
            ('^', "^"),
        ] {
            if t.is_punct(c) && n1.is_punct('=') && t.is_joint(n1) {
                return Some(name);
            }
        }
        // `&=` and `|=` — but not `&&=`/`||=`, which do not exist.
        for (c, name) in [('&', "&"), ('|', "|")] {
            if t.is_punct(c) && n1.is_punct('=') && t.is_joint(n1) {
                return Some(name);
            }
        }
        // `<<=` / `>>=`
        let n2 = self.tok(self.i + 2)?;
        for (c, name) in [('<', "<<"), ('>', ">>")] {
            if t.is_punct(c)
                && n1.is_punct(c)
                && t.is_joint(n1)
                && n2.is_punct('=')
                && n1.is_joint(n2)
            {
                return Some(name);
            }
        }
        None
    }

    fn range(&mut self, struct_ok: bool) -> Val {
        // Prefix range `..end` / `..=end`.
        if self.joint_pair('.', '.') {
            let line = self.line();
            self.bump();
            self.bump();
            self.eat_punct('=');
            if self.range_has_end(struct_ok) {
                self.or(struct_ok);
            }
            return Val::unknown(line);
        }
        let lhs = self.or(struct_ok);
        if self.joint_pair('.', '.') {
            self.bump();
            self.bump();
            self.eat_punct('=');
            if self.range_has_end(struct_ok) {
                let rhs = self.or(struct_ok);
                self.check_additive(lhs.line, "..", &lhs, &rhs);
            }
            return Val::unknown(lhs.line);
        }
        lhs
    }

    /// Whether a range expression has an end operand (vs `a..` before a
    /// closing delimiter).
    fn range_has_end(&self, _struct_ok: bool) -> bool {
        match self.cur() {
            None => false,
            Some(t) => !matches!(
                t.kind,
                TokenKind::Punct(')')
                    | TokenKind::Punct(']')
                    | TokenKind::Punct('}')
                    | TokenKind::Punct(',')
                    | TokenKind::Punct(';')
                    | TokenKind::Punct('{')
            ),
        }
    }

    fn or(&mut self, struct_ok: bool) -> Val {
        let mut lhs = self.and(struct_ok);
        while self.joint_pair('|', '|') {
            self.bump();
            self.bump();
            self.and(struct_ok);
            lhs = Val::unknown(lhs.line);
        }
        lhs
    }

    fn and(&mut self, struct_ok: bool) -> Val {
        let mut lhs = self.comparison(struct_ok);
        while self.joint_pair('&', '&') && !self.tok(self.i + 2).is_some_and(|t| t.is_punct('=')) {
            self.bump();
            self.bump();
            self.comparison(struct_ok);
            lhs = Val::unknown(lhs.line);
        }
        lhs
    }

    fn comparison(&mut self, struct_ok: bool) -> Val {
        let lhs = self.bitor(struct_ok);
        let op: Option<(&str, usize)> = if self.joint_pair('=', '=') {
            Some(("==", 2))
        } else if self.joint_pair('!', '=') {
            Some(("!=", 2))
        } else if self.joint_pair('<', '=') {
            Some(("<=", 2))
        } else if self.joint_pair('>', '=') {
            Some((">=", 2))
        } else if self.at_punct('<') && !self.joint_pair('<', '<') {
            Some(("<", 1))
        } else if self.at_punct('>') && !self.joint_pair('>', '>') {
            Some((">", 1))
        } else {
            None
        };
        let Some((op, width)) = op else { return lhs };
        let line = self.line();
        for _ in 0..width {
            self.bump();
        }
        let rhs = self.bitor(struct_ok);
        self.check_additive(line, op, &lhs, &rhs);
        Val::unknown(line)
    }

    fn bitor(&mut self, struct_ok: bool) -> Val {
        let mut lhs = self.bitxor(struct_ok);
        while self.at_punct('|') && !self.joint_pair('|', '|') && !self.joint_pair('|', '=') {
            self.bump();
            self.bitxor(struct_ok);
            lhs = Val::unknown(lhs.line);
        }
        lhs
    }

    fn bitxor(&mut self, struct_ok: bool) -> Val {
        let mut lhs = self.bitand(struct_ok);
        while self.at_punct('^') && !self.joint_pair('^', '=') {
            self.bump();
            self.bitand(struct_ok);
            lhs = Val::unknown(lhs.line);
        }
        lhs
    }

    fn bitand(&mut self, struct_ok: bool) -> Val {
        let mut lhs = self.shift(struct_ok);
        while self.at_punct('&') && !self.joint_pair('&', '&') && !self.joint_pair('&', '=') {
            self.bump();
            self.shift(struct_ok);
            lhs = Val::unknown(lhs.line);
        }
        lhs
    }

    fn shift(&mut self, struct_ok: bool) -> Val {
        let mut lhs = self.additive(struct_ok);
        loop {
            let is_shift = (self.joint_pair('<', '<') || self.joint_pair('>', '>'))
                && !self
                    .tok(self.i + 2)
                    .is_some_and(|t| t.is_punct('=') && self.tokens[self.i + 1].is_joint(t));
            if !is_shift {
                return lhs;
            }
            self.bump();
            self.bump();
            self.additive(struct_ok);
            lhs = Val::unknown(lhs.line);
        }
    }

    fn additive(&mut self, struct_ok: bool) -> Val {
        let mut lhs = self.multiplicative(struct_ok);
        loop {
            let op = if self.at_punct('+') && !self.joint_pair('+', '=') {
                "+"
            } else if self.at_punct('-') && !self.joint_pair('-', '=') {
                "-"
            } else {
                return lhs;
            };
            let line = self.line();
            self.bump();
            let rhs = self.multiplicative(struct_ok);
            self.check_additive(line, op, &lhs, &rhs);
            lhs = Val {
                unit: additive_result(lhs.unit, rhs.unit),
                label: lhs.label.clone(),
                line: lhs.line,
            };
        }
    }

    fn multiplicative(&mut self, struct_ok: bool) -> Val {
        let mut lhs = self.cast(struct_ok);
        loop {
            let op = if self.at_punct('*') && !self.joint_pair('*', '=') {
                '*'
            } else if self.at_punct('/') && !self.joint_pair('/', '=') {
                '/'
            } else if self.at_punct('%') && !self.joint_pair('%', '=') {
                '%'
            } else {
                return lhs;
            };
            self.bump();
            let rhs = self.cast(struct_ok);
            let unit = match op {
                '*' => mul(lhs.unit, rhs.unit),
                '/' => div(lhs.unit, rhs.unit),
                // `a % b` keeps a's magnitude class.
                _ => lhs.unit,
            };
            let label = match (&lhs.label, &rhs.label) {
                (Some(a), Some(b)) => Some(format!("{a} {op} {b}")),
                _ => None,
            };
            lhs = Val {
                unit,
                label,
                line: lhs.line,
            };
        }
    }

    /// `expr as Type` — the unit survives a numeric cast.
    fn cast(&mut self, struct_ok: bool) -> Val {
        let lhs = self.unary(struct_ok);
        let mut out = lhs;
        while self.at_ident("as") {
            self.bump();
            // Cast types here are primitive paths (`f64`, `u64`,
            // `usize`): consume the path, never an angle group.
            while self.cur().is_some_and(|t| t.kind == TokenKind::Ident) {
                self.bump();
                if self.joint_pair(':', ':') {
                    self.bump();
                    self.bump();
                } else {
                    break;
                }
            }
        }
        out.line = out.line.max(1);
        out
    }

    fn unary(&mut self, struct_ok: bool) -> Val {
        let Some(t) = self.cur() else {
            return Val::unknown(0);
        };
        let line = t.line;
        if t.is_punct('-') || t.is_punct('*') {
            self.bump();
            return self.unary(struct_ok);
        }
        if t.is_punct('&') {
            self.bump();
            if self.at_ident("mut") {
                self.bump();
            }
            return self.unary(struct_ok);
        }
        if t.is_punct('!') {
            self.bump();
            self.unary(struct_ok);
            return Val::unknown(line);
        }
        self.postfix(struct_ok)
    }

    fn postfix(&mut self, struct_ok: bool) -> Val {
        let mut val = self.primary(struct_ok);
        loop {
            if self.at_punct('?') {
                self.bump();
                continue;
            }
            if self.at_punct('.') && !self.joint_pair('.', '.') {
                let Some(next) = self.tok(self.i + 1) else {
                    self.bump();
                    return val;
                };
                match next.kind {
                    TokenKind::Ident if next.text == "await" => {
                        self.bump();
                        self.bump();
                    }
                    TokenKind::Ident => {
                        let name = next.text.clone();
                        let line = next.line;
                        self.bump();
                        self.bump();
                        // Turbofish on a method: `.collect::<Vec<_>>()`.
                        if self.joint_pair(':', ':') {
                            self.bump();
                            self.bump();
                            self.skip_angle_group();
                        }
                        if self.at_punct('(') {
                            val = self.method_call(val, &name, line);
                        } else {
                            // Field access: the field's suffix is its unit.
                            let label = val
                                .label
                                .as_deref()
                                .map(|l| format!("{l}.{name}"))
                                .or(Some(name.clone()));
                            val = Val {
                                unit: ident_unit(&name),
                                label,
                                line,
                            };
                        }
                    }
                    TokenKind::Literal => {
                        // Tuple index `pair.0`.
                        self.bump();
                        self.bump();
                        val = Val::unknown(val.line);
                    }
                    _ => {
                        self.bump();
                    }
                }
                continue;
            }
            if self.at_punct('[') {
                self.bump();
                self.expr(true);
                self.eat_punct(']');
                // Indexing an ms-array yields an ms — keep the unit.
                continue;
            }
            return val;
        }
    }

    /// Parses `(arg, arg, …)` with the cursor on `(`; returns the
    /// argument Vals.
    fn call_args(&mut self) -> Vec<Val> {
        let mut args = Vec::new();
        self.bump(); // `(`
        loop {
            if self.at_punct(')') {
                self.bump();
                return args;
            }
            if self.cur().is_none() {
                return args;
            }
            let before = self.i;
            args.push(self.expr(true));
            if self.eat_punct(',') {
                continue;
            }
            if self.at_punct(')') {
                continue;
            }
            if self.i == before {
                self.bump();
            }
        }
    }

    fn method_call(&mut self, receiver: Val, name: &str, line: u32) -> Val {
        let args = self.call_args();
        if UNIT_JOINING_METHODS.contains(&name) {
            if let Some(arg) = args.first() {
                if let Some(kind) = additive_mismatch(receiver.unit, arg.unit) {
                    self.push_finding(
                        line,
                        Rule::UnitMismatch,
                        format!(
                            "{} is {} but the argument of `.{name}()` {} is {} ({})",
                            receiver.describe(),
                            render(receiver.unit),
                            arg.describe(),
                            render(arg.unit),
                            describe_kind(kind),
                        ),
                    );
                }
                return Val {
                    unit: additive_result(receiver.unit, arg.unit),
                    label: receiver.label,
                    line,
                };
            }
            return receiver;
        }
        if UNIT_PRESERVING_METHODS.contains(&name) {
            return Val {
                unit: receiver.unit,
                label: receiver.label,
                line,
            };
        }
        self.check_call_args(name, &args, line);
        // A method with a unit suffix declares its result:
        // `processor.peak_gmacs()` is a GMAC/s rate.
        Val {
            unit: ident_unit(name),
            label: Some(format!(".{name}(…)")),
            line,
        }
    }

    /// Rule (b): each argument against the callee's parameter suffix,
    /// through the workspace signature index.
    fn check_call_args(&mut self, callee: &str, args: &[Val], line: u32) {
        for (idx, arg) in args.iter().enumerate() {
            let Some((param, want)) = self.sigs.expected_param(callee, args.len(), idx) else {
                continue;
            };
            if let Some(kind) = additive_mismatch(want, arg.unit) {
                let param = param.to_string();
                self.push_finding(
                    arg.line.max(line),
                    Rule::UnitArgMismatch,
                    format!(
                        "argument {} of `{callee}(…)` {} is {} but parameter `{param}` \
                         expects {} ({})",
                        idx + 1,
                        arg.describe(),
                        render(arg.unit),
                        render(want),
                        describe_kind(kind),
                    ),
                );
            }
        }
    }

    fn primary(&mut self, struct_ok: bool) -> Val {
        let Some(t) = self.cur() else {
            return Val::unknown(0);
        };
        let line = t.line;
        match t.kind {
            TokenKind::Literal => {
                let numeric = t.text.starts_with(|c: char| c.is_ascii_digit());
                self.bump();
                Val {
                    unit: if numeric { Unit::Scalar } else { Unit::Unknown },
                    label: None,
                    line,
                }
            }
            TokenKind::Lifetime => {
                // A loop label: `'outer: loop { … }`.
                self.bump();
                self.eat_punct(':');
                Val::unknown(line)
            }
            TokenKind::Punct('(') => {
                self.bump();
                if self.at_punct(')') {
                    self.bump();
                    return Val::unknown(line);
                }
                let first = self.expr(true);
                if self.at_punct(',') {
                    while self.eat_punct(',') {
                        if self.at_punct(')') {
                            break;
                        }
                        self.expr(true);
                    }
                    self.eat_punct(')');
                    return Val::unknown(line);
                }
                self.eat_punct(')');
                first
            }
            TokenKind::Punct('[') => {
                self.bump();
                loop {
                    if self.at_punct(']') {
                        self.bump();
                        break;
                    }
                    if self.cur().is_none() {
                        break;
                    }
                    let before = self.i;
                    self.expr(true);
                    if self.eat_punct(',') || self.eat_punct(';') {
                        continue;
                    }
                    if self.i == before {
                        self.bump();
                    }
                }
                Val::unknown(line)
            }
            TokenKind::Punct('{') => {
                self.block();
                Val::unknown(line)
            }
            TokenKind::Punct('|') => self.closure(line),
            TokenKind::Punct('#') => {
                self.skip_attr();
                self.primary(struct_ok)
            }
            TokenKind::Punct(_) => Val::unknown(line),
            TokenKind::Ident => self.keyword_or_path(struct_ok, line),
        }
    }

    fn closure(&mut self, line: u32) -> Val {
        if self.joint_pair('|', '|') {
            self.bump();
            self.bump();
        } else {
            self.bump(); // opening `|`
            self.skip_pattern_to(&['|']);
            self.bump(); // closing `|`
        }
        if self.at_punct('-') && self.joint_pair('-', '>') {
            self.bump();
            self.bump();
            self.skip_type_to(&['{']);
            self.block();
            return Val::unknown(line);
        }
        self.expr(true);
        Val::unknown(line)
    }

    fn keyword_or_path(&mut self, struct_ok: bool, line: u32) -> Val {
        let Some(t) = self.cur() else {
            return Val::unknown(line);
        };
        match t.text.as_str() {
            "if" => {
                self.bump();
                if self.at_ident("let") {
                    self.bump();
                    self.skip_pattern_to(&['=']);
                    self.bump();
                }
                self.expr(false);
                self.block();
                if self.at_ident("else") {
                    self.bump();
                    if self.at_ident("if") {
                        self.keyword_or_path(struct_ok, line);
                    } else {
                        self.block();
                    }
                }
                Val::unknown(line)
            }
            "while" => {
                self.bump();
                if self.at_ident("let") {
                    self.bump();
                    self.skip_pattern_to(&['=']);
                    self.bump();
                }
                self.expr(false);
                self.block();
                Val::unknown(line)
            }
            "loop" => {
                self.bump();
                self.block();
                Val::unknown(line)
            }
            "for" => {
                self.bump();
                self.skip_pattern_to_ident("in");
                if self.at_ident("in") {
                    self.bump();
                }
                self.expr(false);
                self.block();
                Val::unknown(line)
            }
            "match" => self.match_expr(line),
            "unsafe" => {
                self.bump();
                self.block();
                Val::unknown(line)
            }
            "return" | "break" => {
                self.bump();
                if self.cur().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                    self.bump();
                }
                if self.expr_follows() {
                    self.expr(struct_ok);
                }
                Val::unknown(line)
            }
            "continue" => {
                self.bump();
                if self.cur().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                    self.bump();
                }
                Val::unknown(line)
            }
            "move" => {
                self.bump();
                if self.at_punct('|') {
                    return self.closure(line);
                }
                if self.at_punct('{') {
                    self.block();
                }
                Val::unknown(line)
            }
            "true" | "false" => {
                self.bump();
                Val::unknown(line)
            }
            _ => self.path_expr(struct_ok, line),
        }
    }

    /// Whether an expression plausibly starts at the cursor (after
    /// `return`/`break`).
    fn expr_follows(&self) -> bool {
        match self.cur() {
            None => false,
            Some(t) => !matches!(
                t.kind,
                TokenKind::Punct(';')
                    | TokenKind::Punct('}')
                    | TokenKind::Punct(')')
                    | TokenKind::Punct(']')
                    | TokenKind::Punct(',')
            ),
        }
    }

    /// Skips a `for` pattern up to the given keyword.
    fn skip_pattern_to_ident(&mut self, kw: &str) {
        let (mut paren, mut square) = (0i32, 0i32);
        while let Some(t) = self.cur() {
            if t.is_ident(kw) && paren == 0 && square == 0 {
                return;
            }
            match t.kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => paren -= 1,
                TokenKind::Punct('[') => square += 1,
                TokenKind::Punct(']') => square -= 1,
                TokenKind::Punct('{') => return, // malformed; bail
                _ => {}
            }
            self.bump();
        }
    }

    fn match_expr(&mut self, line: u32) -> Val {
        self.bump(); // `match`
        self.expr(false);
        if !self.eat_punct('{') {
            return Val::unknown(line);
        }
        loop {
            if self.at_punct('}') {
                self.bump();
                break;
            }
            if self.cur().is_none() {
                break;
            }
            let before = self.i;
            // Pattern (with alternatives and guards) up to the joint `=>`.
            self.skip_match_pattern();
            if self.joint_pair('=', '>') {
                self.bump();
                self.bump();
                self.expr(true);
                self.eat_punct(',');
            }
            if self.i == before {
                self.bump();
            }
        }
        Val::unknown(line)
    }

    /// Skips a match arm's pattern (and optional `if` guard) up to its
    /// `=>`, tracking delimiter depth.
    fn skip_match_pattern(&mut self) {
        let (mut paren, mut square, mut brace) = (0i32, 0i32, 0i32);
        while let Some(t) = self.cur() {
            if paren == 0 && square == 0 && brace == 0 && self.joint_pair('=', '>') {
                return;
            }
            match t.kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => paren -= 1,
                TokenKind::Punct('[') => square += 1,
                TokenKind::Punct(']') => square -= 1,
                TokenKind::Punct('{') => brace += 1,
                TokenKind::Punct('}') => {
                    if brace == 0 {
                        return; // end of the match block: bail
                    }
                    brace -= 1;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// An identifier path: a value, a call, a macro, or a struct
    /// literal.
    fn path_expr(&mut self, struct_ok: bool, line: u32) -> Val {
        let mut segments: Vec<String> = Vec::new();
        loop {
            match self.cur() {
                Some(t) if t.kind == TokenKind::Ident => {
                    segments.push(t.text.clone());
                    self.bump();
                }
                _ => break,
            }
            if self.joint_pair(':', ':') {
                self.bump();
                self.bump();
                if self.at_punct('<') {
                    // Turbofish `::<…>`; the path may continue
                    // (`Vec::<u8>::new`).
                    self.skip_angle_group();
                    if self.joint_pair(':', ':') {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    break;
                }
                continue;
            }
            break;
        }
        let Some(last) = segments.last().cloned() else {
            return Val::unknown(line);
        };
        let label = segments.join("::");

        // Macro invocation: opaque.
        if self.at_punct('!') && !self.joint_pair('!', '=') {
            self.bump();
            self.skip_delim_group();
            return Val::unknown(line);
        }
        // Call: check arguments, result from the callee's suffix.
        if self.at_punct('(') {
            let args = self.call_args();
            self.check_call_args(&last, &args, line);
            return Val {
                unit: ident_unit(&last),
                label: Some(format!("{label}(…)")),
                line,
            };
        }
        // Struct literal: `Path { field: expr, … }`.
        if struct_ok && self.at_punct('{') && self.looks_like_struct_literal() {
            self.struct_literal();
            return Val::unknown(line);
        }
        // A plain value: suffix first, then the symbol table.
        Val {
            unit: self.lookup(&last),
            label: Some(label),
            line,
        }
    }

    /// Whether `{ …` after a path looks like a struct literal rather
    /// than a block: `ident:`, `ident,`, `ident}`, `..`, or `}`.
    fn looks_like_struct_literal(&self) -> bool {
        let Some(first) = self.tok(self.i + 1) else {
            return false;
        };
        if first.is_punct('}') {
            return true;
        }
        if first.is_punct('.') {
            return self.tok(self.i + 2).is_some_and(|t| t.is_punct('.'));
        }
        if first.kind != TokenKind::Ident {
            return false;
        }
        match self.tok(self.i + 2) {
            Some(t) if t.is_punct(',') || t.is_punct('}') => true,
            // `field:` but not `path::`.
            Some(t) if t.is_punct(':') => !self
                .tok(self.i + 3)
                .is_some_and(|n| n.is_punct(':') && t.is_joint(n)),
            _ => false,
        }
    }

    /// Walks a struct literal body, checking `field_ms: expr` inits.
    fn struct_literal(&mut self) {
        self.bump(); // `{`
        loop {
            if self.at_punct('}') {
                self.bump();
                return;
            }
            if self.cur().is_none() {
                return;
            }
            let before = self.i;
            if self.joint_pair('.', '.') {
                // Functional update `..base`.
                self.bump();
                self.bump();
                self.expr(true);
            } else if let Some((field, line)) = match self.cur() {
                Some(t)
                    if t.kind == TokenKind::Ident
                        && self.tok(self.i + 1).is_some_and(|n| n.is_punct(':')) =>
                {
                    Some((t.text.clone(), t.line))
                }
                _ => None,
            } {
                self.bump();
                self.bump();
                let value = self.expr(true);
                let declared = ident_unit(&field);
                if let Some(kind) = additive_mismatch(declared, value.unit) {
                    self.push_finding(
                        line,
                        Rule::UnitBindingMismatch,
                        format!(
                            "field `{field}` declares {} but its value {} is {} ({})",
                            render(declared),
                            value.describe(),
                            render(value.unit),
                            describe_kind(kind),
                        ),
                    );
                }
            } else if self.cur().is_some_and(|t| t.kind == TokenKind::Ident) {
                // Shorthand `latency_ms,` — name and value agree by
                // construction.
                self.bump();
            }
            if self.eat_punct(',') {
                continue;
            }
            if self.at_punct('}') {
                continue;
            }
            if self.i == before {
                self.bump();
            }
        }
    }

    /// Rule (a): two sides meeting additively.
    fn check_additive(&mut self, line: u32, op: &str, lhs: &Val, rhs: &Val) {
        if let Some(kind) = additive_mismatch(lhs.unit, rhs.unit) {
            self.push_finding(
                line,
                Rule::UnitMismatch,
                format!(
                    "{} is {} but {} is {} in `{op}` ({})",
                    lhs.describe(),
                    render(lhs.unit),
                    rhs.describe(),
                    render(rhs.unit),
                    describe_kind(kind),
                ),
            );
        }
    }
}

fn describe_kind(kind: MismatchKind) -> &'static str {
    match kind {
        MismatchKind::Dimension => "different dimensions",
        MismatchKind::Scale => "same dimension, different scale",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::classify;
    use crate::lexer::lex;

    /// Lexes `src` as library code, indexes its own signatures, and
    /// runs the units checker.
    fn check(src: &str) -> Vec<(u32, &'static str)> {
        let path = "crates/demo/src/lib.rs";
        let lexed = lex(src);
        let ctx = FileContext::build(classify(path), &lexed);
        let mut sigs = SigIndex::new();
        sigs.add_file(&lexed);
        check_units(path, &lexed, &ctx, &sigs)
            .into_iter()
            .map(|f| (f.line, f.rule.name()))
            .collect()
    }

    #[test]
    fn adding_ms_and_mj_is_a_dimension_mismatch() {
        let hits = check("fn f(a_ms: f64, b_mj: f64) -> f64 { a_ms + b_mj }");
        assert_eq!(hits, vec![(1, "unit-mismatch")]);
    }

    #[test]
    fn adding_ms_and_ns_is_a_scale_mismatch() {
        let hits = check("fn f(a_ms: f64, b_ns: f64) -> f64 { a_ms + b_ns }");
        assert_eq!(hits, vec![(1, "unit-mismatch")]);
        assert!(check("fn f(a_ms: f64, b_ms: f64) -> f64 { a_ms + b_ms }").is_empty());
    }

    #[test]
    fn comparisons_check_units_but_literals_are_exempt() {
        let hits = check("fn f(a_ms: f64, e_mj: f64) -> bool { a_ms > e_mj }");
        assert_eq!(hits, vec![(1, "unit-mismatch")]);
        // `x_ms > 0.0` is idiomatic and must stay silent.
        assert!(check("fn f(a_ms: f64) -> bool { a_ms > 0.0 }").is_empty());
    }

    #[test]
    fn watts_times_ms_meets_millijoules_cleanly() {
        let src = "fn f(power_w: f64, latency_ms: f64, base_mj: f64) -> f64 {\n\
                   base_mj + power_w * latency_ms\n}";
        assert!(check(src).is_empty());
    }

    #[test]
    fn watts_times_ns_clashes_with_millijoules() {
        let src = "fn f(power_w: f64, latency_ns: f64, base_mj: f64) -> f64 {\n\
                   base_mj + power_w * latency_ns\n}";
        assert_eq!(check(src), vec![(2, "unit-mismatch")]);
    }

    #[test]
    fn literal_conversion_factors_silence_scale_checks() {
        // macs / (gmacs * 1e9) * 1e3 — the roofline idiom from
        // latency.rs must stay clean.
        let src = "fn f(macs: f64, peak_gmacs: f64, base_ms: f64) -> f64 {\n\
                   base_ms + macs / (peak_gmacs * 1e9) * 1e3\n}";
        assert!(check(src).is_empty());
    }

    #[test]
    fn let_binding_mismatch_is_flagged() {
        let src = "fn f(power_w: f64, latency_ms: f64) -> f64 {\n\
                   let total_ns = power_w * latency_ms;\n total_ns }";
        assert_eq!(check(src), vec![(2, "unit-binding-mismatch")]);
        let ok = "fn f(power_w: f64, latency_ms: f64) -> f64 {\n\
                  let total_mj = power_w * latency_ms;\n total_mj }";
        assert!(check(ok).is_empty());
    }

    #[test]
    fn inferred_units_flow_through_unsuffixed_lets() {
        let src = "fn f(a_ms: f64, e_mj: f64) -> f64 {\n\
                   let total = a_ms * 2.0;\n\
                   total + e_mj\n}";
        // `total` is time (scale-poisoned by the literal), `e_mj` energy.
        assert_eq!(check(src), vec![(3, "unit-mismatch")]);
    }

    #[test]
    fn call_arguments_are_checked_against_signatures() {
        let src = "fn cost(latency_ms: f64) -> f64 { latency_ms }\n\
                   fn g(elapsed_ns: f64) -> f64 { cost(elapsed_ns) }";
        assert_eq!(check(src), vec![(2, "unit-arg-mismatch")]);
        let ok = "fn cost(latency_ms: f64) -> f64 { latency_ms }\n\
                  fn g(elapsed_ms: f64) -> f64 { cost(elapsed_ms) }";
        assert!(check(ok).is_empty());
    }

    #[test]
    fn method_calls_align_with_free_signatures() {
        let src = "impl X { fn charge(&mut self, energy_mj: f64) {} }\n\
                   fn g(x: &mut X, t_ms: f64) { x.charge(t_ms); }";
        assert_eq!(check(src), vec![(2, "unit-arg-mismatch")]);
    }

    #[test]
    fn min_max_join_their_receiver_and_argument() {
        let hits = check("fn f(a_ms: f64, b_ns: f64) -> f64 { a_ms.max(b_ns) }");
        assert_eq!(hits, vec![(1, "unit-mismatch")]);
        assert!(check("fn f(a_ms: f64, b_ms: f64) -> f64 { a_ms.max(b_ms) }").is_empty());
    }

    #[test]
    fn field_access_and_suffix_methods_carry_units() {
        let src = "fn f(p: &Proc, s: &State) -> f64 { s.elapsed_ms + p.peak_gmacs() }";
        assert_eq!(check(src), vec![(1, "unit-mismatch")]);
    }

    #[test]
    fn struct_literal_fields_are_checked() {
        let src = "fn f(e_mj: f64) -> R { R { latency_ms: e_mj, cost: 0.0 } }";
        assert_eq!(check(src), vec![(1, "unit-binding-mismatch")]);
        assert!(check("fn f(t_ms: f64) -> R { R { latency_ms: t_ms } }").is_empty());
    }

    #[test]
    fn compound_and_plain_assignments_are_checked() {
        let src = "fn f(mut acc_mj: f64, t_ms: f64) -> f64 { acc_mj += t_ms; acc_mj }";
        assert_eq!(check(src), vec![(1, "unit-mismatch")]);
        let assign = "fn f(mut acc_mj: f64, t_ms: f64) -> f64 { acc_mj = t_ms; acc_mj }";
        assert_eq!(check(assign), vec![(1, "unit-mismatch")]);
    }

    #[test]
    fn division_into_ratios_compares_cleanly() {
        let src = "fn f(fc_ms: f64, total_ms: f64, share_frac: f64) -> bool {\n\
                   fc_ms / total_ms > share_frac\n}";
        assert!(check(src).is_empty());
    }

    #[test]
    fn unknown_code_shapes_stay_silent() {
        let src = "fn f(xs: &[f64]) -> f64 {\n\
                   let mut best = f64::MAX;\n\
                   for (i, x) in xs.iter().enumerate() {\n\
                     match i { 0 => best = *x, _ => {} }\n\
                   }\n\
                   xs.iter().map(|v| v * 2.0).sum::<f64>() + best\n}";
        assert!(check(src).is_empty());
    }

    #[test]
    fn test_code_and_test_files_are_skipped() {
        let src = "#[cfg(test)]\nmod t { fn f(a_ms: f64, b_mj: f64) -> f64 { a_ms + b_mj } }";
        assert!(check(src).is_empty());
        let lexed = lex("fn f(a_ms: f64, b_mj: f64) -> f64 { a_ms + b_mj }");
        let path = "crates/demo/tests/properties.rs";
        let ctx = FileContext::build(classify(path), &lexed);
        assert!(check_units(path, &lexed, &ctx, &SigIndex::new()).is_empty());
    }

    #[test]
    fn signature_parsing_survives_generics_and_arrows() {
        let lexed = lex("fn run<F: Fn() -> u64>(work: F, budget_ms: f64) -> [u8; 4] { body() }");
        let (name, sig, _) = parse_fn_signature(&lexed.tokens, 0).expect("parsed");
        assert_eq!(name, "run");
        assert_eq!(sig.params.len(), 2);
        assert_eq!(sig.params[1].name.as_deref(), Some("budget_ms"));
        assert!(sig.params[1].unit.is_known());
    }
}
