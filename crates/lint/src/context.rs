//! File-path and in-file context for the rule engine: what kind of
//! source a file is, which token ranges are `#[cfg(test)]` code, and
//! where function bodies start and end.

use crate::lexer::{LexedFile, Token, TokenKind};

/// The coarse classification of a source file by its workspace path.
///
/// Rules apply per class: e.g. wall-clock reads are legitimate in
/// benchmark drivers and binaries but not in library code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code — the default, and the strictest class.
    Lib,
    /// A binary target (`src/bin/…` or `src/main.rs`).
    Bin,
    /// An example (`examples/…`).
    Example,
    /// Integration-test code (`tests/…`).
    Test,
    /// Benchmark code: `benches/…` or anything in `crates/bench`.
    Bench,
}

/// Classifies a file by its path relative to the workspace root.
///
/// Order matters: the bench crate wins over everything (its `src/bin`
/// drivers are still benchmarks), and test/example directories win over
/// `src/bin`.
pub fn classify(rel_path: &str) -> FileClass {
    let p = rel_path.replace('\\', "/");
    if p.starts_with("crates/bench/") || p.contains("/benches/") {
        FileClass::Bench
    } else if p.starts_with("tests/") || p.contains("/tests/") {
        FileClass::Test
    } else if p.starts_with("examples/") || p.contains("/examples/") {
        FileClass::Example
    } else if p.contains("/src/bin/") || p.ends_with("src/main.rs") {
        FileClass::Bin
    } else {
        FileClass::Lib
    }
}

/// The token-index span of one function: its `fn` keyword, its body's
/// opening brace, and the matching closing brace (all inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnSpan {
    /// Index of the `fn` keyword — the span includes the signature.
    pub start: usize,
    /// Index of the body's `{`.
    pub open: usize,
    /// Index of the body's matching `}`.
    pub close: usize,
}

/// Per-token flags derived from the token stream.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// The file's path class.
    pub class: FileClass,
    /// `in_test[i]` — token `i` lies inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Every `fn`'s span (signature plus brace-matched body), outer
    /// functions before the closures and items nested inside them.
    pub fn_spans: Vec<FnSpan>,
}

impl FileContext {
    /// Builds the context for a lexed file.
    pub fn build(class: FileClass, lexed: &LexedFile) -> Self {
        FileContext {
            class,
            in_test: mark_cfg_test(&lexed.tokens),
            fn_spans: find_fn_spans(&lexed.tokens),
        }
    }
}

/// Marks every token that belongs to a `#[cfg(test)]`-gated item.
///
/// Recognizes `#[cfg(test)]` and composites like `#[cfg(all(test, …))]`:
/// any outer attribute whose argument tokens include the identifier
/// `test` under a `cfg`. The gated item extends over any further
/// attributes, then either to the first top-level `;` or over the first
/// balanced `{ … }` block (covering `mod tests { … }` and gated `fn`s
/// alike).
fn mark_cfg_test(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && matches(tokens, i + 1, "[") {
            let attr_end = match close_bracket(tokens, i + 1) {
                Some(end) => end,
                None => break,
            };
            if attr_is_cfg_test(&tokens[i + 2..attr_end]) {
                let item_end = item_end(tokens, attr_end + 1);
                for flag in flags.iter_mut().take(item_end + 1).skip(i) {
                    *flag = true;
                }
                i = item_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    flags
}

/// Whether attribute argument tokens (between `[` and `]`) denote a
/// `cfg(…)` mentioning `test`.
fn attr_is_cfg_test(args: &[Token]) -> bool {
    args.first().is_some_and(|t| t.is_ident("cfg")) && args.iter().any(|t| t.is_ident("test"))
}

/// Index of the `]` matching the `[` at `open`.
fn close_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// The index of the last token of the item starting at `start` (after
/// its attributes): the matching `}` of its first top-level block, or
/// the first `;` seen before any block.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    // Skip any further attributes.
    while i < tokens.len() && tokens[i].is_punct('#') && matches(tokens, i + 1, "[") {
        match close_bracket(tokens, i + 1) {
            Some(end) => i = end + 1,
            None => return tokens.len().saturating_sub(1),
        }
    }
    let mut brace_depth = 0usize;
    let mut seen_brace = false;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            brace_depth += 1;
            seen_brace = true;
        } else if t.is_punct('}') {
            brace_depth = brace_depth.saturating_sub(1);
            if seen_brace && brace_depth == 0 {
                return i;
            }
        } else if t.is_punct(';') && !seen_brace {
            return i;
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Finds every `fn` span (signature plus brace-matched body).
///
/// From each `fn` keyword the scanner walks to the body's `{` (skipping
/// the parameter list and any return type) and brace-matches to its
/// end; a `;` first means a bodiless trait/extern declaration.
fn find_fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let mut j = i + 1;
        let mut paren_depth = 0usize;
        let body_open = loop {
            let Some(t) = tokens.get(j) else {
                break None;
            };
            match t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => paren_depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => {
                    paren_depth = paren_depth.saturating_sub(1)
                }
                TokenKind::Punct('{') if paren_depth == 0 => break Some(j),
                TokenKind::Punct(';') if paren_depth == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = body_open else { continue };
        let mut depth = 0usize;
        let mut k = open;
        while k < tokens.len() {
            if tokens[k].is_punct('{') {
                depth += 1;
            } else if tokens[k].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        spans.push(FnSpan {
            start: i,
            open,
            close: k.min(tokens.len() - 1),
        });
    }
    spans
}

fn matches(tokens: &[Token], i: usize, punct: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| punct.chars().next().is_some_and(|c| t.is_punct(c)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn paths_classify_by_role() {
        assert_eq!(classify("crates/rl/src/policy.rs"), FileClass::Lib);
        assert_eq!(
            classify("crates/core/src/bin/autoscale-cli.rs"),
            FileClass::Bin
        );
        assert_eq!(classify("crates/bench/src/lib.rs"), FileClass::Bench);
        assert_eq!(classify("crates/bench/src/bin/fig9.rs"), FileClass::Bench);
        assert_eq!(classify("crates/sim/tests/properties.rs"), FileClass::Test);
        assert_eq!(classify("crates/sim/examples/probe.rs"), FileClass::Example);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Example);
        assert_eq!(classify("tests/integration.rs"), FileClass::Test);
        assert_eq!(classify("src/lib.rs"), FileClass::Lib);
    }

    fn test_flag_for(src: &str, ident: &str) -> bool {
        let lexed = lex(src);
        let flags = mark_cfg_test(&lexed.tokens);
        let idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident(ident))
            .expect("ident present");
        flags[idx]
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn gated() { x.unwrap(); } }\n";
        assert!(!test_flag_for(src, "live"));
        assert!(test_flag_for(src, "gated"));
        assert!(test_flag_for(src, "unwrap"));
    }

    #[test]
    fn cfg_test_with_extra_attributes_and_composites() {
        let src = "#[cfg(all(test, feature = \"x\"))]\n#[allow(dead_code)]\nfn gated() { inner(); }\nfn live() {}\n";
        assert!(test_flag_for(src, "inner"));
        assert!(!test_flag_for(src, "live"));
    }

    #[test]
    fn non_test_cfg_is_not_marked() {
        let src = "#[cfg(feature = \"serde\")]\nfn live() { body(); }\n";
        assert!(!test_flag_for(src, "body"));
    }

    #[test]
    fn fn_spans_are_brace_matched_and_include_the_signature() {
        let lexed = lex("fn a(m: Map) { if x { y(); } }\nfn b(v: Vec<u8>) -> usize { v.len() }\n");
        let spans = find_fn_spans(&lexed.tokens);
        assert_eq!(spans.len(), 2);
        let span = spans[0];
        assert!(lexed.tokens[span.start].is_ident("fn"));
        assert!(lexed.tokens[span.open].is_punct('{'));
        assert!(lexed.tokens[span.close].is_punct('}'));
        // The signature type and the nested block both belong to fn a.
        let m = lexed.tokens.iter().position(|t| t.is_ident("Map")).unwrap();
        let y = lexed.tokens.iter().position(|t| t.is_ident("y")).unwrap();
        assert!(span.start < m && m < span.open);
        assert!(span.open < y && y < span.close);
    }
}
