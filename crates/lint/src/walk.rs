//! Workspace traversal: which `.rs` files the analyzer looks at.
//!
//! The walk is rooted at the workspace directory and covers `crates/`,
//! `src/`, `examples/`, and `tests/`. It skips:
//!
//! * `target/` — build output;
//! * `vendor/` — offline stand-ins for external crates, not our code;
//! * any `fixtures/` directory under a `tests/` tree — lint fixtures
//!   *deliberately* contain findings.
//!
//! Results are sorted so runs are byte-identical across filesystems.

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", "vendor", ".git"];

/// Top-level directories the walk starts from.
const ROOTS: [&str; 4] = ["crates", "src", "examples", "tests"];

/// Collects every analyzable `.rs` file under `root`, as paths relative
/// to `root`, sorted.
///
/// # Errors
///
/// Returns the first I/O error hit while reading directories.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect(root, &dir, false, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect(root: &Path, dir: &Path, in_tests: bool, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || (in_tests && name == "fixtures") {
                continue;
            }
            collect(root, &path, in_tests || name == "tests", files)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                files.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_walk_sees_this_crate_but_not_vendor_or_fixtures() {
        // The test runs from the crate directory; the workspace root is
        // two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_sources(&root).expect("workspace is readable");
        let as_strings: Vec<String> = files
            .iter()
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .collect();
        assert!(as_strings.iter().any(|p| p == "crates/lint/src/lib.rs"));
        assert!(as_strings.iter().any(|p| p == "crates/rl/src/policy.rs"));
        assert!(!as_strings.iter().any(|p| p.starts_with("vendor/")));
        assert!(!as_strings.iter().any(|p| p.contains("/fixtures/")));
        // Sorted and duplicate-free.
        let mut sorted = as_strings.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, as_strings);
    }
}
