//! The rule engine: determinism & robustness rules over the token
//! stream, with per-statement suppression.
//!
//! ## Suppression
//!
//! Any finding can be waived with an annotation naming its rule:
//!
//! ```text
//! let t0 = Instant::now(); // lint:allow(nondeterministic-time): wall-clock stays outside digests
//! ```
//!
//! The annotation may trail the offending line or stand alone on the
//! line directly above it. A standalone annotation covers the **full
//! statement** that starts on the next line — a multi-line initializer
//! is covered to its `;`; an item (`fn`, `impl`, `match`, …) is covered
//! only to its opening `{`, so a single annotation can never blanket a
//! whole body. Everything after an optional `:` is a free-form
//! justification; several rules may be listed, comma-separated.
//! Suppressions are deliberate, reviewable diffs — the goal is that a
//! waiver is visible in the same hunk as the code it excuses.
//!
//! Two sibling directives share the same coverage geometry:
//! `// lint:hot-exempt(<why>)` waives the hot-path rules
//! ([`Rule::HotPathAlloc`] + [`Rule::UnresolvedHotCall`]) and
//! `// lint:taint-source(<why>)` *marks* (not waives) the covered
//! statement as a nondeterminism source for the taint pass.

use std::collections::{BTreeMap, BTreeSet};

use crate::context::{classify, FileClass, FileContext};
use crate::lexer::{Comment, LexedFile, Token, TokenKind};

/// The analyzer's rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads (`Instant::now`, `SystemTime`) in library code.
    NondeterministicTime,
    /// RNG construction not derived from an explicit seed
    /// (`thread_rng`, `from_entropy`, `from_os_rng`, `OsRng`, …).
    NondeterministicRng,
    /// `HashMap`/`HashSet` iteration in a function that also touches
    /// digests, serialization, or `SessionReport`.
    UnorderedIteration,
    /// `unwrap()`/`expect()`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` in non-test library code.
    PanicInLib,
    /// `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` outside
    /// binaries, examples, and benchmarks.
    PrintInLib,
    /// `+`/`-`/comparison/assignment between expressions whose
    /// suffix-inferred units provably differ (ms vs mJ, ms vs ns).
    UnitMismatch,
    /// A call argument whose unit contradicts the callee's
    /// parameter-name suffix, via the workspace signature index.
    UnitArgMismatch,
    /// `let x_ms = <mJ expr>` / `field_ms: <mJ expr>` — a binding whose
    /// declared suffix contradicts its initializer's unit.
    UnitBindingMismatch,
    /// A wall-clock/env/entropy-derived value flows (possibly through
    /// helper functions) into a digest update.
    TaintedDigest,
    /// A wall-clock/env/entropy-derived value flows into a field of a
    /// `*Report` struct or a serde-serialized struct literal.
    TaintedReportField,
    /// Heap allocation, `clone()`, `format!`, or `collect()` in a
    /// function reachable from the decision hot path.
    HotPathAlloc,
    /// A call on the decision hot path that the workspace call graph
    /// cannot resolve — the allocation contract stops being checkable.
    UnresolvedHotCall,
    /// An RNG constructed from a literal or ad-hoc value instead of the
    /// `cell_seed`/`seeded_rng` derivation discipline.
    UnderivedRngStream,
    /// Branch arms on a per-request path consume unequal RNG draw
    /// counts, so downstream draws shift between runs.
    DivergentRngDraws,
    /// The RNG draw count on a per-request path depends on policy or
    /// Q-state — schedules stop being policy-independent.
    PolicyDependentDraws,
    /// Process-global or interior-mutable state reachable from serve
    /// shard entry points, or a relaxed atomic feeding digested state.
    SharedMutableHotState,
    /// A cycle in the lock-acquisition-order graph — opposite orders on
    /// two shards can deadlock.
    LockOrderCycle,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 17] = [
        Rule::NondeterministicTime,
        Rule::NondeterministicRng,
        Rule::UnorderedIteration,
        Rule::PanicInLib,
        Rule::PrintInLib,
        Rule::UnitMismatch,
        Rule::UnitArgMismatch,
        Rule::UnitBindingMismatch,
        Rule::TaintedDigest,
        Rule::TaintedReportField,
        Rule::HotPathAlloc,
        Rule::UnresolvedHotCall,
        Rule::UnderivedRngStream,
        Rule::DivergentRngDraws,
        Rule::PolicyDependentDraws,
        Rule::SharedMutableHotState,
        Rule::LockOrderCycle,
    ];

    /// The rule's kebab-case name — what `lint:allow(…)` takes.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NondeterministicTime => "nondeterministic-time",
            Rule::NondeterministicRng => "nondeterministic-rng",
            Rule::UnorderedIteration => "unordered-iteration",
            Rule::PanicInLib => "panic-in-lib",
            Rule::PrintInLib => "print-in-lib",
            Rule::UnitMismatch => "unit-mismatch",
            Rule::UnitArgMismatch => "unit-arg-mismatch",
            Rule::UnitBindingMismatch => "unit-binding-mismatch",
            Rule::TaintedDigest => "tainted-digest",
            Rule::TaintedReportField => "tainted-report-field",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::UnresolvedHotCall => "unresolved-hot-call",
            Rule::UnderivedRngStream => "underived-rng-stream",
            Rule::DivergentRngDraws => "divergent-rng-draws",
            Rule::PolicyDependentDraws => "policy-dependent-draws",
            Rule::SharedMutableHotState => "shared-mutable-hot-state",
            Rule::LockOrderCycle => "lock-order-cycle",
        }
    }

    /// Resolves a rule from its kebab-case name.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// One-line description, shown by `--list-rules`.
    pub fn description(self) -> &'static str {
        match self {
            Rule::NondeterministicTime => {
                "wall-clock reads (Instant::now / SystemTime) in library code; \
                 time is allowed only in benches and binaries, or quarantined \
                 behind an annotated helper"
            }
            Rule::NondeterministicRng => {
                "RNG construction that is not derived from an explicit seed \
                 (thread_rng, from_entropy, from_os_rng, OsRng, rand::random)"
            }
            Rule::UnorderedIteration => {
                "HashMap/HashSet iteration inside a function that also touches \
                 digests, serialization, or SessionReport — iteration order \
                 would leak into supposedly deterministic output"
            }
            Rule::PanicInLib => {
                "unwrap/expect/panic!/unreachable! in non-test library code; \
                 return a Result or annotate the provably-infallible case"
            }
            Rule::PrintInLib => "println!/eprintln!/dbg! outside binaries, examples and benches",
            Rule::UnitMismatch => {
                "add/sub/compare/assign between expressions of provably different \
                 suffix-inferred unit (ms vs mJ is a dimension clash, ms vs ns a \
                 scale clash); mul/div combine units, so W × ms = mJ stays clean"
            }
            Rule::UnitArgMismatch => {
                "call argument whose inferred unit contradicts the callee's \
                 parameter-name suffix, resolved through a workspace-wide \
                 signature index (only when every same-arity definition agrees)"
            }
            Rule::UnitBindingMismatch => {
                "let-binding or struct-field initializer whose declared suffix \
                 contradicts the initializer's inferred unit \
                 (`let x_ms = <mJ expr>`)"
            }
            Rule::TaintedDigest => {
                "a wall-clock / env / entropy-derived value reaches a digest \
                 update (fnv1a_fold or any *digest* call/assignment), possibly \
                 laundered through helper functions — the interprocedural taint \
                 pass tracks values across workspace call edges"
            }
            Rule::TaintedReportField => {
                "a wall-clock / env / entropy-derived value reaches a field of \
                 a *Report struct or a serde-Serialize struct literal; reports \
                 must stay pure functions of (trace, seed, index)"
            }
            Rule::HotPathAlloc => {
                "heap allocation (Vec/Box/String/… ctors, vec!/format!), \
                 clone(), or collect() in a function reachable from \
                 DecisionKernel::*, *Engine::decide*, or DeviceSession::run*; \
                 waive deliberate ones with lint:hot-exempt(<why>)"
            }
            Rule::UnresolvedHotCall => {
                "a call on the decision hot path that the workspace call graph \
                 cannot resolve to a definition and that is not a known \
                 allocation-free std method — unresolved edges make the \
                 hot-path-alloc contract unverifiable"
            }
            Rule::UnderivedRngStream => {
                "RNG seeded from a literal or ad-hoc expression instead of the \
                 cell_seed/seeded_rng derivation discipline — every stream must \
                 trace back to (base_seed, cell index, stream index)"
            }
            Rule::DivergentRngDraws => {
                "branch arms in a function reachable from per-request entry \
                 points (FaultInjector methods, DecisionKernel impls, decide_*) \
                 consume unequal RNG draw counts, shifting every later draw; \
                 equalize with a burn draw or waive with lint:draws-exempt(<why>)"
            }
            Rule::PolicyDependentDraws => {
                "the RNG draw count on a per-request path branches on policy or \
                 Q-state (epsilon, argmax, q_table, …) — fault schedules must \
                 stay policy-independent so traces are comparable across agents"
            }
            Rule::SharedMutableHotState => {
                "static mut / interior-mutable statics, Mutex/RwLock/RefCell/\
                 atomics reachable from serve shard entry points, or a \
                 non-SeqCst atomic ordering in a function touching digested \
                 state — shard determinism requires per-shard isolation"
            }
            Rule::LockOrderCycle => {
                "a cycle in the workspace lock-acquisition-order graph (built \
                 from .lock()/.read()/.write() order within and across calls); \
                 two shards interleaving opposite orders can deadlock"
            }
        }
    }
}

/// One confirmed finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// What was matched, phrased for a human.
    pub message: String,
}

/// Per-line suppressions parsed from `lint:allow(…)` and
/// `lint:hot-exempt(…)` comments.
#[derive(Debug, Default)]
pub(crate) struct Suppressions {
    /// line → rules allowed on that line.
    by_line: BTreeMap<u32, Vec<Rule>>,
    /// Rule names that did not resolve, with the line of the annotation
    /// — surfaced as analyzer errors so typos cannot silently waive.
    unknown: Vec<(u32, String)>,
}

impl Suppressions {
    pub(crate) fn parse(comments: &[Comment], tokens: &[Token]) -> Self {
        let mut out = Suppressions::default();
        for comment in comments {
            // Doc comments talk *about* the annotation syntax; only
            // regular comments carry live directives.
            if is_doc_comment(&comment.text) {
                continue;
            }
            let mut rest = comment.text.as_str();
            while let Some(at) = rest.find("lint:allow(") {
                rest = &rest[at + "lint:allow(".len()..];
                let Some(close) = rest.find(')') else { break };
                for name in rest[..close].split(',') {
                    let name = name.trim();
                    if name.is_empty() {
                        continue;
                    }
                    match Rule::from_name(name) {
                        Some(rule) => out.cover(comment, tokens, rule),
                        None => out.unknown.push((comment.line, name.to_string())),
                    }
                }
                rest = &rest[close..];
            }
            // `lint:hot-exempt(<why>)` is sugar for waiving both
            // hot-path rules: an exempted allocation site must not
            // re-surface as an unresolved call.
            if comment.text.contains("lint:hot-exempt(") {
                out.cover(comment, tokens, Rule::HotPathAlloc);
                out.cover(comment, tokens, Rule::UnresolvedHotCall);
            }
            // `lint:draws-exempt(<why>)` is sugar for waiving the three
            // stream-discipline rules at once: a deliberately divergent
            // draw protocol (e.g. epsilon-greedy's exploration-only
            // bounded draw) is one decision, not three waivers.
            if comment.text.contains("lint:draws-exempt(") {
                out.cover(comment, tokens, Rule::UnderivedRngStream);
                out.cover(comment, tokens, Rule::DivergentRngDraws);
                out.cover(comment, tokens, Rule::PolicyDependentDraws);
            }
        }
        out
    }

    fn cover(&mut self, comment: &Comment, tokens: &[Token], rule: Rule) {
        for line in coverage_span(comment, tokens) {
            self.by_line.entry(line).or_default().push(rule);
        }
    }

    pub(crate) fn allows(&self, line: u32, rule: Rule) -> bool {
        self.by_line
            .get(&line)
            .is_some_and(|rules| rules.contains(&rule))
    }

    pub(crate) fn unknown(&self) -> &[(u32, String)] {
        &self.unknown
    }
}

fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

/// The lines a directive comment covers: its own line(s), plus — for a
/// standalone comment — the full span of the statement that starts on
/// the very next line.
pub(crate) fn coverage_span(comment: &Comment, tokens: &[Token]) -> std::ops::RangeInclusive<u32> {
    if !comment.owns_line {
        return comment.line..=comment.end_line;
    }
    let next = comment.end_line + 1;
    let Some(start) = tokens.iter().position(|t| t.line >= next) else {
        return comment.line..=comment.end_line;
    };
    if tokens[start].line != next {
        // The comment does not directly precede code (blank line or end
        // of file): it covers nothing beyond itself.
        return comment.line..=comment.end_line;
    }
    comment.line..=statement_end_line(tokens, start)
}

/// Keywords that open an item or block statement: coverage stops at
/// their `{` so one annotation can never waive a whole body.
const STATEMENT_HEADS: [&str; 17] = [
    "fn",
    "impl",
    "mod",
    "struct",
    "enum",
    "trait",
    "union",
    "pub",
    "if",
    "match",
    "for",
    "while",
    "loop",
    "unsafe",
    "else",
    "macro_rules",
    "extern",
];

/// The line on which the statement starting at `tokens[start]` ends:
/// the first `;` at delimiter depth 0 for expression statements, the
/// opening `{` for item/block heads, or the enclosing close brace for
/// tail expressions.
fn statement_end_line(tokens: &[Token], start: usize) -> u32 {
    let head = &tokens[start];
    let item_like = head.is_punct('#')
        || (head.kind == TokenKind::Ident && STATEMENT_HEADS.contains(&head.text.as_str()));
    let mut depth = 0i32;
    let mut last = head.line;
    for t in &tokens[start..] {
        last = t.line;
        if let TokenKind::Punct(c) = t.kind {
            match c {
                '{' if item_like && depth == 0 => return t.line,
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    if depth == 0 {
                        // Fell out of the enclosing block: the covered
                        // statement was a tail expression.
                        return last;
                    }
                    depth -= 1;
                }
                ';' if depth == 0 => return t.line,
                _ => {}
            }
        }
    }
    last
}

/// Lines covered by a `<marker>…)` directive (e.g. `lint:taint-source(`),
/// using the same statement-span geometry as suppressions.
pub(crate) fn marker_lines(comments: &[Comment], tokens: &[Token], marker: &str) -> BTreeSet<u32> {
    let mut out = BTreeSet::new();
    for comment in comments {
        if is_doc_comment(&comment.text) || !comment.text.contains(marker) {
            continue;
        }
        out.extend(coverage_span(comment, tokens));
    }
    out
}

/// Analyzes one file in isolation. The whole interprocedural pipeline
/// runs on the single file: the signature index, call graph, taint,
/// and hot-path passes all see only its own `fn`s.
///
/// `rel_path` must be workspace-relative: rule applicability is decided
/// from it (see [`classify`]).
pub fn analyze_file(rel_path: &str, source: &str) -> Vec<Finding> {
    crate::analyze_sources(vec![(rel_path.to_string(), source.to_string())])
        .report
        .findings
}

/// Analyzes one already-lexed file against a (typically
/// workspace-wide) signature index and returns its unsuppressed
/// per-file findings, in source order. Interprocedural rules
/// (taint/hot-path) need the whole workspace — see
/// [`crate::analyze_sources`].
pub fn analyze_lexed(
    rel_path: &str,
    lexed: &LexedFile,
    sigs: &crate::sigindex::SigIndex,
) -> Vec<Finding> {
    let ctx = FileContext::build(classify(rel_path), lexed);
    let suppressions = Suppressions::parse(&lexed.comments, &lexed.tokens);
    let mut findings = per_file_findings(rel_path, lexed, &ctx, sigs);
    push_unknown_rule_findings(rel_path, &suppressions, &mut findings);
    findings.retain(|f| !suppressions.allows(f.line, f.rule));
    findings.sort_by_key(|f| (f.line, f.rule));
    // Nested fn items produce overlapping spans; identical findings
    // collapse to one.
    findings.dedup();
    findings
}

/// Runs the intraprocedural (single-file) rules and returns their raw,
/// unsuppressed findings. The caller owns suppression filtering, so the
/// workspace pipeline can report waived findings separately.
pub(crate) fn per_file_findings(
    rel_path: &str,
    lexed: &LexedFile,
    ctx: &FileContext,
    sigs: &crate::sigindex::SigIndex,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_time(rel_path, lexed, ctx, &mut findings);
    check_rng(rel_path, lexed, &mut findings);
    check_unordered_iteration(rel_path, lexed, ctx, &mut findings);
    check_panic(rel_path, lexed, ctx, &mut findings);
    check_print(rel_path, lexed, ctx, &mut findings);
    findings.extend(crate::parser::check_units(rel_path, lexed, ctx, sigs));
    findings
}

/// An unresolvable rule name inside `lint:allow(…)` is itself a
/// finding: a typo there would silently waive nothing.
pub(crate) fn push_unknown_rule_findings(
    rel_path: &str,
    suppressions: &Suppressions,
    findings: &mut Vec<Finding>,
) {
    for (line, name) in suppressions.unknown() {
        findings.push(Finding {
            file: rel_path.to_string(),
            line: *line,
            rule: Rule::PanicInLib,
            message: format!(
                "unknown rule `{name}` in lint:allow — a typo here would silently waive nothing"
            ),
        });
    }
}

/// `tokens[i..]` starts the ident path `a :: b`.
fn ident_path2(tokens: &[Token], i: usize, a: &str, b: &str) -> bool {
    tokens[i].is_ident(a)
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.is_ident(b))
}

fn check_time(path: &str, lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.class != FileClass::Lib {
        return;
    }
    for (i, t) in lexed.tokens.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if ident_path2(&lexed.tokens, i, "Instant", "now") {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: Rule::NondeterministicTime,
                message: "`Instant::now()` reads the wall clock in library code".to_string(),
            });
        } else if t.is_ident("SystemTime") {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: Rule::NondeterministicTime,
                message: "`SystemTime` brings wall-clock state into library code".to_string(),
            });
        }
    }
}

/// Identifiers that construct an entropy-seeded (non-reproducible) RNG.
const ENTROPY_RNG_IDENTS: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "getrandom",
];

fn check_rng(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    // Applies to *every* class and even to test code: the workspace's
    // whole premise is seed-derived reproducibility, and a stray
    // entropy-seeded stream in a bench or test is exactly the bug the
    // digest assertions cannot localize.
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let entropy = ENTROPY_RNG_IDENTS.contains(&t.text.as_str());
        let rand_random = ident_path2(&lexed.tokens, i, "rand", "random");
        if entropy || rand_random {
            let what = if rand_random { "rand::random" } else { &t.text };
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: Rule::NondeterministicRng,
                message: format!(
                    "`{what}` constructs an entropy-seeded RNG; derive every stream from an \
                     explicit seed (see `autoscale::seeded_rng` / `cell_seed`)"
                ),
            });
        }
    }
}

/// Identifiers that mark a function as feeding deterministic output:
/// digest arithmetic, serde serialization, or the session report.
pub(crate) const SENSITIVE_IDENTS: [&str; 7] = [
    "digest",
    "trace_digest",
    "fnv1a_fold",
    "fnv1a_start",
    "serialize",
    "to_value",
    "SessionReport",
];

/// Method names whose call iterates a collection.
const ITERATION_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

fn check_unordered_iteration(
    path: &str,
    lexed: &LexedFile,
    ctx: &FileContext,
    out: &mut Vec<Finding>,
) {
    if !matches!(ctx.class, FileClass::Lib | FileClass::Bin) {
        return;
    }
    for span in &ctx.fn_spans {
        if ctx.in_test[span.start] {
            continue;
        }
        // The whole span (signature + body): a `&HashMap<…>` parameter
        // marks the function even though the type never recurs inside.
        let tokens = &lexed.tokens[span.start..=span.close];
        let unordered = tokens
            .iter()
            .any(|t| t.is_ident("HashMap") || t.is_ident("HashSet"));
        let sensitive = tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && SENSITIVE_IDENTS.contains(&t.text.as_str()));
        if !(unordered && sensitive) {
            continue;
        }
        for (k, t) in tokens.iter().enumerate() {
            let is_call = k > 0
                && tokens[k - 1].is_punct('.')
                && t.kind == TokenKind::Ident
                && ITERATION_METHODS.contains(&t.text.as_str())
                && tokens.get(k + 1).is_some_and(|n| n.is_punct('('));
            if is_call {
                out.push(Finding {
                    file: path.to_string(),
                    line: t.line,
                    rule: Rule::UnorderedIteration,
                    message: format!(
                        "`.{}()` in a function that uses HashMap/HashSet and feeds \
                         digests/serialization — iteration order is not deterministic; \
                         use BTreeMap/BTreeSet or sort first",
                        t.text
                    ),
                });
            }
        }
    }
}

/// Macro names that abort in library code.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn check_panic(path: &str, lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.class != FileClass::Lib {
        return;
    }
    for (i, t) in lexed.tokens.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let method_call = i > 0
            && lexed.tokens[i - 1].is_punct('.')
            && (t.text == "unwrap" || t.text == "expect")
            && lexed.tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
        let macro_call = PANIC_MACROS.contains(&t.text.as_str())
            && lexed.tokens.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if method_call {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: Rule::PanicInLib,
                message: format!(
                    "`.{}()` can abort library code; return a Result or annotate why it cannot fail",
                    t.text
                ),
            });
        } else if macro_call {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: Rule::PanicInLib,
                message: format!(
                    "`{}!` aborts library code; return a Result or annotate why it is unreachable",
                    t.text
                ),
            });
        }
    }
}

/// Print-family macros.
const PRINT_MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];

fn check_print(path: &str, lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.class != FileClass::Lib {
        return;
    }
    for (i, t) in lexed.tokens.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if PRINT_MACROS.contains(&t.text.as_str())
            && lexed.tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: Rule::PrintInLib,
                message: format!(
                    "`{}!` writes to stdio from library code; report through return values \
                     and let binaries do the printing",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const LIB: &str = "crates/demo/src/lib.rs";

    fn rules_hit(path: &str, src: &str) -> Vec<(u32, &'static str)> {
        analyze_file(path, src)
            .into_iter()
            .map(|f| (f.line, f.rule.name()))
            .collect()
    }

    #[test]
    fn time_fires_only_in_lib_code() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_hit(LIB, src), vec![(1, "nondeterministic-time")]);
        assert!(rules_hit("crates/bench/src/lib.rs", src).is_empty());
        assert!(rules_hit("crates/core/src/bin/cli.rs", src).is_empty());
    }

    #[test]
    fn rng_fires_everywhere_including_tests() {
        let src = "#[cfg(test)]\nmod tests { fn f() { let r = thread_rng(); } }\n";
        assert_eq!(rules_hit(LIB, src), vec![(2, "nondeterministic-rng")]);
        assert_eq!(
            rules_hit("crates/bench/src/bin/fig9.rs", src),
            vec![(2, "nondeterministic-rng")]
        );
    }

    #[test]
    fn panic_skips_tests_and_bins() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests { fn g(x: Option<u8>) { x.unwrap(); } }\n";
        assert_eq!(rules_hit(LIB, src), vec![(1, "panic-in-lib")]);
        assert!(rules_hit("crates/core/src/bin/cli.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(rules_hit(LIB, src).is_empty());
    }

    #[test]
    fn unordered_iteration_needs_both_halves() {
        let iter_only = "fn f(m: &HashMap<u8, u8>) -> usize { m.keys().count() }\n";
        assert!(rules_hit(LIB, iter_only).is_empty());
        let both = "fn f(m: &HashMap<u8, u8>, mut digest: u64) -> u64 {\n\
                    for k in m.keys() { digest = fnv1a_fold(digest, *k as u64); }\n digest }\n";
        let hits = rules_hit(LIB, both);
        assert_eq!(hits, vec![(2, "unordered-iteration")]);
    }

    #[test]
    fn vec_iteration_near_digests_is_fine() {
        let src = "fn f(v: &[u64], mut digest: u64) -> u64 {\n\
                   for k in v.iter() { digest = fnv1a_fold(digest, *k); }\n digest }\n";
        assert!(rules_hit(LIB, src).is_empty());
    }

    #[test]
    fn suppression_works_trailing_and_above() {
        let trailing =
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint:allow(panic-in-lib): infallible\n";
        assert!(rules_hit(LIB, trailing).is_empty());
        let above =
            "// lint:allow(panic-in-lib): infallible\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(rules_hit(LIB, above).is_empty());
        let wrong_rule = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint:allow(print-in-lib)\n";
        assert_eq!(rules_hit(LIB, wrong_rule), vec![(1, "panic-in-lib")]);
    }

    #[test]
    fn unknown_suppressed_rule_is_itself_a_finding() {
        let src = "fn f() {} // lint:allow(panic-in-libz)\n";
        let findings = analyze_file(LIB, src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unknown rule"));
    }

    #[test]
    fn doc_comments_carry_no_directives() {
        // Docs may *describe* the syntax without suppressing anything or
        // tripping the unknown-rule check.
        let src = "/// Waive with `lint:allow(<rule>)` or lint:allow(panic-in-lib).\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_hit(LIB, src), vec![(2, "panic-in-lib")]);
    }

    #[test]
    fn print_allows_bins_and_benches() {
        let src = "fn f() { println!(\"x\"); }\n";
        assert_eq!(rules_hit(LIB, src), vec![(1, "print-in-lib")]);
        assert!(rules_hit("crates/bench/src/lib.rs", src).is_empty());
        assert!(rules_hit("examples/quickstart.rs", src).is_empty());
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }

    #[test]
    fn standalone_suppression_covers_the_whole_statement() {
        // The annotated statement wraps over three lines; the waiver
        // must reach the `.unwrap()` on the last of them.
        let src = "fn f(x: Option<u8>) -> u8 {\n\
                   // lint:allow(panic-in-lib): checked by caller\n\
                   let v = x\n\
                       .map(|v| v + 1)\n\
                       .unwrap();\n\
                   v }\n";
        assert!(rules_hit(LIB, src).is_empty());
    }

    #[test]
    fn standalone_suppression_stops_at_an_item_brace() {
        // An annotation above `fn` covers the signature, not the body:
        // blanket whole-function waivers stay impossible.
        let src = "// lint:allow(panic-in-lib)\n\
                   fn f(x: Option<u8>) -> u8 {\n\
                       x.unwrap()\n\
                   }\n";
        assert_eq!(rules_hit(LIB, src), vec![(3, "panic-in-lib")]);
    }

    #[test]
    fn suppression_after_blank_line_covers_nothing_below() {
        let src = "// lint:allow(panic-in-lib)\n\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_hit(LIB, src), vec![(3, "panic-in-lib")]);
    }

    #[test]
    fn standalone_suppression_covers_a_tail_expression() {
        let src = "fn f(x: Option<u8>) -> u8 {\n\
                   // lint:allow(panic-in-lib): caller guarantees Some\n\
                   x.unwrap()\n\
                   }\n";
        assert!(rules_hit(LIB, src).is_empty());
    }

    #[test]
    fn hot_exempt_waives_both_hot_rules() {
        let lexed = lex("fn f() {\n let v = Vec::new(); // lint:hot-exempt(tiny, bounded)\n}\n");
        let sup = Suppressions::parse(&lexed.comments, &lexed.tokens);
        assert!(sup.allows(2, Rule::HotPathAlloc));
        assert!(sup.allows(2, Rule::UnresolvedHotCall));
        assert!(!sup.allows(2, Rule::PanicInLib));
    }

    #[test]
    fn marker_lines_use_statement_spans() {
        let lexed = lex("fn f(seed: u64) -> u64 {\n\
             // lint:taint-source(fixture)\n\
             let x = seed\n\
                 .wrapping_mul(3);\n\
             x\n}\n");
        let marked = marker_lines(&lexed.comments, &lexed.tokens, "lint:taint-source(");
        assert!(marked.contains(&2) && marked.contains(&3) && marked.contains(&4));
        assert!(!marked.contains(&5));
    }
}
