//! Property tests for the RL primitives.

use std::sync::Arc;

use autoscale_rl::{
    ConvergenceDetector, CowQTable, Dbscan, DecisionKernel, EpsilonGreedy, FrozenKernel,
    Hyperparameters, MaskSet, PackedKernel, QLearningAgent, QStore, QTable, ScalarKernel,
};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    /// Q-tables store and retrieve every written value exactly.
    #[test]
    fn qtable_store_retrieve(
        states in 1usize..20,
        actions in 1usize..20,
        writes in prop::collection::vec((0usize..20, 0usize..20, -1e6..1e6f64), 0..50),
    ) {
        let mut q = QTable::new_zeroed(states, actions);
        let mut shadow = std::collections::HashMap::new();
        for (s, a, v) in writes {
            let (s, a) = (s % states, a % actions);
            q.set(s, a, v);
            shadow.insert((s, a), v);
        }
        for ((s, a), v) in shadow {
            prop_assert_eq!(q.get(s, a), v);
        }
    }

    /// best_action returns the argmax among allowed actions.
    #[test]
    fn best_action_is_argmax(values in prop::collection::vec(-1e3..1e3f64, 1..30), seed in any::<u64>()) {
        let n = values.len();
        let mut q = QTable::new_zeroed(1, n);
        for (a, &v) in values.iter().enumerate() {
            q.set(0, a, v);
        }
        // Random mask with at least one allowed entry.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut mask: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.7)).collect();
        if !mask.iter().any(|&m| m) {
            mask[0] = true;
        }
        let (best, bv) = q.best_action(0, &mask).expect("non-empty mask");
        prop_assert!(mask[best]);
        for a in 0..n {
            if mask[a] {
                prop_assert!(values[a] <= bv + 1e-12);
            }
        }
    }

    /// Repeated updates with a constant reward converge the Q value to
    /// the fixed point r / (1 - lr_discount_term) — here with no
    /// bootstrap (single state, masked next state), simply to r.
    #[test]
    fn constant_reward_fixed_point(r in -1e3..1e3f64, lr in 0.05..=1.0f64) {
        let params = Hyperparameters { learning_rate: lr, discount: 0.0, epsilon: 0.0 };
        let mut agent = QLearningAgent::with_table(QTable::new_zeroed(1, 1), params);
        for _ in 0..200 {
            agent.update(0, 0, r, 0, &[false]);
        }
        prop_assert!((agent.store().get(0, 0) - r).abs() < 1e-3_f64.max(r.abs() * 1e-3));
    }

    /// Greedy selection after training on distinguishable rewards picks
    /// the best action.
    #[test]
    fn greedy_finds_the_best_of_k(k in 2usize..10, seed in any::<u64>()) {
        let params = Hyperparameters::paper();
        let mut agent = QLearningAgent::new(1, k, params, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(1));
        let mask = vec![true; k];
        // Rewards: action i pays -(i as f64) * 10; action 0 is best.
        for _ in 0..k * 30 {
            let a = agent.select_action(0, &mask, &mut rng).expect("mask allows all");
            agent.update(0, a, -(a as f64) * 10.0, 0, &mask);
        }
        prop_assert_eq!(agent.select_greedy(0, &mask), Some(0));
    }

    /// The epsilon-greedy policy degenerates correctly at the extremes.
    #[test]
    fn epsilon_extremes(seed in any::<u64>(), n in 2usize..10) {
        let mut q = QTable::new_zeroed(1, n);
        q.set(0, n - 1, 1.0);
        let q = QStore::Dense(q);
        let mask = vec![true; n];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // epsilon = 0: always the argmax.
        let greedy = EpsilonGreedy::greedy();
        for _ in 0..10 {
            prop_assert_eq!(greedy.choose(&q, 0, &mask, &mut rng), Some(n - 1));
        }
        // epsilon = 1: everything gets sampled eventually.
        let explore = EpsilonGreedy::new(1.0);
        let mut seen = vec![false; n];
        for _ in 0..400 {
            seen[explore.choose(&q, 0, &mask, &mut rng).expect("non-empty")] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// DBSCAN clusters partition the non-noise samples: every clustered
    /// value came from the input and clusters are ordered and disjoint.
    #[test]
    fn dbscan_clusters_partition(samples in prop::collection::vec(0.0..1e4f64, 0..80)) {
        let db = Dbscan::new(50.0, 2);
        let clusters = db.cluster(&samples);
        let mut prev_max = f64::NEG_INFINITY;
        for c in &clusters {
            prop_assert!(c.len() >= 2);
            for v in c {
                prop_assert!(samples.contains(v));
                prop_assert!(*v >= prev_max);
            }
            prev_max = *c.last().expect("non-empty cluster");
        }
    }

    /// A convergence detector never reports an index beyond the number of
    /// observations, and once converged it stays converged.
    #[test]
    fn detector_is_monotone(rewards in prop::collection::vec(-1e3..1e3f64, 0..200)) {
        let mut d = ConvergenceDetector::paper();
        let mut was_converged = false;
        for r in rewards {
            let now = d.observe(r);
            prop_assert!(!was_converged || now, "convergence must be sticky");
            was_converged = now;
        }
        if let Some(at) = d.converged_at() {
            prop_assert!(at <= d.observations());
        }
    }

    /// Q-tables survive serde exactly (float_roundtrip is enabled
    /// workspace-wide for this reason).
    #[test]
    fn qtable_serde_exact(states in 1usize..10, actions in 1usize..10, seed in any::<u64>()) {
        let q = QTable::new_random(states, actions, seed);
        let json = serde_json::to_string(&q).expect("serializes");
        let back: QTable = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(q, back);
    }

    /// The incrementally maintained argmax cache answers exactly like a
    /// brute-force row rescan — same action, same value, same
    /// lower-index tie-breaking — under arbitrary interleavings of
    /// direct writes and Algorithm 1 updates and under arbitrary masks.
    /// Values are small integers so ties happen constantly.
    #[test]
    fn argmax_cache_matches_rescan(
        states in 1usize..6,
        actions in 1usize..8,
        ops in prop::collection::vec((0usize..6, 0usize..8, 0u8..2, -3i8..=3i8), 0..100),
        seed in any::<u64>(),
    ) {
        let params = Hyperparameters {
            learning_rate: 0.9,
            discount: 0.1,
            epsilon: 0.0,
        };
        let mut agent = QLearningAgent::with_table(QTable::new_zeroed(states, actions), params);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let full = vec![true; actions];
        for (s, a, kind, v) in ops {
            let (s, a, v) = (s % states, a % actions, v as f64);
            if kind == 0 {
                agent.store_mut().set(s, a, v);
            } else {
                let next = rng.gen_range(0..states);
                agent.update(s, a, v, next, &full);
            }
            for state in 0..states {
                let mut mask: Vec<bool> = (0..actions).map(|_| rng.gen_bool(0.8)).collect();
                if !mask.iter().any(|&m| m) {
                    mask[rng.gen_range(0..actions)] = true;
                }
                for m in [&mask, &full] {
                    let mut brute: Option<(usize, f64)> = None;
                    for a2 in (0..actions).filter(|&a2| m[a2]) {
                        let v2 = agent.store().get(state, a2);
                        if brute.is_none_or(|(_, bv)| v2 > bv) {
                            brute = Some((a2, v2));
                        }
                    }
                    prop_assert_eq!(agent.store().best_action(state, m), brute);
                }
            }
        }
    }

    /// Persisted agent snapshots (the session warm-start format) survive
    /// serde exactly, and a snapshot whose value array was truncated or
    /// padded is rejected at parse time rather than panicking later.
    #[test]
    fn agent_snapshot_round_trip_and_tamper_rejection(
        states in 1usize..8,
        actions in 1usize..8,
        seed in any::<u64>(),
        extra in 1usize..4,
    ) {
        let agent = QLearningAgent::new(states, actions, Hyperparameters::paper(), seed);
        let json = serde_json::to_string(&agent).expect("serializes");
        let back: QLearningAgent = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(&agent, &back);
        // Tamper: grow the values array past states*actions.
        let tampered = json.replacen("\"values\":[", &format!("\"values\":[{}", "0.5,".repeat(extra)), 1);
        prop_assert!(serde_json::from_str::<QLearningAgent>(&tampered).is_err());
    }

    /// A copy-on-write overlay fed the same write sequence as a dense
    /// table is bit-identical to it: every Q value, every masked argmax,
    /// every kernel's epsilon-greedy pick, and the post-decision RNG
    /// state all agree. This is the determinism contract that lets
    /// serving swap storage backends without perturbing trace digests.
    #[test]
    fn overlay_is_bit_identical_to_dense(
        states in 1usize..6,
        actions in 1usize..12,
        base_seed in any::<u64>(),
        ops in prop::collection::vec((0usize..6, 0usize..12, 0u8..2, -3i8..=3i8), 0..80),
        eps_idx in 0usize..3,
        rng_seed in any::<u64>(),
    ) {
        let base = Arc::new(QTable::new_random(states, actions, base_seed));
        let mut dense = QStore::Dense((*base).clone());
        let mut cow = QStore::Cow(CowQTable::new(base));
        for &(s, a, kind, v) in &ops {
            let (s, a, v) = (s % states, a % actions, v as f64);
            if kind == 0 {
                dense.set(s, a, v);
                cow.set(s, a, v);
            } else {
                dense.add(s, a, v);
                cow.add(s, a, v);
            }
        }
        prop_assert_eq!(&dense, &cow);
        prop_assert_eq!(dense.value_digest(), cow.value_digest());
        let epsilon = [0.0, 0.5, 1.0][eps_idx];
        let kernels: [&dyn DecisionKernel; 3] = [&ScalarKernel, &PackedKernel, &FrozenKernel];
        let mut mask_rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
        use rand::Rng;
        for state in 0..states {
            let mask: Vec<bool> = (0..actions).map(|_| mask_rng.gen_bool(0.7)).collect();
            prop_assert_eq!(dense.best_action(state, &mask), cow.best_action(state, &mask));
            for a in 0..actions {
                prop_assert_eq!(dense.get(state, a), cow.get(state, a));
            }
            let mask = MaskSet::from_bools(&mask);
            for kernel in kernels {
                let mut rng_d = rand::rngs::StdRng::seed_from_u64(rng_seed ^ state as u64);
                let mut rng_c = rng_d.clone();
                let pick_d = kernel.select(&dense, state, &mask, epsilon, &mut rng_d);
                let pick_c = kernel.select(&cow, state, &mask, epsilon, &mut rng_c);
                prop_assert_eq!(pick_d, pick_c);
                prop_assert_eq!(rng_d, rng_c);
            }
        }
    }

    /// Overlay snapshots survive serde exactly and restore to the same
    /// logical table over the same base; a snapshot bound to a tampered
    /// base digest is rejected.
    #[test]
    fn overlay_snapshot_round_trip_and_tamper_rejection(
        states in 1usize..8,
        actions in 1usize..10,
        seed in any::<u64>(),
        writes in prop::collection::vec((0usize..8, 0usize..10, -3i8..=3i8), 0..40),
    ) {
        let base = Arc::new(QTable::new_random(states, actions, seed));
        let mut cow = CowQTable::new(base.clone());
        for &(s, a, v) in &writes {
            cow.set(s % states, a % actions, v as f64);
        }
        let snap = cow.snapshot();
        let json = serde_json::to_string(&snap).expect("serializes");
        let parsed = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(&snap, &parsed);
        let restored = CowQTable::from_snapshot(base.clone(), &parsed).expect("restores");
        prop_assert_eq!(restored.overlay_rows(), cow.overlay_rows());
        prop_assert_eq!(restored.to_table(), cow.to_table());
        // Tamper with the recorded base digest: restoration must refuse.
        let mut tampered = snap;
        tampered.base_digest ^= 1;
        prop_assert!(CowQTable::from_snapshot(base, &tampered).is_err());
    }
}
