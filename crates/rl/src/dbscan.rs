//! One-dimensional DBSCAN clustering and the discretizer built from it.
//!
//! Section IV-A of the paper: "When a feature has a continuous value, it is
//! difficult to define the state in a discrete manner for the lookup table
//! of Q-learning. To convert the continuous features into discrete values,
//! we applied DBSCAN clustering algorithm to each feature; DBSCAN
//! determines the optimal number of clusters for the given data."
//!
//! Each state feature is a scalar, so the clustering is one-dimensional:
//! a density-based scan over the sorted samples. Runs of points whose
//! consecutive gaps are at most `eps` and that contain at least
//! `min_points` samples form clusters; sparser points are noise and are
//! absorbed by the nearest cluster when building the [`Discretizer`].

use serde::{Deserialize, Serialize};

/// A 1-D DBSCAN clusterer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dbscan {
    /// Maximum gap between consecutive samples within one cluster.
    pub eps: f64,
    /// Minimum number of samples a cluster must contain.
    pub min_points: usize,
}

impl Dbscan {
    /// Creates a clusterer.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not positive and finite, or `min_points == 0`.
    pub fn new(eps: f64, min_points: usize) -> Self {
        assert!(eps.is_finite() && eps > 0.0, "eps must be positive");
        assert!(min_points > 0, "min_points must be positive");
        Dbscan { eps, min_points }
    }

    /// Clusters `samples`, returning each cluster as a sorted vector of
    /// the values it contains. Clusters are ordered by value. Samples in
    /// runs shorter than `min_points` are noise and are omitted.
    pub fn cluster(&self, samples: &[f64]) -> Vec<Vec<f64>> {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        // lint:allow(panic-in-lib): values were filtered with is_finite on the line above
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
        let mut clusters = Vec::new();
        let mut current: Vec<f64> = Vec::new();
        for &v in &sorted {
            match current.last() {
                Some(&last) if v - last <= self.eps => current.push(v),
                Some(_) => {
                    if current.len() >= self.min_points {
                        clusters.push(std::mem::take(&mut current));
                    } else {
                        current.clear();
                    }
                    current.push(v);
                }
                None => current.push(v),
            }
        }
        if current.len() >= self.min_points {
            clusters.push(current);
        }
        clusters
    }

    /// Clusters `samples` and derives a [`Discretizer`] whose bucket
    /// boundaries are the midpoints between adjacent clusters — this is
    /// how the Table I bucket thresholds (e.g. "small < 30, medium < 50,
    /// large < 90" CONV layers) are derived from characterization data.
    ///
    /// Returns a single-bucket discretizer when fewer than two clusters
    /// are found.
    pub fn discretizer(&self, samples: &[f64]) -> Discretizer {
        let clusters = self.cluster(samples);
        let mut boundaries = Vec::new();
        for pair in clusters.windows(2) {
            // lint:allow(panic-in-lib): cluster() only emits runs of at least min_points samples
            let left_max = *pair[0].last().expect("clusters are non-empty");
            let right_min = pair[1][0];
            boundaries.push((left_max + right_min) / 2.0);
        }
        Discretizer::new(boundaries)
    }
}

/// Maps a continuous feature value to a discrete bucket index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discretizer {
    boundaries: Vec<f64>,
}

impl Discretizer {
    /// Creates a discretizer from ascending bucket boundaries; a value `x`
    /// falls in bucket `i` where `i` is the number of boundaries `<= x`.
    ///
    /// # Panics
    ///
    /// Panics if the boundaries are not strictly ascending or not finite.
    pub fn new(boundaries: Vec<f64>) -> Self {
        for w in boundaries.windows(2) {
            assert!(w[0] < w[1], "boundaries must be strictly ascending");
        }
        assert!(
            boundaries.iter().all(|b| b.is_finite()),
            "boundaries must be finite"
        );
        Discretizer { boundaries }
    }

    /// The bucket index of `x`, in `0..=boundaries.len()`.
    ///
    /// # Example
    ///
    /// ```
    /// use autoscale_rl::Discretizer;
    /// // Table I S_CONV buckets: small (<30), medium (<50), large (<90), larger (>=90).
    /// let d = Discretizer::new(vec![30.0, 50.0, 90.0]);
    /// assert_eq!(d.bucket(14.0), 0);
    /// assert_eq!(d.bucket(49.0), 1);
    /// assert_eq!(d.bucket(53.0), 2);
    /// assert_eq!(d.bucket(94.0), 3);
    /// ```
    pub fn bucket(&self, x: f64) -> usize {
        self.boundaries.iter().filter(|&&b| x >= b).count()
    }

    /// Number of buckets (`boundaries.len() + 1`).
    pub fn buckets(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The boundary values.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_well_separated_groups() {
        let db = Dbscan::new(2.0, 2);
        let samples = [1.0, 1.5, 2.0, 10.0, 10.5, 20.0, 20.2, 20.4];
        let clusters = db.cluster(&samples);
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[0], vec![1.0, 1.5, 2.0]);
        assert_eq!(clusters[2].len(), 3);
    }

    #[test]
    fn sparse_points_are_noise() {
        let db = Dbscan::new(1.0, 3);
        let samples = [0.0, 0.5, 1.0, 50.0, 100.0, 100.5, 101.0];
        let clusters = db.cluster(&samples);
        // The lone 50.0 is noise; two proper clusters survive.
        assert_eq!(clusters.len(), 2);
        assert!(clusters.iter().all(|c| !c.contains(&50.0)));
    }

    #[test]
    fn discretizer_boundaries_sit_between_clusters() {
        let db = Dbscan::new(2.0, 2);
        let samples = [1.0, 2.0, 10.0, 11.0];
        let d = db.discretizer(&samples);
        assert_eq!(d.buckets(), 2);
        assert!((d.boundaries()[0] - 6.0).abs() < 1e-12);
        assert_eq!(d.bucket(3.0), 0);
        assert_eq!(d.bucket(9.0), 1);
    }

    #[test]
    fn single_cluster_yields_single_bucket() {
        let db = Dbscan::new(5.0, 2);
        let d = db.discretizer(&[1.0, 2.0, 3.0]);
        assert_eq!(d.buckets(), 1);
        assert_eq!(d.bucket(-100.0), 0);
        assert_eq!(d.bucket(100.0), 0);
    }

    #[test]
    fn table_i_sconv_buckets_reproduce_from_layer_counts() {
        // Characterization samples: CONV layer counts of the Table III
        // workloads cluster into four groups whose midpoints land near the
        // paper's 30 / 50 / 90 thresholds.
        let conv_counts = [49.0, 94.0, 14.0, 35.0, 23.0, 53.0, 19.0, 52.0, 28.0, 0.0];
        let db = Dbscan::new(10.0, 1);
        let d = db.discretizer(&conv_counts);
        assert_eq!(d.buckets(), 4, "boundaries: {:?}", d.boundaries());
        // The Table III models spread across all four buckets.
        assert_eq!(d.bucket(14.0), d.bucket(23.0));
        assert!(d.bucket(94.0) > d.bucket(53.0));
    }

    #[test]
    fn empty_input_yields_single_bucket() {
        let db = Dbscan::new(1.0, 1);
        let d = db.discretizer(&[]);
        assert_eq!(d.buckets(), 1);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let db = Dbscan::new(1.0, 1);
        let clusters = db.cluster(&[f64::NAN, 1.0, f64::INFINITY, 1.5]);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0], vec![1.0, 1.5]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_boundaries_panic() {
        let _ = Discretizer::new(vec![5.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn non_positive_eps_panics() {
        let _ = Dbscan::new(0.0, 1);
    }
}
