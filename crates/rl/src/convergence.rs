//! Reward-convergence detection.
//!
//! The paper's Fig. 14 shows the reward converging "in 40–50 runs" when
//! training from scratch, faster with learning transfer. Convergence is
//! declared when the windowed *median* of the reward stabilizes: the
//! relative change between consecutive window medians stays below a
//! tolerance for a number of consecutive windows. Medians, not means —
//! an epsilon-greedy agent keeps exploring forever, and a single
//! exploratory pick of a terrible target (hundreds of mJ against a
//! tens-of-mJ optimum) would swing a window mean by double-digit
//! percentages long after the policy has settled.

use serde::{Deserialize, Serialize};

/// Detects when a reward stream has converged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceDetector {
    window: usize,
    tolerance: f64,
    patience: usize,
    min_observations: usize,
    rewards: Vec<f64>,
    stable_windows: usize,
    last_level: Option<f64>,
    converged_at: Option<usize>,
}

impl ConvergenceDetector {
    /// Creates a detector that compares consecutive windows of `window`
    /// rewards and declares convergence once the relative change stays
    /// below `tolerance` for `patience` consecutive windows.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`, `patience == 0`, or `tolerance <= 0`.
    pub fn new(window: usize, tolerance: f64, patience: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(patience > 0, "patience must be positive");
        assert!(
            tolerance > 0.0 && tolerance.is_finite(),
            "tolerance must be positive"
        );
        ConvergenceDetector {
            window,
            tolerance,
            patience,
            min_observations: 0,
            rewards: Vec::new(),
            stable_windows: 0,
            last_level: None,
            converged_at: None,
        }
    }

    /// Requires at least `n` observations before convergence can be
    /// declared. An epsilon-greedy agent with a pessimistically rewarded,
    /// optimistically initialized table sweeps its whole action space
    /// once before its policy means anything; coincidentally similar
    /// reward windows *during* that sweep must not count as convergence.
    /// Agents set this to their action-space size.
    pub fn with_min_observations(mut self, n: usize) -> Self {
        self.min_observations = n;
        self
    }

    /// A detector tuned for the paper's training regime: windows of 10
    /// inference runs, three consecutive stable windows, and a 10%
    /// tolerance — wide enough that epsilon-exploration and measurement
    /// noise on a settled policy do not mask the plateau, demanding
    /// enough that the optimistic sweep's wildly varying rewards do not
    /// trigger a false convergence (adjacent sweep windows are sometimes
    /// coincidentally close, but not three times in a row).
    pub fn paper() -> Self {
        ConvergenceDetector::new(10, 0.10, 3)
    }

    /// Feeds one reward observation; returns `true` once converged.
    pub fn observe(&mut self, reward: f64) -> bool {
        // lint:hot-exempt(reward history: one amortized push per decision, read back by the convergence window)
        self.rewards.push(reward);
        if self.converged_at.is_some() {
            return true;
        }
        if self.rewards.len() < self.min_observations {
            return false;
        }
        if self.rewards.len().is_multiple_of(self.window) {
            let start = self.rewards.len() - self.window;
            let level = median(&self.rewards[start..]);
            if let Some(prev) = self.last_level {
                let scale = prev.abs().max(1e-9);
                let change = (level - prev).abs() / scale;
                if change < self.tolerance {
                    self.stable_windows += 1;
                    if self.stable_windows >= self.patience {
                        self.converged_at = Some(self.rewards.len());
                    }
                } else {
                    self.stable_windows = 0;
                }
            }
            self.last_level = Some(level);
        }
        self.converged_at.is_some()
    }

    /// Whether convergence has been declared.
    pub fn is_converged(&self) -> bool {
        self.converged_at.is_some()
    }

    /// The observation count at which convergence was declared, if any.
    pub fn converged_at(&self) -> Option<usize> {
        self.converged_at
    }

    /// Number of rewards observed so far.
    pub fn observations(&self) -> usize {
        self.rewards.len()
    }

    /// Median of the most recent full window, if one has completed.
    pub fn recent_level(&self) -> Option<f64> {
        self.last_level
    }

    /// The full reward history (for plotting training curves, Fig. 14).
    pub fn history(&self) -> &[f64] {
        &self.rewards
    }
}

/// Median of a non-empty slice.
fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec(); // lint:hot-exempt(median copies the bounded convergence window, not the full history)
                                      // lint:allow(panic-in-lib): eq. (5) rewards are finite
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite rewards")); // lint:hot-exempt(stable sort of the bounded window copy made above)
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_stream_converges_quickly() {
        let mut d = ConvergenceDetector::new(5, 0.05, 2);
        let mut converged_at = None;
        for i in 0..100 {
            if d.observe(10.0) && converged_at.is_none() {
                converged_at = Some(i + 1);
            }
        }
        // Windows at 5, 10, 15: two stable comparisons complete at 15.
        assert_eq!(converged_at, Some(15));
        assert_eq!(d.converged_at(), Some(15));
    }

    #[test]
    fn improving_stream_converges_once_it_plateaus() {
        let mut d = ConvergenceDetector::new(5, 0.05, 2);
        // Steep improvement for 30 steps, then a plateau.
        for i in 0..30 {
            assert!(!d.observe(i as f64 * 10.0));
        }
        let mut converged = false;
        for _ in 0..30 {
            converged = d.observe(300.0);
        }
        assert!(converged);
        assert!(d.converged_at().unwrap() > 30);
    }

    #[test]
    fn noisy_but_stationary_stream_converges() {
        let mut d = ConvergenceDetector::new(10, 0.05, 2);
        // ±1% deterministic jitter around 100.
        let mut converged = false;
        for i in 0..100 {
            let jitter = if i % 2 == 0 { 1.0 } else { -1.0 };
            converged = d.observe(100.0 + jitter);
        }
        assert!(converged);
    }

    #[test]
    fn occasional_exploration_spikes_do_not_block_convergence() {
        // A settled epsilon-greedy policy: mostly -20, with an exploratory
        // -400 disaster every 9th step. Means would swing; medians don't.
        let mut d = ConvergenceDetector::new(10, 0.05, 2);
        let mut converged = false;
        for i in 0..120 {
            let r = if i % 9 == 0 { -400.0 } else { -20.0 };
            converged = d.observe(r);
        }
        assert!(converged);
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn history_is_retained() {
        let mut d = ConvergenceDetector::paper();
        for i in 0..7 {
            d.observe(i as f64);
        }
        assert_eq!(d.history().len(), 7);
        assert_eq!(d.observations(), 7);
        assert_eq!(d.recent_level(), None); // no full window of 10 yet
    }

    #[test]
    fn stays_converged_after_detection() {
        let mut d = ConvergenceDetector::new(2, 0.5, 1);
        for _ in 0..4 {
            d.observe(1.0);
        }
        assert!(d.is_converged());
        // A wild observation afterwards does not un-converge it.
        assert!(d.observe(1000.0));
    }

    #[test]
    fn min_observations_gates_convergence() {
        let mut d = ConvergenceDetector::new(5, 0.5, 1).with_min_observations(40);
        // A perfectly flat stream: without the gate this converges at 10.
        let mut converged_at = None;
        for i in 0..60 {
            if d.observe(1.0) && converged_at.is_none() {
                converged_at = Some(i + 1);
            }
        }
        let at = converged_at.expect("eventually converges");
        assert!(at >= 40, "converged at {at}, before the gate");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = ConvergenceDetector::new(0, 0.1, 1);
    }
}
