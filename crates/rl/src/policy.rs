//! The epsilon-greedy exploration policy.
//!
//! Section IV of the paper: "If an RL agent always exploits an action with
//! the temporary highest reward, it can get stuck in local optima. On the
//! other hand, if it keeps exploring all possible actions, convergence may
//! get slower. To solve this problem, we employ the epsilon-greedy
//! algorithm [...] for its effectiveness and simplicity." The paper uses
//! ε = 0.1, following prior RL work in this domain.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::qstore::QStore;

/// An epsilon-greedy action-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonGreedy {
    epsilon: f64,
}

impl EpsilonGreedy {
    /// Creates a policy with exploration probability `epsilon` ∈ [0, 1].
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside [0, 1] or not finite.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && (0.0..=1.0).contains(&epsilon),
            "epsilon must be in [0, 1]"
        );
        EpsilonGreedy { epsilon }
    }

    /// The paper's value: ε = 0.1.
    pub fn paper() -> Self {
        EpsilonGreedy::new(0.1)
    }

    /// A purely greedy policy (ε = 0), used after training converges.
    pub fn greedy() -> Self {
        EpsilonGreedy::new(0.0)
    }

    /// The exploration probability.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Chooses an action for `state`: with probability ε a uniformly random
    /// allowed action (exploration), otherwise the allowed action with the
    /// largest Q value (exploitation).
    ///
    /// Returns `None` if the mask allows no action.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len()` differs from the table's action count.
    pub fn choose(
        &self,
        q: &QStore,
        state: usize,
        mask: &[bool],
        rng: &mut StdRng,
    ) -> Option<usize> {
        assert_eq!(
            mask.len(),
            q.actions(),
            "mask length must equal action count"
        );
        // Allocation-free: the serving hot path calls this per decision,
        // so the allowed set is counted and indexed through the mask
        // instead of materializing a Vec. The RNG draw order (one f64,
        // then one bounded range) matches the original Vec-based
        // implementation, keeping trained traces bit-identical.
        let allowed = mask.iter().filter(|&&m| m).count();
        if allowed == 0 {
            return None;
        }
        // lint:draws-exempt(the pinned epsilon-greedy protocol: one uniform draw per decision, one bounded draw on the exploration arm only; digest tests freeze it)
        if rng.gen::<f64>() < self.epsilon {
            let k = rng.gen_range(0..allowed);
            mask.iter()
                .enumerate()
                .filter_map(|(a, &m)| m.then_some(a))
                .nth(k)
        } else {
            q.best_action(state, mask).map(|(a, _)| a)
        }
    }
}

impl Default for EpsilonGreedy {
    fn default() -> Self {
        EpsilonGreedy::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qtable::QTable;
    use rand::SeedableRng;

    fn table() -> QStore {
        let mut q = QTable::new_zeroed(1, 4);
        q.set(0, 2, 10.0);
        QStore::Dense(q)
    }

    #[test]
    fn greedy_always_picks_the_best() {
        let q = table();
        let policy = EpsilonGreedy::greedy();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(policy.choose(&q, 0, &[true; 4], &mut rng), Some(2));
        }
    }

    #[test]
    fn exploration_rate_is_close_to_epsilon() {
        let q = table();
        let policy = EpsilonGreedy::new(0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let non_greedy = (0..n)
            .filter(|_| policy.choose(&q, 0, &[true; 4], &mut rng) != Some(2))
            .count();
        // Exploration picks uniformly among 4 actions, so 3/4 of explored
        // steps deviate from the greedy choice: expect 0.3 * 0.75 = 0.225.
        let rate = non_greedy as f64 / n as f64;
        assert!((rate - 0.225).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn masked_actions_are_never_selected() {
        let q = table();
        let policy = EpsilonGreedy::new(1.0); // always explore
        let mut rng = StdRng::seed_from_u64(2);
        let mask = [true, false, false, true];
        for _ in 0..200 {
            let a = policy.choose(&q, 0, &mask, &mut rng).unwrap();
            assert!(mask[a]);
        }
    }

    #[test]
    fn empty_mask_yields_none() {
        let q = table();
        let policy = EpsilonGreedy::paper();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(policy.choose(&q, 0, &[false; 4], &mut rng), None);
    }

    #[test]
    fn default_is_paper_epsilon() {
        assert_eq!(EpsilonGreedy::default().epsilon(), 0.1);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0, 1]")]
    fn invalid_epsilon_panics() {
        let _ = EpsilonGreedy::new(1.5);
    }
}
