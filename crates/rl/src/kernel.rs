//! Batched decision kernels: interchangeable argmax engines for the
//! serving hot path.
//!
//! A serving decision is an epsilon-greedy draw over one Q-table row
//! under a feasibility mask. [`DecisionKernel`] factors that draw into a
//! fixed RNG protocol (shared by every kernel, so streams never diverge)
//! plus a swappable masked-argmax routine — the part worth racing.
//! Kernels read through [`QStore`], so the dense table and the
//! copy-on-write overlay serve through identical code:
//!
//! * [`ScalarKernel`] — the reference. Delegates to
//!   [`QStore::best_action`], i.e. the incremental argmax cache with a
//!   masked linear scan as fallback. Every other kernel is defined as
//!   "bit-identical to this one".
//! * [`PackedKernel`] — walks the table's cache-line-aligned lanes
//!   directly, consuming the mask as packed `u64` words: whole words and
//!   bytes of masked-out actions are skipped with one integer compare,
//!   and the per-lane core is branchless select arithmetic.
//! * [`FrozenKernel`] — the post-convergence serving specialization.
//!   With epsilon frozen to zero the exploration branch is dead; the
//!   kernel compares order-preserving `u64` keys (a sign-flip remap of
//!   the IEEE 754 bits) instead of `f64`s, so the scan is pure integer
//!   arithmetic. The remap is exact — zero quantization error — and
//!   total on every non-NaN value; learned Q-values are finite by
//!   construction (finite rewards, finite init), which is the kernel's
//!   documented precondition.
//!
//! ## The cached fast path
//!
//! The first kernel race exposed a regression: at the paper's 66-action
//! rows (9 lanes), `packed` and `frozen` sustained ~2.0M decisions/s
//! against `scalar`'s ~3.2M. The loss was not in the lane walk — it was
//! that scalar answers most decisions from the table's O(1) per-row
//! argmax cache (the global maximizer is usually feasible), while the
//! lane kernels re-scanned all 72 slots every decision. Both lane
//! kernels therefore now take the same cache shortcut the scalar
//! reference takes: if the cached lowest-index global maximizer is
//! allowed by the mask, it *is* the masked argmax (no allowed action can
//! beat the global maximum, and no lower-index tie can exist below the
//! cached index by construction), so it is returned without touching the
//! lanes. Only decisions whose mask excludes the cached maximizer pay
//! for the walk. The shortcut is exactly the branch
//! [`QStore::best_action`] already takes, so bit-identity is preserved
//! by construction — and for `frozen`, `sort_key` ordering coincides
//! with `f64` ordering on the finite values the precondition guarantees.
//!
//! ## The determinism contract
//!
//! Every kernel must be decision-for-decision identical to
//! [`ScalarKernel`] — same selected action *and* same number of RNG
//! draws — for any Q-table, mask, and epsilon. Tie-breaking is toward
//! the lowest action index everywhere. `crates/rl/tests/properties.rs`
//! pins the contract with property tests over arbitrary tables, masks
//! (including all-masked rows and exact ties), and epsilon values.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::qstore::QStore;
use crate::qtable::LANES;

/// Mask words are `u64`s: 64 action bits, or eight 8-bit lane groups.
const WORD_BITS: usize = 64;
/// Lane groups (bytes) per mask word.
const LANES_PER_WORD: usize = WORD_BITS / LANES;

/// A feasibility mask in the three shapes the kernels consume.
///
/// Built once per workload at engine construction and reused for every
/// decision, so the hot path never re-derives a representation:
///
/// * `bools` — the classic `&[bool]` view for the scalar path and the
///   public mask API;
/// * `words` — the same bits packed little-endian into `u64`s (bit `i %
///   64` of word `i / 64` is action `i`), with the padding bits past the
///   action count zero so packed kernels can skip whole words;
/// * `allowed` — the allowed action indices in ascending order, making
///   "the k-th allowed action" (the exploration draw) O(1) instead of a
///   linear `nth` walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskSet {
    bools: Vec<bool>,
    words: Vec<u64>,
    allowed: Vec<u32>,
}

impl MaskSet {
    /// Packs a `&[bool]` feasibility mask into all three views.
    pub fn from_bools(mask: &[bool]) -> Self {
        let mut words = vec![0u64; mask.len().div_ceil(WORD_BITS)];
        let mut allowed = Vec::new();
        for (i, &allow) in mask.iter().enumerate() {
            if allow {
                words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
                allowed.push(i as u32);
            }
        }
        MaskSet {
            bools: mask.to_vec(),
            words,
            allowed,
        }
    }

    /// Number of actions the mask covers (allowed or not).
    pub fn len(&self) -> usize {
        self.bools.len()
    }

    /// Whether the mask covers zero actions.
    pub fn is_empty(&self) -> bool {
        self.bools.is_empty()
    }

    /// Number of allowed actions.
    pub fn allowed_count(&self) -> usize {
        self.allowed.len()
    }

    /// Whether `action` is allowed.
    pub fn allows(&self, action: usize) -> bool {
        self.bools[action]
    }

    /// The `&[bool]` view, for the scalar path and existing APIs.
    pub fn bools(&self) -> &[bool] {
        &self.bools
    }

    /// The packed `u64` view; padding bits are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The `k`-th allowed action in ascending index order.
    ///
    /// # Panics
    ///
    /// Panics if `k >= allowed_count()`.
    pub fn nth_allowed(&self, k: usize) -> usize {
        self.allowed[k] as usize
    }
}

/// Which decision kernel serves a fleet. Carried by serving configs and
/// benchmark records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelKind {
    /// [`ScalarKernel`]: the argmax-cache reference path.
    Scalar,
    /// [`PackedKernel`]: lane-walking branchless masked argmax.
    Packed,
    /// [`FrozenKernel`]: greedy serving on integer sort keys.
    Frozen,
}

impl KernelKind {
    /// Every kernel, reference first.
    pub const ALL: [KernelKind; 3] = [KernelKind::Scalar, KernelKind::Packed, KernelKind::Frozen];

    /// The kernel's lowercase name, as used on CLIs and in reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Packed => "packed",
            KernelKind::Frozen => "frozen",
        }
    }

    /// Resolves a kernel from its lowercase name.
    pub fn parse(name: &str) -> Option<KernelKind> {
        KernelKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The epsilon-greedy RNG protocol, shared verbatim by every kernel so
/// the streams feeding a session can never diverge between kernels:
/// one uniform `f64` per decision, plus one bounded integer draw on the
/// exploration branch. This is the same draw order as
/// [`crate::EpsilonGreedy::choose`], which serving used before kernels
/// existed — replayed seeds keep reproducing the same fleets.
fn select_epsilon_greedy<K: DecisionKernel + ?Sized>(
    kernel: &K,
    q: &QStore,
    state: usize,
    mask: &MaskSet,
    epsilon: f64,
    rng: &mut StdRng,
) -> Option<usize> {
    let allowed = mask.allowed_count();
    if allowed == 0 {
        return None;
    }
    // lint:draws-exempt(the pinned epsilon-greedy protocol: one uniform draw per decision, one bounded draw on the exploration arm only; digest tests freeze it)
    if rng.gen::<f64>() < epsilon {
        let k = rng.gen_range(0..allowed);
        Some(mask.nth_allowed(k))
    } else {
        kernel.argmax(q, state, mask)
    }
}

/// A masked argmax engine over Q-table rows.
///
/// Implementations must satisfy the determinism contract in the module
/// docs: [`DecisionKernel::argmax`] returns exactly what
/// [`QStore::best_action`] would (the lowest-index maximizer among
/// allowed actions), and [`DecisionKernel::select`] consumes exactly the
/// RNG draws the shared protocol prescribes.
pub trait DecisionKernel {
    /// Which kernel this is, for dispatch tables and reports.
    fn kind(&self) -> KernelKind;

    /// The lowest-index allowed maximizer of one row, or `None` when the
    /// mask allows nothing.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range or `mask.len()` differs from
    /// the store's action count.
    fn argmax(&self, q: &QStore, state: usize, mask: &MaskSet) -> Option<usize>;

    /// One epsilon-greedy decision: `None` when the mask allows nothing,
    /// otherwise a uniformly random allowed action with probability
    /// `epsilon` and `argmax` otherwise.
    fn select(
        &self,
        q: &QStore,
        state: usize,
        mask: &MaskSet,
        epsilon: f64,
        rng: &mut StdRng,
    ) -> Option<usize> {
        select_epsilon_greedy(self, q, state, mask, epsilon, rng)
    }
}

/// The reference kernel: the Q-table's own argmax cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarKernel;

impl DecisionKernel for ScalarKernel {
    fn kind(&self) -> KernelKind {
        KernelKind::Scalar
    }

    fn argmax(&self, q: &QStore, state: usize, mask: &MaskSet) -> Option<usize> {
        q.best_action(state, mask.bools()).map(|(a, _)| a)
    }
}

/// Lane-walking kernel: packed mask words over cache-aligned Q-lanes.
///
/// The row is scanned one 64-bit mask word (eight lanes) at a time.
/// All-zero words and all-zero lane bytes — entire stretches of
/// infeasible actions — cost one integer compare each. Within a live
/// lane the eight slots run through branchless select arithmetic: the
/// "current best" is replaced exactly when the scalar scan would have
/// replaced it (`allowed && (first allowed so far || value strictly
/// greater)`), so tie-breaking and degenerate rows (all `-inf`, NaN
/// basis) agree with the reference bit for bit. Like the reference, the
/// walk is only the slow path: the cached per-row maximizer answers
/// first whenever the mask allows it (see "The cached fast path" above).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackedKernel;

impl DecisionKernel for PackedKernel {
    fn kind(&self) -> KernelKind {
        KernelKind::Packed
    }

    fn argmax(&self, q: &QStore, state: usize, mask: &MaskSet) -> Option<usize> {
        assert_eq!(
            mask.len(),
            q.actions(),
            "mask length must equal action count"
        );
        let cached = q.row_max_entry(state);
        if mask.allows(cached.action as usize) {
            return Some(cached.action as usize);
        }
        let lanes = q.row_lines(state);
        let mut best_value = 0.0f64;
        let mut best_index = usize::MAX;
        let mut found = false;
        for (w, &word) in mask.words().iter().enumerate() {
            if word == 0 {
                continue;
            }
            for c in 0..LANES_PER_WORD {
                let bits = (word >> (c * LANES)) & 0xff;
                if bits == 0 {
                    // Skipping before indexing also keeps the final,
                    // partial word in bounds: its padding bits are zero.
                    continue;
                }
                let lane = &lanes[w * LANES_PER_WORD + c].0;
                let base = w * WORD_BITS + c * LANES;
                // Manually unrolled by the constant bound; each slot is
                // two conditional moves, no data-dependent branches.
                for (i, &v) in lane.iter().enumerate() {
                    let allow = (bits >> i) & 1 == 1;
                    let take = allow && (!found || v > best_value);
                    best_value = if take { v } else { best_value };
                    best_index = if take { base + i } else { best_index };
                    found |= allow;
                }
            }
        }
        found.then_some(best_index)
    }
}

/// Maps an `f64` to a `u64` that sorts in the same order.
///
/// The usual sign-flip trick: non-negative values get their sign bit
/// set (placing them above all negatives), negative values are
/// bitwise-complemented (reversing their two's-complement-style
/// ordering). Adding `0.0` first collapses `-0.0` onto `+0.0` so the
/// two zeros compare equal, exactly as `f64` comparison treats them.
/// The map is a bijection on non-NaN values — order is preserved
/// *exactly*, so the frozen kernel's quantization error is zero.
fn sort_key(v: f64) -> u64 {
    let bits = (v + 0.0).to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Greedy serving kernel for frozen (post-convergence) policies.
///
/// Serving a converged policy pins epsilon to zero, which makes the
/// exploration branch statically dead: `select` consumes the protocol's
/// uniform draw (stream compatibility) and jumps straight to the
/// argmax. The argmax itself compares [`sort_key`]-mapped `u64`s, an
/// exact order-preserving integer recoding of the row.
///
/// Precondition: the table holds no NaN. Learned Q-values are finite by
/// construction; `sort_key` would order NaN above `+inf`, diverging
/// from the reference's "NaN never wins a strict comparison" behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrozenKernel;

impl DecisionKernel for FrozenKernel {
    fn kind(&self) -> KernelKind {
        KernelKind::Frozen
    }

    fn argmax(&self, q: &QStore, state: usize, mask: &MaskSet) -> Option<usize> {
        assert_eq!(
            mask.len(),
            q.actions(),
            "mask length must equal action count"
        );
        let cached = q.row_max_entry(state);
        if mask.allows(cached.action as usize) {
            return Some(cached.action as usize);
        }
        let lanes = q.row_lines(state);
        let mut best_key = 0u64;
        let mut best_index = usize::MAX;
        let mut found = false;
        for (w, &word) in mask.words().iter().enumerate() {
            if word == 0 {
                continue;
            }
            for c in 0..LANES_PER_WORD {
                let bits = (word >> (c * LANES)) & 0xff;
                if bits == 0 {
                    continue;
                }
                let lane = &lanes[w * LANES_PER_WORD + c].0;
                let base = w * WORD_BITS + c * LANES;
                for (i, &v) in lane.iter().enumerate() {
                    let allow = (bits >> i) & 1 == 1;
                    let key = sort_key(v);
                    let take = allow && (!found || key > best_key);
                    best_key = if take { key } else { best_key };
                    best_index = if take { base + i } else { best_index };
                    found |= allow;
                }
            }
        }
        found.then_some(best_index)
    }

    fn select(
        &self,
        q: &QStore,
        state: usize,
        mask: &MaskSet,
        epsilon: f64,
        rng: &mut StdRng,
    ) -> Option<usize> {
        // lint:draws-exempt(frozen serving burns the protocol's one uniform draw below, so both arms leave the stream aligned; digest tests freeze it)
        if epsilon != 0.0 {
            // Pre-freeze traffic (exploration still on) takes the shared
            // protocol; the specialization below is for serving only.
            return select_epsilon_greedy(self, q, state, mask, epsilon, rng);
        }
        if mask.allowed_count() == 0 {
            return None;
        }
        // The protocol's exploration draw is consumed so the stream stays
        // aligned with every other kernel, but its comparison against a
        // zero epsilon can never explore — skip straight to the argmax.
        let _ = rng.gen::<f64>();
        self.argmax(q, state, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qtable::QTable;
    use rand::SeedableRng;

    fn mask_of(bools: &[bool]) -> MaskSet {
        MaskSet::from_bools(bools)
    }

    #[test]
    fn mask_set_views_agree() {
        let bools = [true, false, true, true, false];
        let m = mask_of(&bools);
        assert_eq!(m.len(), 5);
        assert!(!m.is_empty());
        assert_eq!(m.allowed_count(), 3);
        assert_eq!(m.bools(), &bools);
        assert_eq!(m.words(), &[0b01101]);
        assert_eq!(m.nth_allowed(0), 0);
        assert_eq!(m.nth_allowed(1), 2);
        assert_eq!(m.nth_allowed(2), 3);
        assert!(m.allows(0) && !m.allows(1));
    }

    #[test]
    fn mask_set_spans_multiple_words() {
        let mut bools = vec![false; 130];
        bools[0] = true;
        bools[64] = true;
        bools[129] = true;
        let m = mask_of(&bools);
        assert_eq!(m.words().len(), 3);
        assert_eq!(m.words()[0], 1);
        assert_eq!(m.words()[1], 1);
        assert_eq!(m.words()[2], 1 << 1);
        assert_eq!(m.allowed_count(), 3);
        assert_eq!(m.nth_allowed(2), 129);
    }

    #[test]
    fn kernel_kind_names_round_trip() {
        for kind in KernelKind::ALL {
            assert_eq!(KernelKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(KernelKind::parse("simd"), None);
    }

    #[test]
    fn sort_key_preserves_order() {
        let values = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for (i, &a) in values.iter().enumerate() {
            for &b in &values[i..] {
                assert_eq!(sort_key(a) > sort_key(b), a > b, "order of {a} vs {b}");
                assert_eq!(sort_key(a) == sort_key(b), a == b, "equality of {a} vs {b}");
            }
        }
    }

    fn kernels() -> [Box<dyn DecisionKernel>; 3] {
        [
            Box::new(ScalarKernel),
            Box::new(PackedKernel),
            Box::new(FrozenKernel),
        ]
    }

    #[test]
    fn all_kernels_agree_on_a_masked_row() {
        let mut q = QTable::new_random(4, 66, 11);
        q.set(2, 40, 3.0);
        q.set(2, 13, 3.0); // lower-index tie must win
        let q = QStore::Dense(q);
        let mut bools = vec![true; 66];
        bools[0] = false;
        let m = mask_of(&bools);
        for kernel in kernels() {
            assert_eq!(kernel.argmax(&q, 2, &m), Some(13), "{}", kernel.kind());
        }
    }

    #[test]
    fn all_kernels_bypass_the_cache_when_its_winner_is_masked() {
        // The cached fast path answers when the global maximizer is
        // allowed; masking it out must fall back to the full lane walk
        // and still match the reference, tie-broken at the lowest index.
        let mut q = QTable::new_zeroed(1, 66);
        q.set(0, 30, 9.0); // the cached maximizer
        q.set(0, 12, 4.0);
        q.set(0, 50, 4.0);
        let q = QStore::Dense(q);
        let mut bools = vec![true; 66];
        bools[30] = false;
        let m = mask_of(&bools);
        for kernel in kernels() {
            assert_eq!(kernel.argmax(&q, 0, &m), Some(12), "{}", kernel.kind());
        }
    }

    #[test]
    fn kernels_agree_across_storage_backends() {
        use crate::qstore::CowQTable;
        use std::sync::Arc;

        let base = Arc::new(QTable::new_random(4, 66, 31));
        let mut dense = (*base).clone();
        let mut cow = CowQTable::new(base);
        for (s, a, v) in [(0, 3, 2.0), (2, 64, 5.0), (2, 1, 5.0), (3, 0, -9.0)] {
            dense.set(s, a, v);
            cow.set(s, a, v);
        }
        let dense = QStore::Dense(dense);
        let cow = QStore::Cow(cow);
        let mut bools = vec![true; 66];
        bools[1] = false;
        for mask in [mask_of(&[true; 66]), mask_of(&bools)] {
            for state in 0..4 {
                for kernel in kernels() {
                    assert_eq!(
                        kernel.argmax(&dense, state, &mask),
                        kernel.argmax(&cow, state, &mask),
                        "{} state {state}",
                        kernel.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn all_kernels_return_none_on_an_all_masked_row() {
        let q = QStore::Dense(QTable::new_random(2, 10, 3));
        let m = mask_of(&[false; 10]);
        for kernel in kernels() {
            assert_eq!(kernel.argmax(&q, 1, &m), None, "{}", kernel.kind());
            let mut rng = StdRng::seed_from_u64(5);
            assert_eq!(
                kernel.select(&q, 1, &m, 0.5, &mut rng),
                None,
                "{}",
                kernel.kind()
            );
            // An empty mask consumes no draws.
            assert_eq!(rng, StdRng::seed_from_u64(5));
        }
    }

    #[test]
    fn packed_kernel_handles_sparse_masks() {
        // Only the last action of a 66-wide row is allowed: the scan
        // must skip the zero words/bytes and still land on it.
        let mut q = QTable::new_zeroed(1, 66);
        q.set(0, 65, -5.0);
        let q = QStore::Dense(q);
        let mut bools = vec![false; 66];
        bools[65] = true;
        let m = mask_of(&bools);
        assert_eq!(PackedKernel.argmax(&q, 0, &m), Some(65));
        assert_eq!(FrozenKernel.argmax(&q, 0, &m), Some(65));
    }

    #[test]
    fn select_consumes_identical_draws_across_kernels() {
        // Same seed, same decisions, same post-call RNG state: the
        // kernels are stream-interchangeable mid-session.
        let q = QStore::Dense(QTable::new_random(8, 66, 21));
        let mut bools = vec![true; 66];
        bools[7] = false;
        let m = mask_of(&bools);
        for epsilon in [0.0, 0.1, 1.0] {
            let mut reference = StdRng::seed_from_u64(99);
            let mut picks = Vec::new();
            for state in 0..8 {
                picks.push(ScalarKernel.select(&q, state, &m, epsilon, &mut reference));
            }
            for kernel in kernels() {
                let mut rng = StdRng::seed_from_u64(99);
                for (state, &expected) in picks.iter().enumerate() {
                    let got = kernel.select(&q, state, &m, epsilon, &mut rng);
                    assert_eq!(got, expected, "{} eps={epsilon}", kernel.kind());
                }
                assert_eq!(rng, reference, "{} stream drift", kernel.kind());
            }
        }
    }

    #[test]
    fn frozen_kernel_orders_negative_rows_correctly() {
        // All-negative rows are the common case mid-training (energy
        // costs dominate rewards); the sign-flip key must order them.
        let mut q = QTable::new_zeroed(1, 5);
        for (a, v) in [(0, -900.0), (1, -3.5), (2, -3.25), (3, -700.0), (4, -3.25)] {
            q.set(0, a, v);
        }
        let q = QStore::Dense(q);
        let m = mask_of(&[true; 5]);
        assert_eq!(FrozenKernel.argmax(&q, 0, &m), Some(2));
        // Mask out the winner: next best, lowest-index tie.
        let m = mask_of(&[true, true, false, true, true]);
        assert_eq!(FrozenKernel.argmax(&q, 0, &m), Some(4));
        assert_eq!(PackedKernel.argmax(&q, 0, &m), Some(4));
        assert_eq!(ScalarKernel.argmax(&q, 0, &m), Some(4));
    }
}
