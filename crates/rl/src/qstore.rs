//! Tiered Q-value storage: the dense [`QTable`] plus a copy-on-write
//! overlay backend, behind one [`QStore`] front.
//!
//! ## Why
//!
//! A fleet of serving sessions is memory-bound long before it is
//! CPU-bound: every session owning a dense paper-scale table
//! (3,072 × 66 → ~1.69 MB of lanes) puts 10k sessions at ~17 GB. But a
//! session only ever *writes* the states it visits — a few dozen rows
//! before convergence freezes the policy — while every unvisited row
//! still holds exactly the values it started from. [`CowQTable`] makes
//! that observation structural: an immutable shared base table
//! (`Arc`'d, lane-aligned, built from a zero table or a donor policy)
//! plus a private sparse overlay of materialized rows. Reads fall
//! through to the base until the first write to a state copies that
//! row — lanes *and* its incremental argmax cache entry — into the
//! overlay, after which the row behaves exactly like a dense row.
//!
//! ## The determinism contract
//!
//! Every read answered by a `CowQTable` is **bit-identical** to a dense
//! [`QTable`] holding the same logical values: `get`, `best_action`,
//! `max_value`, the per-row lane views the decision kernels walk, and
//! the cached [`RowMax`] they shortcut through. This is not re-derived
//! behaviour — both backends call the same `pub(crate)` row helpers in
//! [`crate::qtable`] (`scan_lanes`, `note_row_write`, `best_allowed`),
//! so the tie-breaking and cache-maintenance branches are shared code.
//! Property tests in `crates/rl/tests/properties.rs` pin the contract
//! over arbitrary write sequences, masks and kernels.
//!
//! ## Persistence
//!
//! [`QStore`] serializes as the flattened dense wire format (`{states,
//! actions, values}`) — stateless deserialization cannot rebind an
//! `Arc`'d base, so an agent snapshot always carries its full logical
//! table and restores as `Dense`. The overlay-granular format is
//! [`OverlaySnapshot`]: the sparse deltas plus the base's
//! [`QTable::value_digest`], restored with [`CowQTable::from_snapshot`]
//! against an explicitly supplied base (digest- and shape-checked, so a
//! tampered or mismatched snapshot is rejected instead of silently
//! producing wrong Q values).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::qtable::{
    best_allowed, lane_values, note_row_write, scan_lanes, QLane, QTable, RowMax,
    ShapeMismatchError, LANES,
};

/// Which storage backend a [`QStore`] uses. Carried by serving configs
/// and benchmark records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QStoreKind {
    /// A private dense [`QTable`] per agent.
    Dense,
    /// A shared immutable base plus a private copy-on-write overlay.
    Cow,
}

impl QStoreKind {
    /// Every backend, dense (the historical default) first.
    pub const ALL: [QStoreKind; 2] = [QStoreKind::Dense, QStoreKind::Cow];

    /// The backend's lowercase name, as used on CLIs and in reports.
    pub fn name(self) -> &'static str {
        match self {
            QStoreKind::Dense => "dense",
            QStoreKind::Cow => "cow",
        }
    }

    /// Resolves a backend from its lowercase name.
    pub fn parse(name: &str) -> Option<QStoreKind> {
        QStoreKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for QStoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Memory accounting of one store, in the shape fleet benchmarks
/// aggregate: what this agent owns privately vs what it shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QStoreStats {
    /// The storage backend.
    pub kind: QStoreKind,
    /// Bytes owned exclusively by this store: the dense table (lanes +
    /// argmax cache), or the overlay's index, lane arena and row caches.
    pub private_bytes: u64,
    /// Bytes of the shared base table (zero for a dense store). Counted
    /// once per fleet, not once per session.
    pub shared_bytes: u64,
    /// Materialized overlay rows (zero for a dense store).
    pub overlay_rows: u64,
}

/// Open-addressed overlay slots: `EMPTY_SLOT`, or `state << 32 | row`.
const EMPTY_SLOT: u64 = u64::MAX;
/// Fibonacci hashing multiplier (2^64 / φ).
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;
/// Initial slot-table capacity (power of two).
const MIN_SLOTS: usize = 16;

/// A copy-on-write Q-table: an immutable shared base plus a private
/// sparse overlay of rows materialized on first write.
///
/// The overlay is an open-addressed `state → row` index (Fibonacci
/// hashing, linear probing, grown at 3/4 load) over a lane arena that
/// keeps each materialized row cache-line-aligned exactly like dense
/// storage, with one [`RowMax`] argmax-cache entry per row. Lookups are
/// O(1) expected; a store that never writes costs ~200 bytes beyond its
/// `Arc` on the base.
#[derive(Debug, Clone)]
pub struct CowQTable {
    base: Arc<QTable>,
    /// Lanes per row, cached from the base.
    stride: usize,
    /// Open-addressed `state → row` slots; always a power of two long.
    slots: Vec<u64>,
    /// Materialized rows, `stride` lanes each, in materialization order.
    lanes: Vec<QLane>,
    /// Per-materialized-row argmax cache, parallel to the arena rows.
    maxes: Vec<RowMax>,
    /// The state each arena row shadows, parallel to `maxes`.
    row_states: Vec<u32>,
}

impl CowQTable {
    /// Creates an empty overlay over a shared base table.
    pub fn new(base: Arc<QTable>) -> Self {
        assert!(
            base.states() < u32::MAX as usize && base.actions() < u32::MAX as usize,
            "base table dimensions exceed the overlay's u32 index range"
        );
        let stride = base.stride();
        CowQTable {
            base,
            stride,
            slots: vec![EMPTY_SLOT; MIN_SLOTS],
            lanes: Vec::new(),
            maxes: Vec::new(),
            row_states: Vec::new(),
        }
    }

    /// The shared base table this overlay shadows.
    pub fn base(&self) -> &Arc<QTable> {
        &self.base
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.base.states()
    }

    /// Number of actions.
    pub fn actions(&self) -> usize {
        self.base.actions()
    }

    /// Number of materialized overlay rows.
    pub fn overlay_rows(&self) -> usize {
        self.maxes.len()
    }

    /// Fraction of the state space this overlay has materialized.
    pub fn occupancy(&self) -> f64 {
        self.overlay_rows() as f64 / self.states() as f64
    }

    /// The materialized states in ascending order — the deterministic
    /// iteration order snapshots and digests are built from.
    pub fn overlay_states(&self) -> Vec<usize> {
        let mut states: Vec<usize> = self.row_states.iter().map(|&s| s as usize).collect();
        states.sort_unstable();
        states
    }

    /// Bytes owned exclusively by this overlay: slot index, lane arena
    /// and per-row caches (allocated capacity, which is what the fleet
    /// actually pays), plus the struct itself.
    pub fn private_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.slots.capacity() * std::mem::size_of::<u64>()
            + self.lanes.capacity() * std::mem::size_of::<QLane>()
            + self.maxes.capacity() * std::mem::size_of::<RowMax>()
            + self.row_states.capacity() * std::mem::size_of::<u32>()
    }

    fn slot_of(&self, state: usize) -> usize {
        let shift = 64 - self.slots.len().trailing_zeros();
        ((state as u64).wrapping_mul(HASH_MUL) >> shift) as usize
    }

    /// The overlay row shadowing `state`, if one was materialized.
    fn find(&self, state: usize) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut i = self.slot_of(state);
        loop {
            let slot = self.slots[i];
            if slot == EMPTY_SLOT {
                return None;
            }
            if (slot >> 32) as usize == state {
                return Some((slot & 0xffff_ffff) as usize);
            }
            i = (i + 1) & mask;
        }
    }

    fn insert_slot(&mut self, state: usize, row: usize) {
        let mask = self.slots.len() - 1;
        let mut i = self.slot_of(state);
        while self.slots[i] != EMPTY_SLOT {
            i = (i + 1) & mask;
        }
        self.slots[i] = (state as u64) << 32 | row as u64;
    }

    fn grow_if_needed(&mut self) {
        if (self.maxes.len() + 1) * 4 <= self.slots.len() * 3 {
            return;
        }
        let new_cap = self.slots.len() * 2;
        self.slots.clear();
        // lint:hot-exempt(table doubling: amortized O(1) per materialized row, identical to the map it replaces)
        self.slots.resize(new_cap, EMPTY_SLOT);
        for row in 0..self.row_states.len() {
            let state = self.row_states[row] as usize;
            self.insert_slot(state, row);
        }
    }

    /// The overlay row for `state`, materializing it — base lanes and
    /// base argmax-cache entry copied — on first write.
    fn row_for_write(&mut self, state: usize) -> usize {
        if let Some(row) = self.find(state) {
            return row;
        }
        self.grow_if_needed();
        let row = self.maxes.len();
        // lint:hot-exempt(copy-on-write materialization: each row is copied at most once per session)
        self.lanes.extend_from_slice(self.base.row_lines(state));
        // lint:hot-exempt(copy-on-write materialization: each row is copied at most once per session)
        self.maxes.push(self.base.row_max_entry(state));
        // lint:hot-exempt(copy-on-write materialization: each row is copied at most once per session)
        self.row_states.push(state as u32);
        self.insert_slot(state, row);
        row
    }

    fn check_index(&self, state: usize, action: usize) {
        assert!(
            state < self.states(),
            "state {state} out of range ({})",
            self.states()
        );
        assert!(
            action < self.actions(),
            "action {action} out of range ({})",
            self.actions()
        );
    }

    /// The lanes a read of `state` resolves to: the materialized overlay
    /// row, or the shared base row.
    pub(crate) fn row_lines(&self, state: usize) -> &[QLane] {
        match self.find(state) {
            Some(row) => &self.lanes[row * self.stride..(row + 1) * self.stride],
            None => self.base.row_lines(state),
        }
    }

    /// The cached lowest-index maximizer of one row (overlay or base).
    pub(crate) fn row_max_entry(&self, state: usize) -> RowMax {
        assert!(state < self.states(), "state out of range");
        match self.find(state) {
            Some(row) => self.maxes[row],
            None => self.base.row_max_entry(state),
        }
    }

    /// Q(S, A).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, state: usize, action: usize) -> f64 {
        self.check_index(state, action);
        self.row_lines(state)[action / LANES].0[action % LANES]
    }

    /// Sets Q(S, A), materializing the row on first write.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, state: usize, action: usize, value: f64) {
        self.check_index(state, action);
        let actions = self.actions();
        let row = self.row_for_write(state);
        let lanes = &mut self.lanes[row * self.stride..(row + 1) * self.stride];
        lanes[action / LANES].0[action % LANES] = value;
        let lanes = &self.lanes[row * self.stride..(row + 1) * self.stride];
        note_row_write(&mut self.maxes[row], lanes, actions, action, value);
    }

    /// Adds `delta` to Q(S, A) — the Algorithm 1 update's in-place form.
    pub fn add(&mut self, state: usize, action: usize, delta: f64) {
        self.check_index(state, action);
        let current = self.get(state, action);
        self.set(state, action, current + delta);
    }

    /// The action with the largest Q value among those `mask` allows —
    /// same semantics, same tie-breaking and same cached fast path as
    /// [`QTable::best_action`], via the shared row helpers.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != actions` or `state` is out of range.
    pub fn best_action(&self, state: usize, mask: &[bool]) -> Option<(usize, f64)> {
        assert_eq!(
            mask.len(),
            self.actions(),
            "mask length must equal action count"
        );
        assert!(state < self.states(), "state out of range");
        match self.find(state) {
            Some(row) => {
                let lanes = &self.lanes[row * self.stride..(row + 1) * self.stride];
                best_allowed(lanes, self.actions(), self.maxes[row], mask)
            }
            None => self.base.best_action(state, mask),
        }
    }

    /// The largest allowed Q value of a row, or 0.0 when nothing is
    /// allowed — the bootstrap term.
    pub fn max_value(&self, state: usize, mask: &[bool]) -> f64 {
        self.best_action(state, mask).map_or(0.0, |(_, v)| v)
    }

    /// Materializes the full logical table (base plus overlay) as a
    /// dense [`QTable`].
    pub fn to_table(&self) -> QTable {
        let (states, actions) = (self.states(), self.actions());
        let mut values = Vec::with_capacity(states * actions);
        for state in 0..states {
            values.extend(lane_values(self.row_lines(state), actions));
        }
        QTable::from_values(states, actions, &values)
    }

    /// Captures the overlay as a sparse, base-bound snapshot: every
    /// materialized row's full logical values, sorted by state, plus the
    /// base's value digest so restoration can verify it is replayed over
    /// the same base.
    pub fn snapshot(&self) -> OverlaySnapshot {
        let deltas = self
            .overlay_states()
            .iter()
            .map(|&state| OverlayDelta {
                state,
                values: lane_values(self.row_lines(state), self.actions()).collect(),
            })
            .collect();
        OverlaySnapshot {
            states: self.states(),
            actions: self.actions(),
            base_digest: self.base.value_digest(),
            deltas,
        }
    }

    /// Restores an overlay from a snapshot over an explicitly supplied
    /// base table.
    ///
    /// # Errors
    ///
    /// Rejects the snapshot when the base's shape or value digest does
    /// not match what the snapshot was taken over, or when a delta row
    /// is malformed (out-of-range state, wrong row length, duplicate
    /// state) — a tampered snapshot fails loudly instead of serving
    /// wrong Q values.
    pub fn from_snapshot(
        base: Arc<QTable>,
        snapshot: &OverlaySnapshot,
    ) -> Result<Self, OverlayError> {
        if base.states() != snapshot.states || base.actions() != snapshot.actions {
            return Err(OverlayError::ShapeMismatch {
                snapshot: (snapshot.states, snapshot.actions),
                base: (base.states(), base.actions()),
            });
        }
        let found = base.value_digest();
        if found != snapshot.base_digest {
            return Err(OverlayError::BaseDigestMismatch {
                expected: snapshot.base_digest,
                found,
            });
        }
        let mut overlay = CowQTable::new(base);
        for delta in &snapshot.deltas {
            if delta.state >= snapshot.states {
                return Err(OverlayError::StateOutOfRange {
                    state: delta.state,
                    states: snapshot.states,
                });
            }
            if delta.values.len() != snapshot.actions {
                return Err(OverlayError::RowLengthMismatch {
                    state: delta.state,
                    expected: snapshot.actions,
                    found: delta.values.len(),
                });
            }
            if overlay.find(delta.state).is_some() {
                return Err(OverlayError::DuplicateState { state: delta.state });
            }
            let row = overlay.row_for_write(delta.state);
            let lanes = &mut overlay.lanes[row * overlay.stride..(row + 1) * overlay.stride];
            for (a, &v) in delta.values.iter().enumerate() {
                lanes[a / LANES].0[a % LANES] = v;
            }
            let lanes = &overlay.lanes[row * overlay.stride..(row + 1) * overlay.stride];
            overlay.maxes[row] = scan_lanes(lanes, snapshot.actions);
        }
        Ok(overlay)
    }
}

/// One materialized overlay row: a state and its full logical values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlayDelta {
    /// The state this row shadows.
    pub state: usize,
    /// The row's logical values, in action order (padding excluded).
    pub values: Vec<f64>,
}

/// The persistent form of a [`CowQTable`]'s private overlay: sparse
/// per-row deltas bound to a specific base table by shape and value
/// digest. The base itself is *not* carried — it is shared fleet
/// infrastructure, persisted once as a plain [`QTable`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlaySnapshot {
    /// State count of the base the snapshot was taken over.
    pub states: usize,
    /// Action count of the base the snapshot was taken over.
    pub actions: usize,
    /// [`QTable::value_digest`] of that base.
    pub base_digest: u64,
    /// Materialized rows, sorted by state.
    pub deltas: Vec<OverlayDelta>,
}

/// Why an [`OverlaySnapshot`] could not be restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlayError {
    /// The supplied base has a different shape than the snapshot's.
    ShapeMismatch {
        /// The snapshot's (states, actions).
        snapshot: (usize, usize),
        /// The supplied base's (states, actions).
        base: (usize, usize),
    },
    /// The supplied base holds different values than the snapshot's.
    BaseDigestMismatch {
        /// The digest recorded in the snapshot.
        expected: u64,
        /// The supplied base's digest.
        found: u64,
    },
    /// A delta names a state past the table.
    StateOutOfRange {
        /// The offending state.
        state: usize,
        /// The table's state count.
        states: usize,
    },
    /// A delta row has the wrong number of values.
    RowLengthMismatch {
        /// The offending state.
        state: usize,
        /// The action count every row must carry.
        expected: usize,
        /// What the delta carried.
        found: usize,
    },
    /// Two deltas name the same state.
    DuplicateState {
        /// The duplicated state.
        state: usize,
    },
}

impl std::fmt::Display for OverlayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverlayError::ShapeMismatch { snapshot, base } => write!(
                f,
                "overlay snapshot shape {}x{} does not match base {}x{}",
                snapshot.0, snapshot.1, base.0, base.1
            ),
            OverlayError::BaseDigestMismatch { expected, found } => write!(
                f,
                "overlay snapshot was taken over a different base: digest {expected:016x} expected, base has {found:016x}"
            ),
            OverlayError::StateOutOfRange { state, states } => {
                write!(f, "overlay delta state {state} out of range ({states})")
            }
            OverlayError::RowLengthMismatch {
                state,
                expected,
                found,
            } => write!(
                f,
                "overlay delta for state {state} carries {found} values, expected {expected}"
            ),
            OverlayError::DuplicateState { state } => {
                write!(f, "overlay snapshot names state {state} twice")
            }
        }
    }
}

impl std::error::Error for OverlayError {}

/// Q-value storage behind the agent: a private dense table, or a shared
/// base with a copy-on-write overlay. Every read is bit-identical
/// across backends holding the same logical values — backends are a
/// memory choice, never a behaviour choice.
#[derive(Debug, Clone)]
pub enum QStore {
    /// A private dense [`QTable`].
    Dense(QTable),
    /// A shared base plus private overlay.
    Cow(CowQTable),
}

impl QStore {
    /// Wraps a dense table.
    pub fn dense(q: QTable) -> Self {
        QStore::Dense(q)
    }

    /// An empty copy-on-write overlay over a shared base.
    pub fn cow(base: Arc<QTable>) -> Self {
        QStore::Cow(CowQTable::new(base))
    }

    /// Which backend this store uses.
    pub fn kind(&self) -> QStoreKind {
        match self {
            QStore::Dense(_) => QStoreKind::Dense,
            QStore::Cow(_) => QStoreKind::Cow,
        }
    }

    /// The overlay backend, when this store is one.
    pub fn as_cow(&self) -> Option<&CowQTable> {
        match self {
            QStore::Dense(_) => None,
            QStore::Cow(c) => Some(c),
        }
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        match self {
            QStore::Dense(q) => q.states(),
            QStore::Cow(c) => c.states(),
        }
    }

    /// Number of actions.
    pub fn actions(&self) -> usize {
        match self {
            QStore::Dense(q) => q.actions(),
            QStore::Cow(c) => c.actions(),
        }
    }

    /// Q(S, A).
    pub fn get(&self, state: usize, action: usize) -> f64 {
        match self {
            QStore::Dense(q) => q.get(state, action),
            QStore::Cow(c) => c.get(state, action),
        }
    }

    /// Sets Q(S, A).
    pub fn set(&mut self, state: usize, action: usize, value: f64) {
        match self {
            QStore::Dense(q) => q.set(state, action, value),
            QStore::Cow(c) => c.set(state, action, value),
        }
    }

    /// Adds `delta` to Q(S, A).
    pub fn add(&mut self, state: usize, action: usize, delta: f64) {
        match self {
            QStore::Dense(q) => q.add(state, action, delta),
            QStore::Cow(c) => c.add(state, action, delta),
        }
    }

    /// The lowest-index allowed maximizer of a row and its value — see
    /// [`QTable::best_action`].
    pub fn best_action(&self, state: usize, mask: &[bool]) -> Option<(usize, f64)> {
        match self {
            QStore::Dense(q) => q.best_action(state, mask),
            QStore::Cow(c) => c.best_action(state, mask),
        }
    }

    /// The largest allowed Q value of a row, or 0.0 when nothing is
    /// allowed.
    pub fn max_value(&self, state: usize, mask: &[bool]) -> f64 {
        self.best_action(state, mask).map_or(0.0, |(_, v)| v)
    }

    /// Bytes this store owns privately (shared base excluded).
    pub fn memory_bytes(&self) -> usize {
        match self {
            QStore::Dense(q) => q.memory_bytes() + q.states() * std::mem::size_of::<RowMax>(),
            QStore::Cow(c) => c.private_bytes(),
        }
    }

    /// Bytes of the shared base (zero for a dense store).
    pub fn shared_bytes(&self) -> usize {
        match self {
            QStore::Dense(_) => 0,
            QStore::Cow(c) => {
                c.base().memory_bytes() + c.base().states() * std::mem::size_of::<RowMax>()
            }
        }
    }

    /// This store's memory accounting, for fleet aggregation.
    pub fn stats(&self) -> QStoreStats {
        QStoreStats {
            kind: self.kind(),
            private_bytes: self.memory_bytes() as u64,
            shared_bytes: self.shared_bytes() as u64,
            overlay_rows: self.as_cow().map_or(0, |c| c.overlay_rows()) as u64,
        }
    }

    /// The full logical table, materialized dense — the dense↔cow
    /// conversion path.
    pub fn to_table(&self) -> QTable {
        match self {
            QStore::Dense(q) => q.clone(),
            QStore::Cow(c) => c.to_table(),
        }
    }

    /// FNV-1a digest of the logical values — equal across backends
    /// holding the same values.
    pub fn value_digest(&self) -> u64 {
        match self {
            QStore::Dense(q) => q.value_digest(),
            // The overlay digest must walk rows through the overlay, so
            // materializing is the straightforward correct path; digests
            // are taken at snapshot boundaries, not per decision.
            QStore::Cow(c) => c.to_table().value_digest(),
        }
    }

    /// Copies every value from `source` — learning transfer across
    /// stores of any backend pairing. Dense→dense is a flat memcpy; a
    /// copy-on-write recipient materializes every row (a full-table
    /// transfer defeats sparsity by definition).
    ///
    /// # Errors
    ///
    /// Returns an error describing the shape mismatch if the dimensions
    /// differ.
    pub fn transfer_from(&mut self, source: &QStore) -> Result<(), ShapeMismatchError> {
        let (states, actions) = (self.states(), self.actions());
        if states != source.states() || actions != source.actions() {
            return Err(ShapeMismatchError {
                expected: (states, actions),
                found: (source.states(), source.actions()),
            });
        }
        match (&mut *self, source) {
            (QStore::Dense(dst), QStore::Dense(src)) => dst.transfer_from(src),
            (dst, src) => {
                for state in 0..states {
                    for action in 0..actions {
                        dst.set(state, action, src.get(state, action));
                    }
                }
                Ok(())
            }
        }
    }

    /// The lanes of one row, as the decision kernels walk them.
    pub(crate) fn row_lines(&self, state: usize) -> &[QLane] {
        match self {
            QStore::Dense(q) => q.row_lines(state),
            QStore::Cow(c) => c.row_lines(state),
        }
    }

    /// The cached lowest-index maximizer of one row — the kernels'
    /// shared O(1) fast path.
    pub(crate) fn row_max_entry(&self, state: usize) -> RowMax {
        match self {
            QStore::Dense(q) => q.row_max_entry(state),
            QStore::Cow(c) => c.row_max_entry(state),
        }
    }
}

impl From<QTable> for QStore {
    fn from(q: QTable) -> Self {
        QStore::Dense(q)
    }
}

impl PartialEq for QStore {
    /// Logical-value equality: two stores are equal when they hold the
    /// same `states × actions` values, regardless of backend or of how
    /// the values are split between base and overlay. (Padding lanes are
    /// `0.0` on both sides, so comparing lanes compares logical values.)
    fn eq(&self, other: &Self) -> bool {
        self.states() == other.states()
            && self.actions() == other.actions()
            && (0..self.states()).all(|s| self.row_lines(s) == other.row_lines(s))
    }
}

// A store serializes as the flattened dense wire format — byte-for-byte
// the [`QTable`] format, so agent snapshots written before tiered
// storage existed keep loading, and snapshots of cow-backed agents load
// anywhere. Restoring an *overlay* (sparse deltas over an out-of-band
// base) goes through [`OverlaySnapshot`] instead: stateless
// deserialization has no base table to bind an `Arc` to.
impl Serialize for QStore {
    fn to_value(&self) -> serde::Value {
        match self {
            QStore::Dense(q) => q.to_value(),
            QStore::Cow(c) => c.to_table().to_value(),
        }
    }
}

impl Deserialize for QStore {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        QTable::from_value(value).map(QStore::Dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(states: usize, actions: usize, seed: u64) -> Arc<QTable> {
        Arc::new(QTable::new_random(states, actions, seed))
    }

    /// A dense table and a cow overlay fed the identical write sequence.
    fn mirrored_writes(writes: &[(usize, usize, f64)]) -> (QTable, CowQTable) {
        let b = base(8, 11, 42);
        let mut dense = (*b).clone();
        let mut cow = CowQTable::new(b);
        for &(s, a, v) in writes {
            dense.set(s, a, v);
            cow.set(s, a, v);
        }
        (dense, cow)
    }

    #[test]
    fn reads_fall_through_to_the_base_until_first_write() {
        let b = base(4, 9, 7);
        let mut cow = CowQTable::new(b.clone());
        assert_eq!(cow.overlay_rows(), 0);
        for s in 0..4 {
            for a in 0..9 {
                assert_eq!(cow.get(s, a), b.get(s, a));
            }
        }
        cow.set(2, 3, 5.0);
        assert_eq!(cow.overlay_rows(), 1);
        assert_eq!(cow.get(2, 3), 5.0);
        // The write shadows only its own row; the base is untouched.
        assert_ne!(b.get(2, 3), 5.0);
        assert_eq!(cow.get(1, 3), b.get(1, 3));
    }

    #[test]
    fn writes_materialize_each_row_exactly_once() {
        let mut cow = CowQTable::new(base(8, 5, 1));
        for i in 0..50 {
            cow.set(i % 3, i % 5, i as f64);
        }
        assert_eq!(cow.overlay_rows(), 3);
        assert_eq!(cow.overlay_states(), vec![0, 1, 2]);
        assert!((cow.occupancy() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn overlay_matches_dense_after_arbitrary_writes() {
        let writes = [
            (0, 0, 3.0),
            (7, 10, -2.0),
            (0, 5, 3.0), // tie with (0,0) at a higher index
            (3, 1, 9.0),
            (3, 1, -9.0), // lower the row maximum: rescan path
            (0, 0, -1.0),
        ];
        let (dense, cow) = mirrored_writes(&writes);
        let all = vec![true; 11];
        let mut partial = vec![true; 11];
        partial[0] = false;
        partial[5] = false;
        for s in 0..8 {
            for a in 0..11 {
                assert_eq!(dense.get(s, a), cow.get(s, a), "({s},{a})");
            }
            assert_eq!(dense.best_action(s, &all), cow.best_action(s, &all), "{s}");
            assert_eq!(
                dense.best_action(s, &partial),
                cow.best_action(s, &partial),
                "{s} masked"
            );
            assert_eq!(dense.max_value(s, &all), cow.max_value(s, &all));
        }
    }

    #[test]
    fn add_composes_with_base_values() {
        let b = base(2, 3, 9);
        let mut cow = CowQTable::new(b.clone());
        cow.add(1, 2, 0.5);
        assert_eq!(cow.get(1, 2), b.get(1, 2) + 0.5);
    }

    #[test]
    fn index_grows_past_the_initial_capacity() {
        // Materialize more rows than MIN_SLOTS * 3/4 to force rehashing.
        let b = Arc::new(QTable::new_zeroed(1000, 4));
        let mut cow = CowQTable::new(b);
        for s in 0..800 {
            cow.set(s, s % 4, s as f64);
        }
        assert_eq!(cow.overlay_rows(), 800);
        for s in 0..800 {
            assert_eq!(cow.get(s, s % 4), s as f64, "{s}");
        }
        assert_eq!(cow.get(900, 0), 0.0);
    }

    #[test]
    fn to_table_round_trips_the_logical_values() {
        let (dense, cow) = mirrored_writes(&[(1, 1, 4.0), (6, 9, -3.0)]);
        assert_eq!(cow.to_table(), dense);
        assert_eq!(cow.to_table().value_digest(), dense.value_digest());
    }

    #[test]
    fn qstore_equality_is_logical_across_backends() {
        let (dense, cow) = mirrored_writes(&[(2, 2, 8.0)]);
        let a = QStore::Dense(dense);
        let b = QStore::Cow(cow);
        assert_eq!(a, b);
        assert_eq!(a.value_digest(), b.value_digest());
        let mut c = b.clone();
        c.set(0, 0, 1234.0);
        assert_ne!(a, c);
    }

    #[test]
    fn qstore_serde_flattens_to_the_dense_wire_format() {
        let (dense, cow) = mirrored_writes(&[(4, 7, 2.5)]);
        let store = QStore::Cow(cow);
        let json = serde_json::to_string(&store).unwrap();
        assert!(json.contains("\"values\":["), "dense wire format expected");
        let back: QStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.kind(), QStoreKind::Dense, "restores as dense");
        assert_eq!(back, store, "logical values survive");
        assert_eq!(back.to_table(), dense);
    }

    #[test]
    fn snapshot_round_trips_over_the_same_base() {
        let b = base(8, 11, 42);
        let mut cow = CowQTable::new(b.clone());
        cow.set(5, 3, 7.0);
        cow.set(1, 0, -2.0);
        cow.add(5, 10, 0.25);
        let snap = cow.snapshot();
        assert_eq!(snap.deltas.len(), 2);
        assert!(snap.deltas.windows(2).all(|w| w[0].state < w[1].state));
        let json = serde_json::to_string(&snap).unwrap();
        let parsed: OverlaySnapshot = serde_json::from_str(&json).unwrap();
        let restored = CowQTable::from_snapshot(b, &parsed).unwrap();
        assert_eq!(restored.overlay_rows(), 2);
        assert_eq!(restored.to_table(), cow.to_table());
        assert_eq!(
            QStore::Cow(restored).value_digest(),
            QStore::Cow(cow).value_digest()
        );
    }

    #[test]
    fn snapshot_rejects_a_different_base() {
        let b = base(8, 11, 42);
        let mut cow = CowQTable::new(b);
        cow.set(0, 0, 1.0);
        let snap = cow.snapshot();
        // Same shape, different values: digest mismatch.
        let other = base(8, 11, 43);
        let err = CowQTable::from_snapshot(other, &snap).unwrap_err();
        assert!(matches!(err, OverlayError::BaseDigestMismatch { .. }));
        assert!(err.to_string().contains("different base"));
        // Different shape: rejected before any digest work.
        let wrong_shape = base(8, 12, 42);
        let err = CowQTable::from_snapshot(wrong_shape, &snap).unwrap_err();
        assert!(matches!(err, OverlayError::ShapeMismatch { .. }));
    }

    #[test]
    fn snapshot_rejects_malformed_deltas() {
        let b = base(4, 3, 5);
        let good = OverlaySnapshot {
            states: 4,
            actions: 3,
            base_digest: b.value_digest(),
            deltas: vec![OverlayDelta {
                state: 1,
                values: vec![1.0, 2.0, 3.0],
            }],
        };
        assert!(CowQTable::from_snapshot(b.clone(), &good).is_ok());
        let out_of_range = OverlaySnapshot {
            deltas: vec![OverlayDelta {
                state: 4,
                values: vec![1.0, 2.0, 3.0],
            }],
            ..good.clone()
        };
        assert!(matches!(
            CowQTable::from_snapshot(b.clone(), &out_of_range).unwrap_err(),
            OverlayError::StateOutOfRange {
                state: 4,
                states: 4
            }
        ));
        let short_row = OverlaySnapshot {
            deltas: vec![OverlayDelta {
                state: 1,
                values: vec![1.0],
            }],
            ..good.clone()
        };
        assert!(matches!(
            CowQTable::from_snapshot(b.clone(), &short_row).unwrap_err(),
            OverlayError::RowLengthMismatch {
                state: 1,
                expected: 3,
                found: 1
            }
        ));
        let duplicated = OverlaySnapshot {
            deltas: vec![
                OverlayDelta {
                    state: 1,
                    values: vec![1.0, 2.0, 3.0],
                },
                OverlayDelta {
                    state: 1,
                    values: vec![4.0, 5.0, 6.0],
                },
            ],
            ..good
        };
        assert!(matches!(
            CowQTable::from_snapshot(b, &duplicated).unwrap_err(),
            OverlayError::DuplicateState { state: 1 }
        ));
    }

    #[test]
    fn restored_overlay_argmax_cache_is_consistent() {
        let b = base(4, 9, 17);
        let mut cow = CowQTable::new(b.clone());
        cow.set(2, 4, 100.0);
        cow.set(2, 7, 100.0); // higher-index tie: cache must stay at 4
        let restored = CowQTable::from_snapshot(b, &cow.snapshot()).unwrap();
        let all = vec![true; 9];
        assert_eq!(restored.best_action(2, &all), Some((4, 100.0)));
        assert_eq!(restored.best_action(2, &all), cow.best_action(2, &all));
    }

    #[test]
    fn transfer_between_backends_copies_values() {
        let donor_table = {
            let mut q = QTable::new_zeroed(3, 4);
            q.set(2, 3, 9.0);
            q
        };
        let mut cow_store = QStore::cow(base(3, 4, 11));
        cow_store
            .transfer_from(&QStore::Dense(donor_table.clone()))
            .unwrap();
        assert_eq!(cow_store.to_table(), donor_table);
        // And back: dense recipient from a cow donor.
        let mut dense_store = QStore::Dense(QTable::new_random(3, 4, 77));
        dense_store.transfer_from(&cow_store).unwrap();
        assert_eq!(dense_store.to_table(), donor_table);
        // Shape mismatch is typed, as for dense↔dense.
        let mut small = QStore::Dense(QTable::new_zeroed(2, 4));
        let err = small.transfer_from(&cow_store).unwrap_err();
        assert_eq!(err.expected, (2, 4));
        assert_eq!(err.found, (3, 4));
    }

    #[test]
    fn stats_account_for_sharing() {
        let b = base(3_072, 66, 0);
        let dense = QStore::Dense((*b).clone());
        let mut cow = QStore::cow(b);
        let dense_stats = dense.stats();
        assert_eq!(dense_stats.kind, QStoreKind::Dense);
        assert_eq!(dense_stats.shared_bytes, 0);
        assert_eq!(dense_stats.overlay_rows, 0);
        assert_eq!(dense_stats.private_bytes, dense.memory_bytes() as u64);
        for s in 0..40 {
            cow.set(s, 0, 1.0);
        }
        let cow_stats = cow.stats();
        assert_eq!(cow_stats.kind, QStoreKind::Cow);
        assert_eq!(cow_stats.overlay_rows, 40);
        assert_eq!(cow_stats.shared_bytes, dense_stats.private_bytes);
        assert!(
            cow_stats.private_bytes * 20 < dense_stats.private_bytes,
            "a 40-row overlay ({} B) must undercut dense ({} B) by >20x",
            cow_stats.private_bytes,
            dense_stats.private_bytes
        );
    }

    #[test]
    fn store_kind_names_round_trip() {
        for kind in QStoreKind::ALL {
            assert_eq!(QStoreKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(QStoreKind::parse("sparse"), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cow_out_of_range_state_panics() {
        let cow = CowQTable::new(base(2, 2, 0));
        let _ = cow.get(2, 0);
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn cow_mask_length_mismatch_panics() {
        let cow = CowQTable::new(base(2, 3, 0));
        let _ = cow.best_action(0, &[true, true]);
    }
}
