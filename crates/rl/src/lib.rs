//! Reinforcement-learning primitives for the AutoScale reproduction.
//!
//! The paper chooses **tabular Q-learning** over TD-learning and deep RL
//! because a lookup table gives the lowest decision latency on an
//! energy-constrained phone (Section IV), and pairs it with an
//! **epsilon-greedy** policy to balance exploitation against exploration.
//! This crate implements those pieces generically over opaque state and
//! action indices, so the core crate can map its domain-specific state
//! (Table I) and action space (execution targets × DVFS × quantization)
//! onto them:
//!
//! * [`QTable`] — a dense `states × actions` value table with random
//!   initialization, action masking, and serde persistence (the paper's
//!   learning transfer ships a trained table between devices);
//! * [`QStore`] — tiered Q-value storage: the dense table, or a
//!   [`CowQTable`] copy-on-write overlay over a shared `Arc`'d base —
//!   bit-identical reads, ~20x+ lower per-session memory at fleet scale;
//! * [`EpsilonGreedy`] — the exploration policy;
//! * [`QLearningAgent`] — Algorithm 1 of the paper: observe, select, act,
//!   reward, bootstrap, update;
//! * [`Dbscan`] / [`Discretizer`] — the 1-D DBSCAN clustering the paper
//!   uses to discretize continuous state features into the Table I buckets;
//! * [`ConvergenceDetector`] — detects reward convergence (the paper's
//!   Fig. 14 reports convergence within 40–50 inference runs);
//! * [`DecisionKernel`] — swappable masked-argmax engines for the serving
//!   hot path ([`ScalarKernel`] reference, [`PackedKernel`] lane-walker,
//!   [`FrozenKernel`] greedy serving), all bit-identical by contract;
//! * [`LinearQAgent`] — a linear function-approximation alternative, kept
//!   as the measurable stand-in for the deep-RL family the paper rejects
//!   on latency grounds.
//!
//! # Example
//!
//! ```
//! use autoscale_rl::{Hyperparameters, QLearningAgent};
//! use rand::SeedableRng;
//!
//! let mut agent = QLearningAgent::new(4, 3, Hyperparameters::paper(), 7);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mask = vec![true; 3];
//! let a = agent.select_action(0, &mask, &mut rng).expect("mask allows actions");
//! agent.update(0, a, 1.0, 1, &mask);
//! assert!(agent.store().get(0, a).is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod convergence;
pub mod dbscan;
pub mod kernel;
pub mod linear;
pub mod policy;
pub mod qstore;
pub mod qtable;

pub use agent::{Hyperparameters, QLearningAgent};
pub use convergence::ConvergenceDetector;
pub use dbscan::{Dbscan, Discretizer};
pub use kernel::{DecisionKernel, FrozenKernel, KernelKind, MaskSet, PackedKernel, ScalarKernel};
pub use linear::LinearQAgent;
pub use policy::EpsilonGreedy;
pub use qstore::{
    CowQTable, OverlayDelta, OverlayError, OverlaySnapshot, QStore, QStoreKind, QStoreStats,
};
pub use qtable::QTable;
