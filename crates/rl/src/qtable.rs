//! The Q-table: a dense `states × actions` lookup table of action values.
//!
//! The paper sizes this concretely: about 3,072 states × ~66 actions,
//! for a memory footprint of roughly 0.4 MB (Section VI-C) — "only 0.01%
//! of the 3 GB DRAM capacity of a typical mid-end mobile device".
//!
//! ## The argmax cache
//!
//! A greedy decision is an argmax over one state's row, and the paper's
//! pitch is that this costs microseconds. Scanning ~66 actions per
//! decision is already cheap, but the serving hot path asks for the same
//! row maximum on *every* decision and *every* learning update (the
//! bootstrap term), so the table keeps a per-state cache of the
//! lowest-index maximizer. The cache is maintained incrementally on
//! [`QTable::set`]/[`QTable::add`]: a write that raises the maximum or
//! ties it at a lower index updates the cache in O(1); only a write that
//! lowers the current maximum triggers an O(actions) row rescan. With a
//! feasibility mask, the cached entry answers in O(1) whenever the cached
//! action is allowed (always true for fully feasible workloads); otherwise
//! the lookup falls back to the masked scan. `tests/properties.rs` proves
//! cache == brute-force rescan under arbitrary write interleavings.
//!
//! ## Storage layout
//!
//! Values live in cache-line-aligned lanes of eight `f64`s
//! ([`QLane`], `#[repr(align(64))]`): each row is padded to a multiple of
//! eight actions, so a row always starts on a 64-byte cache-line boundary
//! and a lane never straddles two lines. The padding slots hold `0.0` and
//! are never read through the logical API; the packed decision kernel
//! ([`crate::kernel`]) skips them via zero mask bits. For the paper-scale
//! table (3,072 × 66 → stride 72) this costs 9% padding: 1.69 MB instead
//! of 1.55 MB, still the same order of magnitude as Section VI-C.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Logical `f64` slots per cache-line-aligned storage lane.
pub(crate) const LANES: usize = 8;

/// One cache line of Q values: eight `f64`s, 64-byte aligned.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(align(64))]
pub(crate) struct QLane(pub(crate) [f64; LANES]);

/// The cached lowest-index maximizer of one state's row.
///
/// Shared with the copy-on-write overlay backend ([`crate::qstore`]),
/// which keeps one `RowMax` per materialized overlay row so its argmax
/// semantics are the dense table's by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RowMax {
    pub(crate) action: u32,
    pub(crate) value: f64,
}

/// The logical values of one row's lane slice, in action order (padding
/// excluded). Works on any `stride`-lane row slice — dense storage or an
/// overlay arena row.
pub(crate) fn lane_values(lanes: &[QLane], actions: usize) -> impl Iterator<Item = f64> + '_ {
    lanes
        .iter()
        .flat_map(|line| line.0.iter().copied())
        .take(actions)
}

/// Brute-force lowest-index maximizer of one row's lane slice.
pub(crate) fn scan_lanes(lanes: &[QLane], actions: usize) -> RowMax {
    let mut best = RowMax {
        action: 0,
        value: lanes[0].0[0],
    };
    for (a, v) in lane_values(lanes, actions).enumerate().skip(1) {
        if v > best.value {
            best = RowMax {
                action: a as u32,
                value: v,
            };
        }
    }
    best
}

/// Restores a row's cache invariant after `row[action] = value`.
///
/// O(1) unless the write lowered the current row maximum, which forces
/// an O(actions) rescan of the row. The dense table and the overlay
/// backend both route every write through this function, so their
/// incremental argmax maintenance cannot drift apart.
pub(crate) fn note_row_write(
    cached: &mut RowMax,
    lanes: &[QLane],
    actions: usize,
    action: usize,
    value: f64,
) {
    let a = action as u32;
    if a == cached.action {
        if value >= cached.value {
            // The maximum grew in place: no other entry can now tie it
            // (ties would have had to exceed the previous maximum).
            cached.value = value;
        } else {
            *cached = scan_lanes(lanes, actions);
        }
    } else if value > cached.value || (value == cached.value && a < cached.action) {
        *cached = RowMax { action: a, value };
    }
}

/// The lowest-index allowed maximizer of one row's lane slice: the
/// cached entry in O(1) when the mask allows it, otherwise a masked
/// O(actions) scan. Returns `None` when the mask allows nothing.
pub(crate) fn best_allowed(
    lanes: &[QLane],
    actions: usize,
    cached: RowMax,
    mask: &[bool],
) -> Option<(usize, f64)> {
    if mask[cached.action as usize] {
        // The cached entry is the lowest-index maximizer over *all*
        // actions; when the mask allows it, no allowed action can beat
        // it, and a lower-index allowed tie would itself be a
        // lower-index global maximizer — contradiction.
        return Some((cached.action as usize, cached.value));
    }
    let mut best: Option<(usize, f64)> = None;
    for (a, (&allowed, v)) in mask.iter().zip(lane_values(lanes, actions)).enumerate() {
        if !allowed {
            continue;
        }
        if best.is_none_or(|(_, bv)| v > bv) {
            best = Some((a, v));
        }
    }
    best
}

/// A dense table of Q(S, A) values.
#[derive(Debug, Clone)]
pub struct QTable {
    states: usize,
    actions: usize,
    /// Lanes per row: `actions` rounded up to a multiple of [`LANES`].
    stride: usize,
    /// Row-major lane storage, `states * stride` lanes long. Padding
    /// slots past `actions` in each row stay `0.0` forever.
    lines: Vec<QLane>,
    /// Per-state lowest-index argmax, kept consistent with `lines` by
    /// every write. Derived data: excluded from equality and serde.
    row_max: Vec<RowMax>,
}

impl PartialEq for QTable {
    fn eq(&self, other: &Self) -> bool {
        // `row_max` is derived from the values; comparing it would only
        // re-compare the same information. Padding lanes are `0.0` on
        // both sides, so comparing lines compares the logical values.
        self.states == other.states && self.actions == other.actions && self.lines == other.lines
    }
}

impl QTable {
    /// Creates a table initialized with small random values, as Algorithm 1
    /// of the paper prescribes ("Initialize Q(S,A) as random values").
    ///
    /// # Panics
    ///
    /// Panics if `states` or `actions` is zero.
    pub fn new_random(states: usize, actions: usize, seed: u64) -> Self {
        assert!(
            states > 0 && actions > 0,
            "Q-table dimensions must be non-zero"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let stride = actions.div_ceil(LANES);
        let mut lines = vec![QLane([0.0; LANES]); states * stride];
        let mut row_max = Vec::with_capacity(states);
        // Fill and compute each row's argmax in one pass, in the same
        // draw order (state-major, action-minor) as every prior release:
        // the streams feeding sessions are a compatibility surface.
        for s in 0..states {
            let base = s * stride;
            let mut best = RowMax {
                action: 0,
                value: 0.0,
            };
            for a in 0..actions {
                let v = rng.gen_range(-0.01..0.01);
                lines[base + a / LANES].0[a % LANES] = v;
                if a == 0 || v > best.value {
                    best = RowMax {
                        action: a as u32,
                        value: v,
                    };
                }
            }
            row_max.push(best);
        }
        QTable {
            states,
            actions,
            stride,
            lines,
            row_max,
        }
    }

    /// Creates a zero-initialized table (useful for deterministic tests).
    pub fn new_zeroed(states: usize, actions: usize) -> Self {
        assert!(
            states > 0 && actions > 0,
            "Q-table dimensions must be non-zero"
        );
        QTable::from_values(states, actions, &vec![0.0; states * actions])
    }

    /// Builds a table around existing row-major logical values, packing
    /// them into aligned lanes and computing the argmax cache.
    pub(crate) fn from_values(states: usize, actions: usize, values: &[f64]) -> Self {
        debug_assert_eq!(values.len(), states * actions);
        let stride = actions.div_ceil(LANES);
        let mut lines = vec![QLane([0.0; LANES]); states * stride];
        for (i, &v) in values.iter().enumerate() {
            let (s, a) = (i / actions, i % actions);
            lines[s * stride + a / LANES].0[a % LANES] = v;
        }
        let mut table = QTable {
            states,
            actions,
            stride,
            lines,
            row_max: Vec::new(),
        };
        table.row_max = (0..states).map(|s| table.scan_row(s)).collect();
        table
    }

    /// The logical values of one row, in action order (padding excluded).
    fn row_values(&self, state: usize) -> impl Iterator<Item = f64> + '_ {
        lane_values(self.row_lines(state), self.actions)
    }

    /// The aligned storage lanes of one row, padding included. The slots
    /// past `actions` in the final lane are always `0.0`.
    pub(crate) fn row_lines(&self, state: usize) -> &[QLane] {
        &self.lines[state * self.stride..(state + 1) * self.stride]
    }

    /// Lanes per row: `actions` rounded up to a multiple of [`LANES`].
    pub(crate) fn stride(&self) -> usize {
        self.stride
    }

    /// The cached lowest-index maximizer of one row.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub(crate) fn row_max_entry(&self, state: usize) -> RowMax {
        assert!(state < self.states, "state out of range");
        self.row_max[state]
    }

    /// Brute-force lowest-index maximizer of a row.
    fn scan_row(&self, state: usize) -> RowMax {
        scan_lanes(self.row_lines(state), self.actions)
    }

    /// Restores the cache invariant after `values[state, action] = value`.
    ///
    /// O(1) unless the write lowered the current row maximum, which forces
    /// an O(actions) rescan of that row.
    fn note_write(&mut self, state: usize, action: usize, value: f64) {
        let lanes = &self.lines[state * self.stride..(state + 1) * self.stride];
        note_row_write(&mut self.row_max[state], lanes, self.actions, action, value);
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Number of actions.
    pub fn actions(&self) -> usize {
        self.actions
    }

    /// Q(S, A).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, state: usize, action: usize) -> f64 {
        let (line, lane) = self.index(state, action);
        self.lines[line].0[lane]
    }

    /// Sets Q(S, A).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, state: usize, action: usize, value: f64) {
        let (line, lane) = self.index(state, action);
        self.lines[line].0[lane] = value;
        self.note_write(state, action, value);
    }

    /// Adds `delta` to Q(S, A) — the Algorithm 1 update's in-place form.
    pub fn add(&mut self, state: usize, action: usize, delta: f64) {
        let (line, lane) = self.index(state, action);
        self.lines[line].0[lane] += delta;
        let value = self.lines[line].0[lane];
        self.note_write(state, action, value);
    }

    /// The action with the largest Q value among those `mask` allows, and
    /// its value. Ties break toward the lower index, deterministically.
    ///
    /// Masking exists because not every action is feasible for every
    /// inference: e.g. a DSP cannot execute a recurrent model, so its
    /// actions are masked out while MobileBERT is being scheduled.
    ///
    /// O(1) whenever the cached row maximizer is allowed by `mask` (the
    /// global maximizer over a superset is the maximizer of any allowed
    /// subset containing it); otherwise a masked O(actions) scan.
    ///
    /// Returns `None` if the mask allows no action.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != actions` or `state` is out of range.
    pub fn best_action(&self, state: usize, mask: &[bool]) -> Option<(usize, f64)> {
        assert_eq!(
            mask.len(),
            self.actions,
            "mask length must equal action count"
        );
        assert!(state < self.states, "state out of range");
        best_allowed(
            self.row_lines(state),
            self.actions,
            self.row_max[state],
            mask,
        )
    }

    /// The largest Q value in a state over allowed actions (`max_a'
    /// Q(S', A')` in the bootstrap term), or 0.0 when nothing is allowed.
    pub fn max_value(&self, state: usize, mask: &[bool]) -> f64 {
        self.best_action(state, mask).map_or(0.0, |(_, v)| v)
    }

    /// Memory footprint of the table's value storage in bytes, padding
    /// included — the Section VI-C overhead statistic.
    pub fn memory_bytes(&self) -> usize {
        self.lines.len() * std::mem::size_of::<QLane>()
    }

    /// FNV-1a digest over the logical values' IEEE 754 bits, state-major
    /// and action-minor (padding excluded). Overlay snapshots record this
    /// to bind their sparse deltas to the exact base table they were
    /// taken over; two tables with equal logical values digest equally
    /// regardless of storage backend.
    pub fn value_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for state in 0..self.states {
            for v in self.row_values(state) {
                for byte in v.to_bits().to_le_bytes() {
                    hash ^= byte as u64;
                    hash = hash.wrapping_mul(FNV_PRIME);
                }
            }
        }
        hash
    }

    /// Copies every value from `source` — the paper's learning transfer
    /// ("transferring a model trained on one device to other devices in
    /// order to expedite the convergence", Section IV).
    ///
    /// Transfer requires identical table shapes: the donor and recipient
    /// share the state encoding, and action spaces are aligned by the core
    /// crate before transfer.
    ///
    /// # Errors
    ///
    /// Returns an error describing the shape mismatch if the dimensions
    /// differ.
    pub fn transfer_from(&mut self, source: &QTable) -> Result<(), ShapeMismatchError> {
        if self.states != source.states || self.actions != source.actions {
            return Err(ShapeMismatchError {
                expected: (self.states, self.actions),
                found: (source.states, source.actions),
            });
        }
        self.lines.copy_from_slice(&source.lines);
        self.row_max.copy_from_slice(&source.row_max);
        Ok(())
    }

    fn index(&self, state: usize, action: usize) -> (usize, usize) {
        assert!(
            state < self.states,
            "state {state} out of range ({})",
            self.states
        );
        assert!(
            action < self.actions,
            "action {action} out of range ({})",
            self.actions
        );
        (state * self.stride + action / LANES, action % LANES)
    }
}

// Serde is hand-written rather than derived so persisted snapshots carry
// only the truth (`states`, `actions` and the logical row-major values) —
// the lane packing and argmax cache are rebuilt on load — and so a
// tampered or truncated snapshot is rejected at parse time instead of
// panicking on first use.
impl Serialize for QTable {
    fn to_value(&self) -> serde::Value {
        let values: Vec<f64> = (0..self.states).flat_map(|s| self.row_values(s)).collect();
        serde::Value::Object(vec![
            ("states".to_string(), self.states.to_value()),
            ("actions".to_string(), self.actions.to_value()),
            ("values".to_string(), values.to_value()),
        ])
    }
}

impl Deserialize for QTable {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::expected("an object", value))?;
        let states: usize = serde::__field(obj, "states", "QTable")?;
        let actions: usize = serde::__field(obj, "actions", "QTable")?;
        let values: Vec<f64> = serde::__field(obj, "values", "QTable")?;
        if states == 0 || actions == 0 {
            return Err(serde::Error::custom(format!(
                "q-table dimensions must be non-zero, found {states}x{actions}"
            )));
        }
        if values.len() != states * actions {
            return Err(serde::Error::custom(format!(
                "q-table dimension mismatch: {states}x{actions} needs {} values, found {}",
                states * actions,
                values.len()
            )));
        }
        Ok(QTable::from_values(states, actions, &values))
    }
}

/// Error returned when transferring between Q-tables of different shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeMismatchError {
    /// The recipient's (states, actions).
    pub expected: (usize, usize),
    /// The donor's (states, actions).
    pub found: (usize, usize),
}

impl std::fmt::Display for ShapeMismatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "q-table shape mismatch: expected {}x{}, found {}x{}",
            self.expected.0, self.expected.1, self.found.0, self.found.1
        )
    }
}

impl std::error::Error for ShapeMismatchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_init_is_small_and_seeded() {
        let a = QTable::new_random(10, 5, 42);
        let b = QTable::new_random(10, 5, 42);
        let c = QTable::new_random(10, 5, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for s in 0..10 {
            for act in 0..5 {
                assert!(a.get(s, act).abs() < 0.01);
            }
        }
    }

    #[test]
    fn random_init_draw_order_is_stable() {
        // The fill order (state-major, action-minor, one `gen_range` per
        // cell) is a compatibility surface: engine seeds reproduce the
        // same initial tables forever. Pin it against a raw re-draw.
        use rand::{Rng, SeedableRng};
        let q = QTable::new_random(3, 5, 77);
        let mut rng = StdRng::seed_from_u64(77);
        for s in 0..3 {
            for a in 0..5 {
                assert_eq!(q.get(s, a), rng.gen_range(-0.01..0.01));
            }
        }
    }

    #[test]
    fn rows_are_lane_aligned_and_padded_with_zeros() {
        let mut q = QTable::new_random(4, 11, 5);
        q.set(3, 10, 42.0);
        for s in 0..4 {
            let lanes = q.row_lines(s);
            assert_eq!(lanes.len(), 2);
            assert_eq!(std::mem::align_of_val(&lanes[0]), 64);
            // Slots 11..16 of the final lane are padding.
            for pad in 11..16 {
                assert_eq!(lanes[pad / LANES].0[pad % LANES], 0.0);
            }
        }
    }

    #[test]
    fn set_get_round_trip() {
        let mut q = QTable::new_zeroed(3, 2);
        q.set(2, 1, 7.5);
        assert_eq!(q.get(2, 1), 7.5);
        q.add(2, 1, 0.5);
        assert_eq!(q.get(2, 1), 8.0);
    }

    #[test]
    fn best_action_respects_mask() {
        let mut q = QTable::new_zeroed(1, 3);
        q.set(0, 0, 1.0);
        q.set(0, 1, 5.0);
        q.set(0, 2, 3.0);
        assert_eq!(q.best_action(0, &[true, true, true]), Some((1, 5.0)));
        assert_eq!(q.best_action(0, &[true, false, true]), Some((2, 3.0)));
        assert_eq!(q.best_action(0, &[false, false, false]), None);
    }

    #[test]
    fn max_value_defaults_to_zero_when_fully_masked() {
        let q = QTable::new_zeroed(1, 2);
        assert_eq!(q.max_value(0, &[false, false]), 0.0);
    }

    #[test]
    fn cache_survives_a_lowered_maximum() {
        // Raising, tying and then lowering the maximum exercises every
        // branch of the incremental maintenance, including the rescan.
        let mut q = QTable::new_zeroed(1, 4);
        q.set(0, 2, 9.0);
        assert_eq!(q.best_action(0, &[true; 4]), Some((2, 9.0)));
        // A tie at a lower index must steal the argmax...
        q.set(0, 1, 9.0);
        assert_eq!(q.best_action(0, &[true; 4]), Some((1, 9.0)));
        // ...and a tie at a higher index must not.
        q.set(0, 3, 9.0);
        assert_eq!(q.best_action(0, &[true; 4]), Some((1, 9.0)));
        // Lowering the cached maximum forces the rescan path.
        q.set(0, 1, -1.0);
        assert_eq!(q.best_action(0, &[true; 4]), Some((2, 9.0)));
        q.set(0, 2, -2.0);
        assert_eq!(q.best_action(0, &[true; 4]), Some((3, 9.0)));
        q.set(0, 3, -3.0);
        assert_eq!(q.best_action(0, &[true; 4]), Some((0, 0.0)));
        // `add` maintains the cache too.
        q.add(0, 2, 10.0);
        assert_eq!(q.best_action(0, &[true; 4]), Some((2, 8.0)));
    }

    #[test]
    fn masked_cached_action_falls_back_to_scan() {
        let mut q = QTable::new_zeroed(1, 3);
        q.set(0, 0, 5.0);
        q.set(0, 1, 4.0);
        // The cached argmax (action 0) is masked out: the scan must find
        // the best allowed action instead.
        assert_eq!(q.best_action(0, &[false, true, true]), Some((1, 4.0)));
    }

    #[test]
    fn paper_scale_table_fits_the_memory_budget() {
        // ~3,072 states × 66 actions: Section VI-C reports 0.4 MB. An f64
        // table padded to lane stride 72 lands at 1.69 MB; the paper
        // presumably stores narrower values, so we assert the same order
        // of magnitude.
        let q = QTable::new_zeroed(3_072, 66);
        let mb = q.memory_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb < 2.0, "table too large: {mb} MB");
    }

    #[test]
    fn transfer_copies_values() {
        let mut donor = QTable::new_zeroed(2, 2);
        donor.set(1, 1, 9.0);
        let mut recipient = QTable::new_random(2, 2, 1);
        recipient.transfer_from(&donor).unwrap();
        assert_eq!(recipient.get(1, 1), 9.0);
        // The cache must follow the transferred values.
        assert_eq!(recipient.best_action(1, &[true, true]), Some((1, 9.0)));
    }

    #[test]
    fn transfer_rejects_shape_mismatch() {
        let donor = QTable::new_zeroed(2, 3);
        let mut recipient = QTable::new_zeroed(2, 2);
        let err = recipient.transfer_from(&donor).unwrap_err();
        assert_eq!(err.expected, (2, 2));
        assert_eq!(err.found, (2, 3));
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn serde_round_trip() {
        let q = QTable::new_random(4, 3, 9);
        let json = serde_json::to_string(&q).unwrap();
        let back: QTable = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
        // The rebuilt cache must answer like the original.
        for s in 0..4 {
            assert_eq!(
                q.best_action(s, &[true; 3]),
                back.best_action(s, &[true; 3])
            );
        }
    }

    #[test]
    fn serialized_values_exclude_padding() {
        // The wire format carries exactly states × actions values — the
        // lane padding is a storage detail, not part of the snapshot.
        let q = QTable::new_random(2, 3, 4);
        let json = serde_json::to_string(&q).unwrap();
        let value: serde::Value = serde_json::from_str(&json).unwrap();
        let obj = value.as_object().unwrap();
        let values: Vec<f64> = serde::__field(obj, "values", "test").unwrap();
        assert_eq!(values.len(), 6);
        assert_eq!(values[4], q.get(1, 1));
    }

    #[test]
    fn deserialize_rejects_dimension_mismatch() {
        // 2x2 header over 3 values: a truncated or tampered snapshot.
        let json = r#"{"states":2,"actions":2,"values":[0.0,1.0,2.0]}"#;
        let err = serde_json::from_str::<QTable>(json).unwrap_err();
        assert!(
            err.to_string().contains("dimension mismatch"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn deserialize_rejects_zero_dimensions() {
        let json = r#"{"states":0,"actions":5,"values":[]}"#;
        let err = serde_json::from_str::<QTable>(json).unwrap_err();
        assert!(
            err.to_string().contains("non-zero"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn deserialize_rejects_missing_fields() {
        let json = r#"{"states":2,"actions":2}"#;
        assert!(serde_json::from_str::<QTable>(json).is_err());
    }

    #[test]
    fn value_digest_tracks_logical_values_only() {
        let a = QTable::new_random(4, 11, 9);
        let mut b = a.clone();
        assert_eq!(a.value_digest(), b.value_digest());
        b.set(2, 3, 42.0);
        assert_ne!(a.value_digest(), b.value_digest());
        // Serde rebuilds the lane packing from logical values: the digest
        // must survive the round trip bit for bit.
        let back: QTable = serde_json::from_str(&serde_json::to_string(&a).unwrap()).unwrap();
        assert_eq!(a.value_digest(), back.value_digest());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_state_panics() {
        let q = QTable::new_zeroed(2, 2);
        let _ = q.get(2, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = QTable::new_zeroed(0, 5);
    }
}
