//! The Q-table: a dense `states × actions` lookup table of action values.
//!
//! The paper sizes this concretely: about 3,072 states × ~66 actions,
//! for a memory footprint of roughly 0.4 MB (Section VI-C) — "only 0.01%
//! of the 3 GB DRAM capacity of a typical mid-end mobile device".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense table of Q(S, A) values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    states: usize,
    actions: usize,
    values: Vec<f64>,
}

impl QTable {
    /// Creates a table initialized with small random values, as Algorithm 1
    /// of the paper prescribes ("Initialize Q(S,A) as random values").
    ///
    /// # Panics
    ///
    /// Panics if `states` or `actions` is zero.
    pub fn new_random(states: usize, actions: usize, seed: u64) -> Self {
        assert!(
            states > 0 && actions > 0,
            "Q-table dimensions must be non-zero"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let values = (0..states * actions)
            .map(|_| rng.gen_range(-0.01..0.01))
            .collect();
        QTable {
            states,
            actions,
            values,
        }
    }

    /// Creates a zero-initialized table (useful for deterministic tests).
    pub fn new_zeroed(states: usize, actions: usize) -> Self {
        assert!(
            states > 0 && actions > 0,
            "Q-table dimensions must be non-zero"
        );
        QTable {
            states,
            actions,
            values: vec![0.0; states * actions],
        }
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Number of actions.
    pub fn actions(&self) -> usize {
        self.actions
    }

    /// Q(S, A).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, state: usize, action: usize) -> f64 {
        self.values[self.index(state, action)]
    }

    /// Sets Q(S, A).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, state: usize, action: usize, value: f64) {
        let i = self.index(state, action);
        self.values[i] = value;
    }

    /// Adds `delta` to Q(S, A) — the Algorithm 1 update's in-place form.
    pub fn add(&mut self, state: usize, action: usize, delta: f64) {
        let i = self.index(state, action);
        self.values[i] += delta;
    }

    /// The action with the largest Q value among those `mask` allows, and
    /// its value. Ties break toward the lower index, deterministically.
    ///
    /// Masking exists because not every action is feasible for every
    /// inference: e.g. a DSP cannot execute a recurrent model, so its
    /// actions are masked out while MobileBERT is being scheduled.
    ///
    /// Returns `None` if the mask allows no action.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != actions` or `state` is out of range.
    pub fn best_action(&self, state: usize, mask: &[bool]) -> Option<(usize, f64)> {
        assert_eq!(
            mask.len(),
            self.actions,
            "mask length must equal action count"
        );
        assert!(state < self.states, "state out of range");
        let mut best: Option<(usize, f64)> = None;
        for (a, &allowed) in mask.iter().enumerate() {
            if !allowed {
                continue;
            }
            let v = self.get(state, a);
            if best.is_none_or(|(_, bv)| v > bv) {
                best = Some((a, v));
            }
        }
        best
    }

    /// The largest Q value in a state over allowed actions (`max_a'
    /// Q(S', A')` in the bootstrap term), or 0.0 when nothing is allowed.
    pub fn max_value(&self, state: usize, mask: &[bool]) -> f64 {
        self.best_action(state, mask).map_or(0.0, |(_, v)| v)
    }

    /// Memory footprint of the table's values in bytes — the Section VI-C
    /// overhead statistic.
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
    }

    /// Copies every value from `source` — the paper's learning transfer
    /// ("transferring a model trained on one device to other devices in
    /// order to expedite the convergence", Section IV).
    ///
    /// Transfer requires identical table shapes: the donor and recipient
    /// share the state encoding, and action spaces are aligned by the core
    /// crate before transfer.
    ///
    /// # Errors
    ///
    /// Returns an error describing the shape mismatch if the dimensions
    /// differ.
    pub fn transfer_from(&mut self, source: &QTable) -> Result<(), ShapeMismatchError> {
        if self.states != source.states || self.actions != source.actions {
            return Err(ShapeMismatchError {
                expected: (self.states, self.actions),
                found: (source.states, source.actions),
            });
        }
        self.values.copy_from_slice(&source.values);
        Ok(())
    }

    fn index(&self, state: usize, action: usize) -> usize {
        assert!(
            state < self.states,
            "state {state} out of range ({})",
            self.states
        );
        assert!(
            action < self.actions,
            "action {action} out of range ({})",
            self.actions
        );
        state * self.actions + action
    }
}

/// Error returned when transferring between Q-tables of different shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeMismatchError {
    /// The recipient's (states, actions).
    pub expected: (usize, usize),
    /// The donor's (states, actions).
    pub found: (usize, usize),
}

impl std::fmt::Display for ShapeMismatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "q-table shape mismatch: expected {}x{}, found {}x{}",
            self.expected.0, self.expected.1, self.found.0, self.found.1
        )
    }
}

impl std::error::Error for ShapeMismatchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_init_is_small_and_seeded() {
        let a = QTable::new_random(10, 5, 42);
        let b = QTable::new_random(10, 5, 42);
        let c = QTable::new_random(10, 5, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for s in 0..10 {
            for act in 0..5 {
                assert!(a.get(s, act).abs() < 0.01);
            }
        }
    }

    #[test]
    fn set_get_round_trip() {
        let mut q = QTable::new_zeroed(3, 2);
        q.set(2, 1, 7.5);
        assert_eq!(q.get(2, 1), 7.5);
        q.add(2, 1, 0.5);
        assert_eq!(q.get(2, 1), 8.0);
    }

    #[test]
    fn best_action_respects_mask() {
        let mut q = QTable::new_zeroed(1, 3);
        q.set(0, 0, 1.0);
        q.set(0, 1, 5.0);
        q.set(0, 2, 3.0);
        assert_eq!(q.best_action(0, &[true, true, true]), Some((1, 5.0)));
        assert_eq!(q.best_action(0, &[true, false, true]), Some((2, 3.0)));
        assert_eq!(q.best_action(0, &[false, false, false]), None);
    }

    #[test]
    fn max_value_defaults_to_zero_when_fully_masked() {
        let q = QTable::new_zeroed(1, 2);
        assert_eq!(q.max_value(0, &[false, false]), 0.0);
    }

    #[test]
    fn paper_scale_table_fits_the_memory_budget() {
        // ~3,072 states × 66 actions: Section VI-C reports 0.4 MB. An f64
        // table lands at 1.6 MB; the paper presumably stores narrower
        // values, so we assert the same order of magnitude.
        let q = QTable::new_zeroed(3_072, 66);
        let mb = q.memory_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb < 2.0, "table too large: {mb} MB");
    }

    #[test]
    fn transfer_copies_values() {
        let mut donor = QTable::new_zeroed(2, 2);
        donor.set(1, 1, 9.0);
        let mut recipient = QTable::new_random(2, 2, 1);
        recipient.transfer_from(&donor).unwrap();
        assert_eq!(recipient.get(1, 1), 9.0);
    }

    #[test]
    fn transfer_rejects_shape_mismatch() {
        let donor = QTable::new_zeroed(2, 3);
        let mut recipient = QTable::new_zeroed(2, 2);
        let err = recipient.transfer_from(&donor).unwrap_err();
        assert_eq!(err.expected, (2, 2));
        assert_eq!(err.found, (2, 3));
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn serde_round_trip() {
        let q = QTable::new_random(4, 3, 9);
        let json = serde_json::to_string(&q).unwrap();
        let back: QTable = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_state_panics() {
        let q = QTable::new_zeroed(2, 2);
        let _ = q.get(2, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = QTable::new_zeroed(0, 5);
    }
}
