//! The Q-learning agent — Algorithm 1 of the paper.
//!
//! ```text
//! Initialize Q(S,A) as random values
//! Repeat (whenever inference begins):
//!   Observe state and store in S
//!   if rand() < ε:  choose action A randomly
//!   else:           choose action A with the largest Q(S,A)
//!   Run inference on a target defined by A
//!   (when inference ends)
//!   Measure R_latency, estimate R_energy, obtain R_accuracy; compute R
//!   Observe new state S'; choose A' with the largest Q(S',A')
//!   Q(S,A) ← Q(S,A) + γ[R + µ·Q(S',A') − Q(S,A)]
//!   S ← S'
//! ```
//!
//! γ is the learning rate and µ the discount factor. The paper's
//! sensitivity study (Section V-C) found γ = 0.9 ("the more the reward is
//! reflected to the Q values, the better") and µ = 0.1 ("consecutive
//! states have a weak relationship due to the stochastic nature") work
//! best; those are [`Hyperparameters::paper`].

use std::sync::Arc;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::policy::EpsilonGreedy;
use crate::qstore::QStore;
use crate::qtable::{QTable, ShapeMismatchError};

/// Q-learning hyperparameters (Algorithm 1's γ, µ and ε).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hyperparameters {
    /// Learning rate γ: how much new information overrides old.
    pub learning_rate: f64,
    /// Discount factor µ: weight of near-future rewards.
    pub discount: f64,
    /// Exploration probability ε.
    pub epsilon: f64,
}

impl Hyperparameters {
    /// The paper's chosen values: γ = 0.9, µ = 0.1, ε = 0.1.
    pub fn paper() -> Self {
        Hyperparameters {
            learning_rate: 0.9,
            discount: 0.1,
            epsilon: 0.1,
        }
    }

    /// Validates the hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if any value lies outside [0, 1].
    fn validate(&self) {
        for (name, v) in [
            ("learning_rate", self.learning_rate),
            ("discount", self.discount),
            ("epsilon", self.epsilon),
        ] {
            assert!(
                v.is_finite() && (0.0..=1.0).contains(&v),
                "{name} must be in [0, 1]"
            );
        }
    }
}

impl Default for Hyperparameters {
    fn default() -> Self {
        Hyperparameters::paper()
    }
}

/// A tabular Q-learning agent over opaque state/action indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QLearningAgent {
    q: QStore,
    params: Hyperparameters,
    policy: EpsilonGreedy,
    updates: u64,
}

impl QLearningAgent {
    /// Creates an agent with a randomly initialized dense Q-table.
    pub fn new(states: usize, actions: usize, params: Hyperparameters, seed: u64) -> Self {
        QLearningAgent::with_store(
            QStore::Dense(QTable::new_random(states, actions, seed)),
            params,
        )
    }

    /// Creates an agent around an existing (e.g. transferred) Q-table.
    pub fn with_table(q: QTable, params: Hyperparameters) -> Self {
        QLearningAgent::with_store(QStore::Dense(q), params)
    }

    /// Creates an agent around any Q-value store — dense, or a
    /// copy-on-write overlay over a shared base.
    pub fn with_store(q: QStore, params: Hyperparameters) -> Self {
        params.validate();
        QLearningAgent {
            policy: EpsilonGreedy::new(params.epsilon),
            q,
            params,
            updates: 0,
        }
    }

    /// The agent's Q-value store.
    pub fn store(&self) -> &QStore {
        &self.q
    }

    /// Mutable access to the store, for in-place warm-starts such as
    /// the engine's cross-device action-matched transfer. Writing through
    /// this reference keeps the argmax cache consistent (every write goes
    /// through [`QStore::set`]/[`QStore::add`]).
    pub fn store_mut(&mut self) -> &mut QStore {
        &mut self.q
    }

    /// Flattens this agent's current Q values into an immutable shared
    /// base table for copy-on-write fleet members ([`QStore::cow`]).
    pub fn shared_base(&self) -> Arc<QTable> {
        Arc::new(self.q.to_table())
    }

    /// A copy-on-write variant of this agent: same hyperparameters, same
    /// policy state (including a frozen ε), same update count, but backed
    /// by an empty overlay over `base` instead of a private dense table.
    /// When `base` holds this agent's own values (see
    /// [`QLearningAgent::shared_base`]), the variant is behaviourally
    /// indistinguishable from a dense clone.
    ///
    /// # Errors
    ///
    /// Returns the shape mismatch if `base` differs in size from this
    /// agent's table.
    pub fn overlay_variant(&self, base: &Arc<QTable>) -> Result<Self, ShapeMismatchError> {
        if base.states() != self.q.states() || base.actions() != self.q.actions() {
            return Err(ShapeMismatchError {
                expected: (self.q.states(), self.q.actions()),
                found: (base.states(), base.actions()),
            });
        }
        Ok(QLearningAgent {
            q: QStore::cow(base.clone()),
            params: self.params,
            policy: self.policy,
            updates: self.updates,
        })
    }

    /// The agent's hyperparameters.
    pub fn params(&self) -> Hyperparameters {
        self.params
    }

    /// Number of updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The policy's current exploration probability — `params().epsilon`
    /// until [`QLearningAgent::freeze`] pins it to zero. Decision kernels
    /// feed this into their shared epsilon-greedy protocol.
    pub fn epsilon(&self) -> f64 {
        self.policy.epsilon()
    }

    /// Selects an action for `state` with the epsilon-greedy policy.
    ///
    /// Returns `None` if `mask` allows no action.
    pub fn select_action(&self, state: usize, mask: &[bool], rng: &mut StdRng) -> Option<usize> {
        self.policy.choose(&self.q, state, mask, rng)
    }

    /// Selects the greedy (exploitation-only) action — what AutoScale does
    /// once "the learning is complete" (Section IV-B).
    pub fn select_greedy(&self, state: usize, mask: &[bool]) -> Option<usize> {
        self.q.best_action(state, mask).map(|(a, _)| a)
    }

    /// Applies the Algorithm 1 update for an observed transition.
    ///
    /// `next_mask` restricts which actions may back up from `next_state`
    /// (A' must be executable there).
    pub fn update(
        &mut self,
        state: usize,
        action: usize,
        reward: f64,
        next_state: usize,
        next_mask: &[bool],
    ) {
        let bootstrap = self.q.max_value(next_state, next_mask);
        let current = self.q.get(state, action);
        let target = reward + self.params.discount * bootstrap;
        let updated = current + self.params.learning_rate * (target - current);
        self.q.set(state, action, updated);
        self.updates += 1;
    }

    /// Warm-starts this agent from another agent's table (learning
    /// transfer, paper Section VI-C / Fig. 14).
    ///
    /// # Errors
    ///
    /// Returns the shape-mismatch error if the tables differ in size.
    pub fn transfer_from(&mut self, donor: &QLearningAgent) -> Result<(), ShapeMismatchError> {
        self.q.transfer_from(&donor.q)
    }

    /// Switches the agent to pure exploitation (ε = 0) after convergence.
    pub fn freeze(&mut self) {
        self.policy = EpsilonGreedy::greedy();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A 2-state, 2-action toy problem where action 1 is always better.
    fn train_toy(params: Hyperparameters, episodes: usize) -> QLearningAgent {
        let mut agent = QLearningAgent::new(2, 2, params, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mask = [true, true];
        let mut state = 0;
        for _ in 0..episodes {
            let action = agent.select_action(state, &mask, &mut rng).unwrap();
            let reward = if action == 1 { 1.0 } else { -1.0 };
            let next_state = 1 - state;
            agent.update(state, action, reward, next_state, &mask);
            state = next_state;
        }
        agent
    }

    #[test]
    fn learns_the_better_action() {
        let agent = train_toy(Hyperparameters::paper(), 200);
        for s in 0..2 {
            assert_eq!(agent.select_greedy(s, &[true, true]), Some(1), "state {s}");
            assert!(agent.store().get(s, 1) > agent.store().get(s, 0));
        }
    }

    #[test]
    fn update_moves_toward_target() {
        let mut agent =
            QLearningAgent::with_table(QTable::new_zeroed(2, 2), Hyperparameters::paper());
        agent.update(0, 0, 10.0, 1, &[true, true]);
        // Q was 0, bootstrap 0, so new Q = 0 + 0.9 * (10 − 0) = 9.
        assert!((agent.store().get(0, 0) - 9.0).abs() < 1e-12);
        assert_eq!(agent.updates(), 1);
    }

    #[test]
    fn discount_weights_bootstrap() {
        let mut q = QTable::new_zeroed(2, 1);
        q.set(1, 0, 100.0);
        let params = Hyperparameters {
            learning_rate: 1.0,
            discount: 0.5,
            epsilon: 0.0,
        };
        let mut agent = QLearningAgent::with_table(q, params);
        agent.update(0, 0, 0.0, 1, &[true]);
        // Full learning rate: Q(0,0) = R + 0.5 * Q(1,0) = 50.
        assert!((agent.store().get(0, 0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_speeds_up_convergence() {
        // Train a donor fully; a transferred agent should act optimally
        // from its very first greedy decision.
        let donor = train_toy(Hyperparameters::paper(), 300);
        let mut fresh = QLearningAgent::new(2, 2, Hyperparameters::paper(), 99);
        fresh.transfer_from(&donor).unwrap();
        assert_eq!(fresh.select_greedy(0, &[true, true]), Some(1));
    }

    #[test]
    fn frozen_agent_is_greedy() {
        let mut agent = train_toy(Hyperparameters::paper(), 200);
        agent.freeze();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            assert_eq!(agent.select_action(0, &[true, true], &mut rng), Some(1));
        }
    }

    #[test]
    fn masked_next_state_bootstraps_zero() {
        let mut q = QTable::new_zeroed(2, 1);
        q.set(1, 0, 100.0);
        let params = Hyperparameters {
            learning_rate: 1.0,
            discount: 0.5,
            epsilon: 0.0,
        };
        let mut agent = QLearningAgent::with_table(q, params);
        agent.update(0, 0, 2.0, 1, &[false]);
        assert!((agent.store().get(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overlay_variant_matches_a_dense_clone() {
        let mut donor = train_toy(Hyperparameters::paper(), 200);
        donor.freeze();
        let base = donor.shared_base();
        let overlay = donor.overlay_variant(&base).unwrap();
        assert_eq!(overlay.store().kind(), crate::qstore::QStoreKind::Cow);
        assert_eq!(overlay.epsilon(), 0.0, "frozen policy state is copied");
        assert_eq!(overlay.updates(), donor.updates());
        // Drive both with the same RNG stream and updates: the overlay
        // must be behaviourally indistinguishable from a dense clone.
        let mut dense = donor.clone();
        let mut cow = overlay;
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let mask = [true, true];
        let mut state = 0;
        for _ in 0..50 {
            let a = dense.select_action(state, &mask, &mut rng_a).unwrap();
            let b = cow.select_action(state, &mask, &mut rng_b).unwrap();
            assert_eq!(a, b);
            dense.update(state, a, 0.5, 1 - state, &mask);
            cow.update(state, b, 0.5, 1 - state, &mask);
            state = 1 - state;
        }
        assert_eq!(dense.store(), cow.store());
    }

    #[test]
    fn overlay_variant_rejects_a_mismatched_base() {
        let agent = QLearningAgent::new(2, 2, Hyperparameters::paper(), 0);
        let wrong = Arc::new(QTable::new_zeroed(3, 2));
        let err = agent.overlay_variant(&wrong).unwrap_err();
        assert_eq!(err.expected, (2, 2));
        assert_eq!(err.found, (3, 2));
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_hyperparameters_panic() {
        let bad = Hyperparameters {
            learning_rate: 2.0,
            discount: 0.1,
            epsilon: 0.1,
        };
        let _ = QLearningAgent::new(1, 1, bad, 0);
    }
}
