//! Linear function-approximation Q-learning — the alternative the paper
//! rejects.
//!
//! Section IV of the paper weighs Q-learning against TD-learning and deep
//! RL and picks the lookup table for its "low latency overhead". To make
//! that trade-off measurable rather than asserted, this module implements
//! the lightest member of the function-approximation family: per-action
//! linear value functions `Q(s, a) = w_a · φ(s)` trained by semi-gradient
//! TD(0). It shares the [`crate::agent::QLearningAgent`] interface shape
//! so the ablation bench can swap it in, compare decision latency (a dot
//! product per action instead of one table read), convergence, and final
//! policy quality.
//!
//! A full deep-RL agent would only widen the latency gap this module
//! already demonstrates; the linear approximator is the most favourable
//! representative of that family for the mobile use case.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Q-learning agent with per-action linear value functions over a
/// continuous feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearQAgent {
    /// One weight vector (plus bias as the last entry) per action.
    weights: Vec<Vec<f64>>,
    features: usize,
    learning_rate: f64,
    discount: f64,
    epsilon: f64,
    updates: u64,
}

impl LinearQAgent {
    /// Creates an agent for `actions` actions over `features`-dimensional
    /// state features.
    ///
    /// # Panics
    ///
    /// Panics if `actions == 0`, `features == 0`, or any hyperparameter
    /// lies outside [0, 1].
    pub fn new(
        features: usize,
        actions: usize,
        learning_rate: f64,
        discount: f64,
        epsilon: f64,
    ) -> Self {
        assert!(features > 0 && actions > 0, "dimensions must be non-zero");
        for (name, v) in [
            ("learning_rate", learning_rate),
            ("discount", discount),
            ("epsilon", epsilon),
        ] {
            assert!(
                v.is_finite() && (0.0..=1.0).contains(&v),
                "{name} must be in [0, 1]"
            );
        }
        LinearQAgent {
            weights: vec![vec![0.0; features + 1]; actions],
            features,
            learning_rate,
            discount,
            epsilon,
            updates: 0,
        }
    }

    /// Number of actions.
    pub fn actions(&self) -> usize {
        self.weights.len()
    }

    /// Feature dimension (excluding the bias).
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Q(s, a) for a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `phi.len() != features` or `action` is out of range.
    pub fn value(&self, phi: &[f64], action: usize) -> f64 {
        assert_eq!(phi.len(), self.features, "feature dimension mismatch");
        let w = &self.weights[action];
        w[..self.features]
            .iter()
            .zip(phi)
            .map(|(wi, xi)| wi * xi)
            .sum::<f64>()
            + w[self.features]
    }

    /// The allowed action with the largest value, with its value.
    pub fn best_action(&self, phi: &[f64], mask: &[bool]) -> Option<(usize, f64)> {
        assert_eq!(mask.len(), self.actions(), "mask length mismatch");
        let mut best: Option<(usize, f64)> = None;
        for (a, &allowed) in mask.iter().enumerate() {
            if !allowed {
                continue;
            }
            let v = self.value(phi, a);
            if best.is_none_or(|(_, bv)| v > bv) {
                best = Some((a, v));
            }
        }
        best
    }

    /// Epsilon-greedy selection.
    pub fn select_action(&self, phi: &[f64], mask: &[bool], rng: &mut StdRng) -> Option<usize> {
        let allowed: Vec<usize> = (0..mask.len()).filter(|&a| mask[a]).collect(); // lint:hot-exempt(candidate list bounded by the action-space size; the mask changes per decision)
        if allowed.is_empty() {
            return None;
        }
        // lint:draws-exempt(the pinned epsilon-greedy protocol: one uniform draw per decision, one bounded draw on the exploration arm only; digest tests freeze it)
        if rng.gen::<f64>() < self.epsilon {
            Some(allowed[rng.gen_range(0..allowed.len())])
        } else {
            self.best_action(phi, mask).map(|(a, _)| a)
        }
    }

    /// Semi-gradient TD(0) update toward `r + µ max_a' Q(s', a')`.
    ///
    /// The step is scaled by 1/(1+‖φ‖²) (normalized LMS) so updates stay
    /// stable for arbitrary feature magnitudes.
    pub fn update(
        &mut self,
        phi: &[f64],
        action: usize,
        reward: f64,
        next_phi: &[f64],
        next_mask: &[bool],
    ) {
        let bootstrap = self
            .best_action(next_phi, next_mask)
            .map_or(0.0, |(_, v)| v);
        let target = reward + self.discount * bootstrap;
        let error = target - self.value(phi, action);
        let norm = 1.0 + phi.iter().map(|x| x * x).sum::<f64>();
        let step = self.learning_rate * error / norm;
        let w = &mut self.weights[action];
        for (wi, xi) in w[..self.features].iter_mut().zip(phi) {
            *wi += step * xi;
        }
        w[self.features] += step;
        self.updates += 1;
    }

    /// Memory footprint of the weights in bytes (for the overhead
    /// comparison against the Q-table).
    pub fn memory_bytes(&self) -> usize {
        self.weights.len() * (self.features + 1) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn learns_a_feature_dependent_policy() {
        // Two actions: action 0 pays +phi[0], action 1 pays -phi[0].
        // For positive features action 0 is better, for negative action 1.
        let mut agent = LinearQAgent::new(1, 2, 0.5, 0.0, 0.2);
        let mut r = rng();
        let mask = [true, true];
        for i in 0..2_000 {
            let x = if i % 2 == 0 { 1.0 } else { -1.0 };
            let phi = [x];
            let a = agent
                .select_action(&phi, &mask, &mut r)
                .expect("mask non-empty");
            let reward = if a == 0 { x } else { -x };
            agent.update(&phi, a, reward, &phi, &mask);
        }
        assert_eq!(agent.best_action(&[1.0], &mask).map(|(a, _)| a), Some(0));
        assert_eq!(agent.best_action(&[-1.0], &mask).map(|(a, _)| a), Some(1));
    }

    #[test]
    fn generalizes_across_unseen_feature_values() {
        // Trained only at |x| = 1, the linear model extrapolates to 3.
        let mut agent = LinearQAgent::new(1, 2, 0.5, 0.0, 0.1);
        let mut r = rng();
        let mask = [true, true];
        for i in 0..2_000 {
            let x = if i % 2 == 0 { 1.0 } else { -1.0 };
            let a = agent.select_action(&[x], &mask, &mut r).expect("non-empty");
            agent.update(&[x], a, if a == 0 { x } else { -x }, &[x], &mask);
        }
        assert_eq!(agent.best_action(&[3.0], &mask).map(|(a, _)| a), Some(0));
    }

    #[test]
    fn masked_actions_are_never_best_or_selected() {
        let mut agent = LinearQAgent::new(2, 3, 0.5, 0.0, 1.0);
        agent.weights[1] = vec![10.0, 10.0, 10.0];
        let mask = [true, false, true];
        assert_ne!(
            agent.best_action(&[1.0, 1.0], &mask).map(|(a, _)| a),
            Some(1)
        );
        let mut r = rng();
        for _ in 0..100 {
            assert_ne!(agent.select_action(&[1.0, 1.0], &mask, &mut r), Some(1));
        }
    }

    #[test]
    fn update_reduces_td_error() {
        let mut agent = LinearQAgent::new(2, 1, 0.8, 0.0, 0.0);
        let phi = [2.0, -1.0];
        let before = (5.0 - agent.value(&phi, 0)).abs();
        agent.update(&phi, 0, 5.0, &phi, &[false]);
        let after = (5.0 - agent.value(&phi, 0)).abs();
        assert!(after < before);
    }

    #[test]
    fn normalized_step_is_stable_for_large_features() {
        let mut agent = LinearQAgent::new(1, 1, 1.0, 0.0, 0.0);
        for _ in 0..100 {
            agent.update(&[1_000.0], 0, 1.0, &[1_000.0], &[false]);
            assert!(agent.value(&[1_000.0], 0).is_finite());
        }
        assert!((agent.value(&[1_000.0], 0) - 1.0).abs() < 0.01);
    }

    #[test]
    fn memory_footprint_is_tiny_compared_to_a_table() {
        // 8 features x 66 actions: under 5 KiB, vs ~1.6 MB for the dense
        // 3072x66 table — the FA trade-off is memory for per-decision
        // compute and approximation error.
        let agent = LinearQAgent::new(8, 66, 0.5, 0.1, 0.1);
        assert!(agent.memory_bytes() < 5 * 1024);
    }

    #[test]
    fn empty_mask_yields_none() {
        let agent = LinearQAgent::new(1, 2, 0.5, 0.0, 0.5);
        let mut r = rng();
        assert_eq!(agent.select_action(&[0.0], &[false, false], &mut r), None);
        assert_eq!(agent.best_action(&[0.0], &[false, false]), None);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_feature_dimension_panics() {
        let agent = LinearQAgent::new(2, 1, 0.5, 0.0, 0.0);
        let _ = agent.value(&[1.0], 0);
    }
}
