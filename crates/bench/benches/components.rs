//! Criterion benches for the substrate components: per-network latency
//! evaluation, end-to-end simulated execution, partition pricing, DBSCAN
//! discretization and GP fitting. These bound the cost of the oracle
//! sweeps and characterization runs the experiments perform.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use autoscale::prelude::*;
use autoscale_platform::{latency, ExecutionConditions, NetworkCostCache};
use autoscale_predictors::gp::RbfKernel;
use autoscale_predictors::partition::partition_cost;
use autoscale_predictors::GaussianProcess;
use autoscale_rl::Dbscan;

fn bench_components(c: &mut Criterion) {
    let sim = Simulator::new(DeviceId::Mi8Pro);
    let net = sim.network(Workload::ResNet50);
    let cpu = sim.host().processor(ProcessorKind::Cpu).expect("phone CPU");
    let cond = ExecutionConditions::max_frequency(cpu, Precision::Fp32);

    c.bench_function("network_latency_resnet50_cpu", |b| {
        b.iter(|| latency::network_latency_ms(cpu, black_box(net), &cond))
    });

    // The uncached layer walk vs the memoized cost table, on the deepest
    // and the shallowest vision networks.
    for workload in [Workload::ResNet50, Workload::MobileNetV3] {
        let net = sim.network(workload);
        let cache = NetworkCostCache::build(cpu, net);
        let name = match workload {
            Workload::ResNet50 => "resnet50",
            _ => "mobilenet_v3",
        };
        c.bench_function(&format!("latency_uncached_{name}_cpu"), |b| {
            b.iter(|| latency::network_latency_ms(cpu, black_box(net), &cond))
        });
        c.bench_function(&format!("latency_cached_{name}_cpu"), |b| {
            b.iter(|| cache.latency_ms(cpu, black_box(&cond)))
        });
    }

    c.bench_function("simulate_inference_cloud", |b| {
        let request =
            Request::at_max_frequency(&sim, Placement::Cloud(ProcessorKind::Gpu), Precision::Fp32);
        let snapshot = Snapshot::calm();
        b.iter(|| sim.execute_expected(black_box(Workload::ResNet50), &request, &snapshot))
    });

    c.bench_function("partition_sweep_resnet50", |b| {
        let cloud_gpu = sim
            .cloud()
            .processor(ProcessorKind::Gpu)
            .expect("cloud GPU");
        let link = autoscale_net::LinkModel::for_kind(autoscale_net::LinkKind::Wlan);
        b.iter(|| {
            partition_cost(
                black_box(net),
                cpu,
                &cond,
                sim.host().base_power_w(),
                cloud_gpu,
                sim.cloud().serving_overhead_ms(),
                &link,
                autoscale_net::Rssi::STRONG,
            )
        })
    });

    c.bench_function("dbscan_discretizer", |b| {
        let samples: Vec<f64> = (0..500).map(|i| (i % 97) as f64 * 1.3).collect();
        let db = Dbscan::new(5.0, 3);
        b.iter(|| db.discretizer(black_box(&samples)))
    });

    c.bench_function("gp_fit_100", |b| {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 * 0.1]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0].sin()).collect();
        b.iter(|| GaussianProcess::fit(black_box(&xs), &ys, RbfKernel::default()))
    });
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
