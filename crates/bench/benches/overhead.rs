//! Criterion benches for the paper's Section VI-C overhead analysis:
//! the serving decision (Q-table lookup), the training step (decision +
//! reward + Q update), and state encoding.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use autoscale::prelude::*;

fn warmed_engine(sim: &Simulator) -> AutoScaleEngine {
    let mut engine = AutoScaleEngine::new(sim, EngineConfig::paper());
    let mut rng = autoscale::seeded_rng(1);
    let snapshot = Snapshot::calm();
    for _ in 0..200 {
        let step = engine
            .decide(sim, Workload::MobileNetV3, &snapshot, &mut rng)
            .expect("feasible");
        let outcome = sim
            .execute_measured(Workload::MobileNetV3, &step.request, &snapshot, &mut rng)
            .expect("feasible");
        engine.learn(sim, Workload::MobileNetV3, step, &outcome, &snapshot);
    }
    engine
}

fn bench_overhead(c: &mut Criterion) {
    let sim = Simulator::new(DeviceId::Mi8Pro);
    let engine = warmed_engine(&sim);
    let snapshot = Snapshot::calm();

    c.bench_function("serving_decision", |b| {
        b.iter(|| {
            engine
                .decide_greedy(&sim, black_box(Workload::MobileNetV3), &snapshot)
                .expect("feasible")
        })
    });

    c.bench_function("state_encode", |b| {
        let states = StateSpace::paper();
        let net = sim.network(Workload::MobileNetV3);
        b.iter(|| states.encode_observation(black_box(net), &snapshot))
    });

    c.bench_function("training_step", |b| {
        let mut engine = warmed_engine(&sim);
        let mut rng = autoscale::seeded_rng(2);
        let outcome = sim
            .execute_expected(
                Workload::MobileNetV3,
                &engine
                    .decide_greedy(&sim, Workload::MobileNetV3, &snapshot)
                    .expect("feasible")
                    .request,
                &snapshot,
            )
            .expect("feasible");
        b.iter(|| {
            let step = engine
                .decide(&sim, Workload::MobileNetV3, &snapshot, &mut rng)
                .expect("feasible");
            engine.learn(
                &sim,
                Workload::MobileNetV3,
                step,
                black_box(&outcome),
                &snapshot,
            )
        })
    });

    c.bench_function("linear_fa_decision", |b| {
        // The function-approximation alternative: one dot product per
        // action per decision instead of a table read.
        use autoscale::scheduler::{LinearFaScheduler, Scheduler};
        let config = EngineConfig::paper();
        let mut fa = LinearFaScheduler::new(&sim, false, move |w| config.reward_for(w));
        let mut rng = autoscale::seeded_rng(5);
        b.iter(|| fa.decide(&sim, black_box(Workload::MobileNetV3), &snapshot, &mut rng))
    });

    c.bench_function("oracle_decision", |b| {
        // The exhaustive alternative AutoScale avoids: evaluate all ~66
        // actions through the full cost model.
        let config = EngineConfig::paper();
        let oracle =
            autoscale::scheduler::OracleScheduler::new(&sim, move |w| config.reward_for(w));
        b.iter(|| oracle.optimal_request(&sim, black_box(Workload::MobileNetV3), &snapshot))
    });
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
