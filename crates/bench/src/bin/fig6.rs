//! Figure 6: varying wireless signal strength shifts the optimal
//! edge-cloud execution target.
//!
//! Prints ResNet 50's PPW (normalized to the best edge processor) and
//! latency (normalized to the QoS target) on the Mi8Pro as the Wi-Fi and
//! Wi-Fi Direct signals weaken.

use autoscale::prelude::*;
use autoscale_bench::section;
use autoscale_net::Rssi;

fn main() {
    let sim = Simulator::new(DeviceId::Mi8Pro);
    let w = Workload::ResNet50;
    let qos = EngineConfig::paper().scenario_for(w).qos_ms();
    println!("Figure 6: ResNet 50 under varying signal strength (Mi8Pro)");

    let calm = Snapshot::calm();
    // Best edge processor for ResNet 50 on the Mi8Pro: the DSP at INT8.
    let edge_best = Request::at_max_frequency(
        &sim,
        Placement::OnDevice(ProcessorKind::Dsp),
        Precision::Int8,
    );
    let base = sim
        .execute_expected(w, &edge_best, &calm)
        .expect("DSP runs ResNet 50");

    let conditions = [
        ("strong Wi-Fi / strong Wi-Fi Direct", calm),
        (
            "weak Wi-Fi only (S4)",
            Snapshot::new(0.0, 0.0, Rssi::WEAK, calm.p2p),
        ),
        (
            "weak Wi-Fi Direct only (S5)",
            Snapshot::new(0.0, 0.0, calm.wlan, Rssi::WEAK),
        ),
        ("both weak", Snapshot::new(0.0, 0.0, Rssi::WEAK, Rssi::WEAK)),
    ];
    let targets = [
        ("Edge (Best Processor)", edge_best),
        (
            "Connected Edge (DSP)",
            Request::at_max_frequency(
                &sim,
                Placement::ConnectedEdge(ProcessorKind::Dsp),
                Precision::Int8,
            ),
        ),
        (
            "Cloud (GPU)",
            Request::at_max_frequency(&sim, Placement::Cloud(ProcessorKind::Gpu), Precision::Fp32),
        ),
    ];

    for (label, snapshot) in conditions {
        section(label);
        let mut best: Option<(&str, f64)> = None;
        for (target_label, request) in targets {
            let o = sim
                .execute_expected(w, &request, &snapshot)
                .expect("feasible");
            let ppw = base.energy_mj / o.energy_mj;
            println!(
                "  {target_label:<22} PPW {:>5.2}x   latency {:>6.2}x QoS",
                ppw,
                o.latency_ms / qos
            );
            if best.is_none_or(|(_, b)| ppw > b) {
                best = Some((target_label, ppw));
            }
        }
        println!("  optimal: {}", best.expect("targets evaluated").0);
    }
}
