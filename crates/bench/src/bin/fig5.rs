//! Figure 5: on-device interference shifts the optimal execution target.
//!
//! Prints MobileNet v3's PPW (normalized to `Edge (CPU)` with no
//! co-runner) and latency (normalized to the QoS target) on the Mi8Pro
//! under no interference (S1), a CPU-intensive co-runner (S2) and a
//! memory-intensive co-runner (S3), for each target.

use autoscale::prelude::*;
use autoscale_bench::section;

fn main() {
    let sim = Simulator::new(DeviceId::Mi8Pro);
    let w = Workload::MobileNetV3;
    let qos = EngineConfig::paper().scenario_for(w).qos_ms();
    println!("Figure 5: MobileNet v3 under co-runner interference (Mi8Pro)");

    let calm = Snapshot::calm();
    let snapshots = [
        ("no co-running app (S1)", calm),
        (
            "CPU-intensive co-runner (S2)",
            Snapshot::new(0.85, 0.10, calm.wlan, calm.p2p),
        ),
        (
            "memory-intensive co-runner (S3)",
            Snapshot::new(0.20, 0.80, calm.wlan, calm.p2p),
        ),
    ];
    let targets = [
        (
            "Edge (CPU)",
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Fp32,
        ),
        (
            "Edge (GPU)",
            Placement::OnDevice(ProcessorKind::Gpu),
            Precision::Fp32,
        ),
        (
            "Edge (DSP)",
            Placement::OnDevice(ProcessorKind::Dsp),
            Precision::Int8,
        ),
        (
            "Cloud (GPU)",
            Placement::Cloud(ProcessorKind::Gpu),
            Precision::Fp32,
        ),
    ];

    let base = sim
        .execute_expected(
            w,
            &Request::at_max_frequency(&sim, targets[0].1, targets[0].2),
            &calm,
        )
        .expect("CPU runs MobileNet v3");

    for (env_label, snapshot) in snapshots {
        section(env_label);
        let mut best: Option<(&str, f64)> = None;
        for (label, placement, precision) in targets {
            let request = Request::at_max_frequency(&sim, placement, precision);
            let o = sim
                .execute_expected(w, &request, &snapshot)
                .expect("feasible");
            let ppw = base.energy_mj / o.energy_mj;
            println!(
                "  {label:<12} PPW {:>5.2}x   latency {:>5.2}x QoS",
                ppw,
                o.latency_ms / qos
            );
            if best.is_none_or(|(_, b)| ppw > b) {
                best = Some((label, ppw));
            }
        }
        println!("  optimal: {}", best.expect("targets evaluated").0);
    }
}
