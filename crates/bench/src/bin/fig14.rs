//! Figure 14: training overhead — the reward converges within tens of
//! runs, and learning transfer accelerates convergence.
//!
//! Prints (a) the reward curve (window medians) when training from
//! scratch on the Mi8Pro, (b) convergence points with and without a
//! Q-table transferred from the Mi8Pro on the other two phones, and
//! (c) the static-vs-dynamic convergence comparison.
//!
//! Parts (b) and (c) run on the deterministic parallel harness, one cell
//! per training curve. Curve seeds stay explicit (scratch and
//! transferred runs must pair on the same seed), so results are
//! bit-identical for any `--threads` value.

use autoscale::experiment::{self, TrainingCurve};
use autoscale::parallel::{run_cells, threads_from_args, Cell};
use autoscale::prelude::*;
use autoscale_bench::{mean, section, TRAIN_RUNS};

fn main() {
    let threads = threads_from_args(std::env::args().skip(1));
    let config = EngineConfig::paper();
    println!("Figure 14: reward convergence and learning transfer");

    // (a) Reward curve from scratch, Mi8Pro, calm environment.
    let mi8 = Simulator::new(DeviceId::Mi8Pro);
    let curve = experiment::training_curve(
        &mi8,
        Workload::InceptionV1,
        EnvironmentId::S1,
        150,
        config,
        7,
        None,
    );
    section("reward curve (Mi8Pro, Inception v1, S1) — window medians of 10");
    for (i, chunk) in curve.rewards.chunks(10).enumerate() {
        let mut sorted = chunk.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite rewards"));
        println!(
            "  runs {:>3}-{:>3}: median reward {:>9.1}",
            i * 10 + 1,
            i * 10 + chunk.len(),
            sorted[chunk.len() / 2]
        );
    }
    println!(
        "  converged at run {}",
        curve
            .converged_at
            .map_or("-".to_string(), |c| c.to_string())
    );

    // (b) Transfer: Mi8Pro-trained engine warm-starts the other phones.
    section("learning transfer (Mi8Pro donor)");
    let donor = experiment::train_engine(
        &mi8,
        &Workload::ALL,
        &EnvironmentId::STATIC,
        TRAIN_RUNS,
        config,
        17,
    );
    // One cell per (device, transferred?, seed) training curve; scratch
    // and transferred pair on the same explicit seed 20+s.
    let transfer_specs: Vec<(DeviceId, bool, u64)> = [DeviceId::GalaxyS10e, DeviceId::MotoXForce]
        .iter()
        .flat_map(|&d| {
            [false, true]
                .iter()
                .flat_map(move |&t| (0..6).map(move |s| (d, t, 20 + s)))
        })
        .collect();
    let curves = run_cells(
        threads,
        1400,
        &transfer_specs,
        |cell: &Cell<'_, (DeviceId, bool, u64)>| {
            let (device, transferred, seed) = *cell.spec;
            let sim = Simulator::new(device);
            experiment::training_curve(
                &sim,
                Workload::MobileNetV2,
                EnvironmentId::S1,
                200,
                config,
                seed,
                transferred.then_some(&donor),
            )
        },
    );
    let avg = |cs: &[TrainingCurve], cap: usize| {
        mean(
            &cs.iter()
                .map(|c| c.converged_at.unwrap_or(cap) as f64)
                .collect::<Vec<_>>(),
        )
    };
    for (device_idx, device) in [DeviceId::GalaxyS10e, DeviceId::MotoXForce]
        .iter()
        .enumerate()
    {
        let base = device_idx * 12;
        let s = avg(&curves[base..base + 6], 200);
        let t = avg(&curves[base + 6..base + 12], 200);
        println!(
            "  {device}: scratch converges ~run {s:.0}, transferred ~run {t:.0} ({:.1}% faster)",
            (1.0 - t / s) * 100.0
        );
    }

    // (c) Static vs dynamic environments.
    section("static vs dynamic convergence (Mi8Pro, MobileNet v1)");
    let env_specs: Vec<(EnvironmentId, u64)> = [EnvironmentId::S1, EnvironmentId::D2]
        .iter()
        .flat_map(|&e| (0..6).map(move |s| (e, 30 + s)))
        .collect();
    let env_curves = run_cells(
        threads,
        1410,
        &env_specs,
        |cell: &Cell<'_, (EnvironmentId, u64)>| {
            let (env, seed) = *cell.spec;
            experiment::training_curve(&mi8, Workload::MobileNetV1, env, 250, config, seed, None)
        },
    );
    for (env_idx, label) in ["static S1", "dynamic D2"].iter().enumerate() {
        let a = avg(&env_curves[env_idx * 6..(env_idx + 1) * 6], 250);
        println!("  {label}: converges ~run {a:.0}");
    }
}
