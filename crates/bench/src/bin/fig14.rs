//! Figure 14: training overhead — the reward converges within tens of
//! runs, and learning transfer accelerates convergence.
//!
//! Prints (a) the reward curve (window medians) when training from
//! scratch on the Mi8Pro, (b) convergence points with and without a
//! Q-table transferred from the Mi8Pro on the other two phones, and
//! (c) the static-vs-dynamic convergence comparison.

use autoscale::experiment::{self, TrainingCurve};
use autoscale::prelude::*;
use autoscale_bench::{mean, section, TRAIN_RUNS};

fn main() {
    let config = EngineConfig::paper();
    println!("Figure 14: reward convergence and learning transfer");

    // (a) Reward curve from scratch, Mi8Pro, calm environment.
    let mi8 = Simulator::new(DeviceId::Mi8Pro);
    let curve = experiment::training_curve(
        &mi8,
        Workload::InceptionV1,
        EnvironmentId::S1,
        150,
        config,
        7,
        None,
    );
    section("reward curve (Mi8Pro, Inception v1, S1) — window medians of 10");
    for (i, chunk) in curve.rewards.chunks(10).enumerate() {
        let mut sorted = chunk.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite rewards"));
        println!("  runs {:>3}-{:>3}: median reward {:>9.1}", i * 10 + 1, i * 10 + chunk.len(), sorted[chunk.len() / 2]);
    }
    println!(
        "  converged at run {}",
        curve.converged_at.map_or("-".to_string(), |c| c.to_string())
    );

    // (b) Transfer: Mi8Pro-trained engine warm-starts the other phones.
    section("learning transfer (Mi8Pro donor)");
    let donor = experiment::train_engine(
        &mi8,
        &Workload::ALL,
        &EnvironmentId::STATIC,
        TRAIN_RUNS,
        config,
        17,
    );
    for device in [DeviceId::GalaxyS10e, DeviceId::MotoXForce] {
        let sim = Simulator::new(device);
        let scratch: Vec<TrainingCurve> = (0..6)
            .map(|s| {
                experiment::training_curve(
                    &sim,
                    Workload::MobileNetV2,
                    EnvironmentId::S1,
                    200,
                    config,
                    20 + s,
                    None,
                )
            })
            .collect();
        let transferred: Vec<TrainingCurve> = (0..6)
            .map(|s| {
                experiment::training_curve(
                    &sim,
                    Workload::MobileNetV2,
                    EnvironmentId::S1,
                    200,
                    config,
                    20 + s,
                    Some(&donor),
                )
            })
            .collect();
        let avg = |cs: &[TrainingCurve]| {
            mean(&cs.iter().map(|c| c.converged_at.unwrap_or(200) as f64).collect::<Vec<_>>())
        };
        let s = avg(&scratch);
        let t = avg(&transferred);
        println!(
            "  {device}: scratch converges ~run {s:.0}, transferred ~run {t:.0} ({:.1}% faster)",
            (1.0 - t / s) * 100.0
        );
    }

    // (c) Static vs dynamic environments.
    section("static vs dynamic convergence (Mi8Pro, MobileNet v1)");
    for (env, label) in [(EnvironmentId::S1, "static S1"), (EnvironmentId::D2, "dynamic D2")] {
        let curves: Vec<TrainingCurve> = (0..6)
            .map(|s| {
                experiment::training_curve(
                    &mi8,
                    Workload::MobileNetV1,
                    env,
                    250,
                    config,
                    30 + s,
                    None,
                )
            })
            .collect();
        let avg = mean(
            &curves.iter().map(|c| c.converged_at.unwrap_or(250) as f64).collect::<Vec<_>>(),
        );
        println!("  {label}: converges ~run {avg:.0}");
    }
}
