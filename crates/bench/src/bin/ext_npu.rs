//! Extension experiment: the NPU/TPU actions the paper names as future
//! work ("depending on the configurations of edge-cloud systems,
//! additional actions, such as mobile NPU or cloud TPU, could be further
//! considered", Section V-C).
//!
//! Builds a testbed with an NPU-unlocked Mi8Pro and a TPU-equipped cloud,
//! re-trains AutoScale over the enlarged action space, and compares
//! against the stock testbed: the engine discovers the new accelerators
//! without any code change beyond the device catalog.

use autoscale::experiment;
use autoscale::prelude::*;
use autoscale::scheduler::AutoScaleScheduler;
use autoscale_bench::{build_baseline, mean, section, RUNS, TRAIN_RUNS, WARMUP};
use autoscale_platform::Device;

fn main() {
    let config = EngineConfig::paper();
    let stock = Simulator::new(DeviceId::Mi8Pro);
    let extended = Simulator::with_devices(
        Device::mi8pro_npu(),
        Device::galaxy_tab_s6(),
        Device::cloud_server_tpu(),
    );
    println!(
        "action spaces: stock {} actions, extended {} actions",
        ActionSpace::for_simulator(&stock).len(),
        ActionSpace::for_simulator(&extended).len()
    );

    section("per-target survey (Inception v1, calm)");
    for (label, placement, precision) in [
        (
            "Edge (DSP INT8)",
            Placement::OnDevice(ProcessorKind::Dsp),
            Precision::Int8,
        ),
        (
            "Edge (NPU INT8)",
            Placement::OnDevice(ProcessorKind::Npu),
            Precision::Int8,
        ),
        (
            "Cloud (GPU FP32)",
            Placement::Cloud(ProcessorKind::Gpu),
            Precision::Fp32,
        ),
        (
            "Cloud (TPU FP16)",
            Placement::Cloud(ProcessorKind::Npu),
            Precision::Fp16,
        ),
    ] {
        let request = Request::at_max_frequency(&extended, placement, precision);
        match extended.execute_expected(Workload::InceptionV1, &request, &Snapshot::calm()) {
            Ok(o) => println!(
                "  {label:<18} {:6.1} ms {:7.1} mJ  accuracy {:4.1}%",
                o.latency_ms, o.energy_mj, o.accuracy
            ),
            Err(e) => println!("  {label:<18} ({e})"),
        }
    }

    section("AutoScale on the stock vs extended testbed (static envs, all workloads)");
    let envs = [EnvironmentId::S1, EnvironmentId::S2, EnvironmentId::S4];
    for (label, sim) in [("stock (DSP)", &stock), ("extended (NPU+TPU)", &extended)] {
        let ev = Evaluator::new(sim.clone(), config);
        // Enough runs per (workload, environment) that the optimistic
        // sweep covers the enlarged action space in every visited state.
        let engine =
            experiment::train_engine(ev.sim(), &Workload::ALL, &envs, TRAIN_RUNS * 4, config, 7);
        let mut rng = autoscale::seeded_rng(8);
        let mut ppws = Vec::new();
        let mut npu_share = Vec::new();
        for w in Workload::ALL {
            for env in envs {
                let mut base = build_baseline(
                    autoscale::scheduler::SchedulerKind::EdgeCpuFp32,
                    ev.sim(),
                    config,
                );
                let baseline = ev.run(base.as_mut(), w, env, 0, RUNS, None, &mut rng);
                let mut sched = AutoScaleScheduler::new(engine.clone(), false);
                let rep = ev.run(&mut sched, w, env, WARMUP, RUNS, None, &mut rng);
                ppws.push(rep.normalized_ppw(&baseline));
                // Count how often the greedy decision lands on an NPU/TPU.
                let step = engine
                    .decide_greedy(ev.sim(), w, &Snapshot::calm())
                    .expect("feasible");
                npu_share.push(
                    (step.request.placement.processor_kind() == ProcessorKind::Npu) as u8 as f64,
                );
            }
        }
        println!(
            "  {label:<20} PPW {:>5.2}x  NPU/TPU chosen in {:>4.1}% of calm greedy decisions",
            mean(&ppws),
            mean(&npu_share) * 100.0
        );
    }
}
