//! Figure 10: rising inference intensity (non-streaming → streaming).
//!
//! Repeats the Fig. 9 comparison on the Mi8Pro for both QoS regimes: the
//! non-streaming 50 ms target and the streaming 33.3 ms (30 FPS) target.
//! AutoScale's efficiency and QoS-violation ratio degrade under the
//! tighter target but stay close to Opt.
//!
//! Runs on the deterministic parallel harness: one cell per
//! (streaming regime, vision workload); output is bit-identical for any
//! `--threads` value.

use autoscale::parallel::{run_cells, threads_from_args, Cell};
use autoscale::prelude::*;
use autoscale::scheduler::{Scheduler, SchedulerKind};
use autoscale_bench::{autoscale_for, build_baseline, reward_fn, SuiteAccumulator, RUNS, WARMUP};

type CellReports = Vec<(EpisodeReport, EpisodeReport)>;

fn run_cell(cell: &Cell<'_, (bool, Workload)>) -> CellReports {
    let (streaming, w) = *cell.spec;
    let config = EngineConfig {
        streaming,
        ..EngineConfig::paper()
    };
    let envs = EnvironmentId::STATIC;
    let ev = Evaluator::new(Simulator::new(DeviceId::Mi8Pro), config);
    let oracle = autoscale::scheduler::OracleScheduler::new(ev.sim(), reward_fn(config));
    let mut rng = autoscale::seeded_rng(cell.seed);

    let mut autoscale_sched = autoscale_for(ev.sim(), w, &envs, config, 52);
    let mut others: Vec<Box<dyn Scheduler>> = vec![
        build_baseline(SchedulerKind::EdgeBest, ev.sim(), config),
        build_baseline(SchedulerKind::Cloud, ev.sim(), config),
        build_baseline(SchedulerKind::ConnectedEdge, ev.sim(), config),
        build_baseline(SchedulerKind::Oracle, ev.sim(), config),
    ];
    let mut reports = Vec::new();
    for env in envs {
        let mut base = build_baseline(SchedulerKind::EdgeCpuFp32, ev.sim(), config);
        let baseline = ev.run(base.as_mut(), w, env, 0, RUNS, None, &mut rng);
        reports.push((baseline.clone(), baseline.clone()));
        let rep = ev.run(
            &mut autoscale_sched,
            w,
            env,
            WARMUP,
            RUNS,
            Some(&oracle),
            &mut rng,
        );
        reports.push((rep, baseline.clone()));
        for s in others.iter_mut() {
            let rep = ev.run(s.as_mut(), w, env, 0, RUNS, None, &mut rng);
            reports.push((rep, baseline.clone()));
        }
    }
    reports
}

fn main() {
    let threads = threads_from_args(std::env::args().skip(1));
    // Streaming only applies to the vision workloads.
    let vision: Vec<Workload> = Workload::ALL
        .iter()
        .copied()
        .filter(|w| w.task() != Task::Translation)
        .collect();
    let specs: Vec<(bool, Workload)> = [false, true]
        .iter()
        .flat_map(|&s| vision.iter().map(move |&w| (s, w)))
        .collect();
    let results = run_cells(threads, 1000, &specs, run_cell);

    for (regime_idx, streaming) in [false, true].into_iter().enumerate() {
        let mut acc = SuiteAccumulator::new();
        let per_regime = vision.len();
        for reports in &results[regime_idx * per_regime..(regime_idx + 1) * per_regime] {
            for (rep, baseline) in reports {
                acc.record(rep, baseline);
            }
        }
        let label = if streaming {
            "streaming (33.3 ms QoS)"
        } else {
            "non-streaming (50 ms QoS)"
        };
        acc.print(&format!("Fig. 10 (Mi8Pro, vision workloads): {label}"));
    }
}
