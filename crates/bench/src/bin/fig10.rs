//! Figure 10: rising inference intensity (non-streaming → streaming).
//!
//! Repeats the Fig. 9 comparison on the Mi8Pro for both QoS regimes: the
//! non-streaming 50 ms target and the streaming 33.3 ms (30 FPS) target.
//! AutoScale's efficiency and QoS-violation ratio degrade under the
//! tighter target but stay close to Opt.

use autoscale::prelude::*;
use autoscale::scheduler::{Scheduler, SchedulerKind};
use autoscale_bench::{autoscale_for, build_baseline, reward_fn, SuiteAccumulator, RUNS, WARMUP};

fn main() {
    // Streaming only applies to the vision workloads.
    let vision: Vec<Workload> = Workload::ALL
        .iter()
        .copied()
        .filter(|w| w.task() != Task::Translation)
        .collect();
    let envs = EnvironmentId::STATIC;

    for streaming in [false, true] {
        let config = EngineConfig { streaming, ..EngineConfig::paper() };
        let sim = Simulator::new(DeviceId::Mi8Pro);
        let ev = Evaluator::new(sim, config);
        let oracle = autoscale::scheduler::OracleScheduler::new(ev.sim(), reward_fn(config));
        let mut rng = autoscale::seeded_rng(1000 + streaming as u64);
        let mut acc = SuiteAccumulator::new();

        for &w in &vision {
            let mut autoscale_sched = autoscale_for(ev.sim(), w, &envs, config, 52);
            let mut others: Vec<Box<dyn Scheduler>> = vec![
                build_baseline(SchedulerKind::EdgeBest, ev.sim(), config),
                build_baseline(SchedulerKind::Cloud, ev.sim(), config),
                build_baseline(SchedulerKind::ConnectedEdge, ev.sim(), config),
                build_baseline(SchedulerKind::Oracle, ev.sim(), config),
            ];
            for env in envs {
                let mut base = build_baseline(SchedulerKind::EdgeCpuFp32, ev.sim(), config);
                let baseline = ev.run(base.as_mut(), w, env, 0, RUNS, None, &mut rng);
                acc.record(&baseline, &baseline);
                let rep =
                    ev.run(&mut autoscale_sched, w, env, WARMUP, RUNS, Some(&oracle), &mut rng);
                acc.record(&rep, &baseline);
                for s in others.iter_mut() {
                    let rep = ev.run(s.as_mut(), w, env, 0, RUNS, None, &mut rng);
                    acc.record(&rep, &baseline);
                }
            }
        }
        let label = if streaming { "streaming (33.3 ms QoS)" } else { "non-streaming (50 ms QoS)" };
        acc.print(&format!("Fig. 10 (Mi8Pro, vision workloads): {label}"));
    }
}
