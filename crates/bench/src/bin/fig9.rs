//! Figure 9: AutoScale vs baselines and prior work, static environments.
//!
//! For each of the three phones: leave-one-out-trained AutoScale, the
//! four fixed baselines, Opt, MOSAIC and NeuroSurgeon, averaged across
//! the ten workloads and the five static environments. Prints PPW
//! normalized to `Edge (CPU FP32)` and the QoS-violation ratio.

use autoscale::experiment;
use autoscale::prelude::*;
use autoscale::scheduler::{Scheduler, SchedulerKind};
use autoscale_bench::{autoscale_for, build_baseline, section, SuiteAccumulator, RUNS, WARMUP};

fn main() {
    let config = EngineConfig::paper();
    let envs = EnvironmentId::STATIC;
    let mut grand = SuiteAccumulator::new();

    for device in DeviceId::PHONES {
        let sim = Simulator::new(device);
        let ev = Evaluator::new(sim, config);
        let oracle = autoscale::scheduler::OracleScheduler::new(
            ev.sim(),
            autoscale_bench::reward_fn(config),
        );
        let mut rng = autoscale::seeded_rng(900 + device as u64);
        let mut acc = SuiteAccumulator::new();
        section(&device.to_string());

        for w in Workload::ALL {
            // Leave-one-out: AutoScale's Q-table is trained on the other
            // nine workloads (Section V-C), then keeps learning online.
            let mut autoscale_sched = autoscale_for(ev.sim(), w, &envs, config, 42);
            let mut prior_rng = autoscale::seeded_rng(43);
            let qos = config.scenario_for(w).qos_ms();
            let mut others: Vec<Box<dyn Scheduler>> = vec![
                build_baseline(SchedulerKind::EdgeBest, ev.sim(), config),
                build_baseline(SchedulerKind::Cloud, ev.sim(), config),
                build_baseline(SchedulerKind::ConnectedEdge, ev.sim(), config),
                build_baseline(SchedulerKind::Oracle, ev.sim(), config),
                Box::new(experiment::build_mosaic(ev.sim(), qos, &mut prior_rng)),
                Box::new(experiment::build_neurosurgeon(ev.sim(), &mut prior_rng)),
            ];
            for env in envs {
                let mut base = build_baseline(SchedulerKind::EdgeCpuFp32, ev.sim(), config);
                let baseline = ev.run(base.as_mut(), w, env, 0, RUNS, None, &mut rng);
                acc.record(&baseline, &baseline);
                let rep =
                    ev.run(&mut autoscale_sched, w, env, WARMUP, RUNS, Some(&oracle), &mut rng);
                acc.record(&rep, &baseline);
                for s in others.iter_mut() {
                    let rep = ev.run(s.as_mut(), w, env, 0, RUNS, None, &mut rng);
                    acc.record(&rep, &baseline);
                }
            }
        }
        acc.print(&format!("Fig. 9 ({device}): static environments, all workloads"));
        merge(&mut grand, &acc);
    }
    grand.print("Fig. 9: average across the three devices");
}

/// Merges per-device means into the cross-device accumulator.
fn merge(grand: &mut SuiteAccumulator, device: &SuiteAccumulator) {
    for name in [
        "AutoScale",
        "Edge (CPU FP32)",
        "Edge (Best)",
        "Cloud",
        "Connected Edge",
        "Opt",
        "MOSAIC",
        "NeuroSurgeon",
    ] {
        if let (Some(ppw), Some(qos)) = (device.mean_ppw(name), device.mean_qos(name)) {
            let rep = EpisodeReport {
                scheduler: name.to_string(),
                workload: Workload::MobileNetV1,
                environment: EnvironmentId::S1,
                runs: 1,
                mean_energy_mj: 1.0,
                mean_efficiency_ipj: ppw,
                mean_latency_ms: 0.0,
                qos_violation_ratio: qos,
                accuracy_violation_ratio: 0.0,
                placement_shares: [0.0; 3],
                oracle_match_ratio: device.mean_opt_match(name),
            };
            let base = EpisodeReport { mean_efficiency_ipj: 1.0, ..rep.clone() };
            grand.record(&rep, &base);
        }
    }
}
