//! Figure 9: AutoScale vs baselines and prior work, static environments.
//!
//! For each of the three phones: leave-one-out-trained AutoScale, the
//! four fixed baselines, Opt, MOSAIC and NeuroSurgeon, averaged across
//! the ten workloads and the five static environments. Prints PPW
//! normalized to `Edge (CPU FP32)` and the QoS-violation ratio.
//!
//! The sweep runs on the deterministic parallel harness: one cell per
//! (device, workload), each with its own derived RNG seed, so the output
//! is bit-identical for any `--threads` value.

use autoscale::parallel::{run_cells, threads_from_args};
use autoscale::prelude::*;
use autoscale_bench::{fig9_cell, fig9_specs, section, SuiteAccumulator};

fn main() {
    let threads = threads_from_args(std::env::args().skip(1));
    let specs = fig9_specs();
    let results = run_cells(threads, 900, &specs, fig9_cell);

    let mut grand = SuiteAccumulator::new();
    for (device_idx, &device) in DeviceId::PHONES.iter().enumerate() {
        section(&device.to_string());
        let mut acc = SuiteAccumulator::new();
        let per_device = Workload::ALL.len();
        for reports in &results[device_idx * per_device..(device_idx + 1) * per_device] {
            for (rep, baseline) in reports {
                acc.record(rep, baseline);
            }
        }
        acc.print(&format!(
            "Fig. 9 ({device}): static environments, all workloads"
        ));
        merge(&mut grand, &acc);
    }
    grand.print("Fig. 9: average across the three devices");
}

/// Merges per-device means into the cross-device accumulator.
fn merge(grand: &mut SuiteAccumulator, device: &SuiteAccumulator) {
    for name in [
        "AutoScale",
        "Edge (CPU FP32)",
        "Edge (Best)",
        "Cloud",
        "Connected Edge",
        "Opt",
        "MOSAIC",
        "NeuroSurgeon",
    ] {
        if let (Some(ppw), Some(qos)) = (device.mean_ppw(name), device.mean_qos(name)) {
            let rep = EpisodeReport {
                scheduler: name.to_string(),
                workload: Workload::MobileNetV1,
                environment: EnvironmentId::S1,
                runs: 1,
                mean_energy_mj: 1.0,
                mean_efficiency_ipj: ppw,
                mean_latency_ms: 0.0,
                qos_violation_ratio: qos,
                accuracy_violation_ratio: 0.0,
                placement_shares: [0.0; 3],
                oracle_match_ratio: device.mean_opt_match(name),
            };
            let base = EpisodeReport {
                mean_efficiency_ipj: 1.0,
                ..rep.clone()
            };
            grand.record(&rep, &base);
        }
    }
}
