//! Figure 2: the optimal execution target depends on NN characteristics
//! and the edge-cloud system profile.
//!
//! Prints, for each of the three phones and the three representative NNs
//! (Inception v1, MobileNet v3, MobileBERT), the energy efficiency (PPW,
//! normalized to `Edge (CPU)`) and latency (normalized to the QoS target)
//! of every execution target, under the calm S1 environment.

use autoscale::prelude::*;
use autoscale_bench::section;

fn main() {
    let config = EngineConfig::paper();
    let nns = [
        Workload::InceptionV1,
        Workload::MobileNetV3,
        Workload::MobileBert,
    ];
    println!("Figure 2: PPW (normalized to Edge (CPU)) and latency (normalized to QoS)");

    for device in DeviceId::PHONES {
        let sim = Simulator::new(device);
        section(&device.to_string());
        for w in nns {
            let qos = config.scenario_for(w).qos_ms();
            let calm = Snapshot::calm();
            let targets: Vec<(String, Request)> = target_list(&sim);
            let base = sim
                .execute_expected(
                    w,
                    &Request::at_max_frequency(
                        &sim,
                        Placement::OnDevice(ProcessorKind::Cpu),
                        Precision::Fp32,
                    ),
                    &calm,
                )
                .expect("CPU FP32 always runs");
            println!("  {w} (QoS {qos:.1} ms):");
            for (label, request) in targets {
                match sim.execute_expected(w, &request, &calm) {
                    Ok(o) => println!(
                        "    {label:<24} PPW {:>6.2}x   latency {:>5.2}x QoS",
                        base.energy_mj / o.energy_mj,
                        o.latency_ms / qos
                    ),
                    Err(_) => println!("    {label:<24} (not supported)"),
                }
            }
        }
    }
}

/// The Fig. 2 target list: each on-device processor at its deployment
/// precision, the connected edge, and the cloud.
fn target_list(sim: &Simulator) -> Vec<(String, Request)> {
    let mut v = Vec::new();
    let mut push = |label: &str, placement, precision| {
        if sim.processor_for(placement).is_some() {
            v.push((
                label.to_string(),
                Request::at_max_frequency(sim, placement, precision),
            ));
        }
    };
    push(
        "Edge (CPU)",
        Placement::OnDevice(ProcessorKind::Cpu),
        Precision::Fp32,
    );
    push(
        "Edge (GPU)",
        Placement::OnDevice(ProcessorKind::Gpu),
        Precision::Fp32,
    );
    push(
        "Edge (DSP)",
        Placement::OnDevice(ProcessorKind::Dsp),
        Precision::Int8,
    );
    push(
        "Connected Edge (GPU)",
        Placement::ConnectedEdge(ProcessorKind::Gpu),
        Precision::Fp32,
    );
    push(
        "Connected Edge (DSP)",
        Placement::ConnectedEdge(ProcessorKind::Dsp),
        Precision::Int8,
    );
    push(
        "Cloud (CPU)",
        Placement::Cloud(ProcessorKind::Cpu),
        Precision::Fp32,
    );
    push(
        "Cloud (GPU)",
        Placement::Cloud(ProcessorKind::Gpu),
        Precision::Fp32,
    );
    v
}
