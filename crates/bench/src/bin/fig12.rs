//! Figure 12: adaptability to inference quality (accuracy) targets.
//!
//! Runs AutoScale on the Mi8Pro under accuracy targets of none, 50%, 65%
//! and 70%. Tighter targets disqualify the low-precision on-device
//! targets, costing efficiency; below the 50% threshold nothing changes
//! because every target already clears it.

use autoscale::prelude::*;
use autoscale::scheduler::SchedulerKind;
use autoscale_bench::{autoscale_for, build_baseline, reward_fn, SuiteAccumulator, RUNS, WARMUP};

fn main() {
    let envs = EnvironmentId::STATIC;
    println!("Figure 12: AutoScale under different inference accuracy targets (Mi8Pro)");

    for target in [None, Some(50.0), Some(65.0), Some(70.0)] {
        let config = EngineConfig { accuracy_target: target, ..EngineConfig::paper() };
        let sim = Simulator::new(DeviceId::Mi8Pro);
        let ev = Evaluator::new(sim, config);
        let oracle = autoscale::scheduler::OracleScheduler::new(ev.sim(), reward_fn(config));
        let mut rng = autoscale::seeded_rng(1200);
        let mut acc = SuiteAccumulator::new();

        for w in Workload::ALL {
            let mut sched = autoscale_for(ev.sim(), w, &envs, config, 72);
            for env in envs {
                let mut base = build_baseline(SchedulerKind::EdgeCpuFp32, ev.sim(), config);
                let baseline = ev.run(base.as_mut(), w, env, 0, RUNS, None, &mut rng);
                let rep = ev.run(&mut sched, w, env, WARMUP, RUNS, Some(&oracle), &mut rng);
                acc.record(&rep, &baseline);
            }
        }
        let label = match target {
            None => "no accuracy target".to_string(),
            Some(t) => format!("{t:.0}% accuracy target"),
        };
        acc.print(&format!("Fig. 12: {label}"));
    }
}
