//! Figure 12: adaptability to inference quality (accuracy) targets.
//!
//! Runs AutoScale on the Mi8Pro under accuracy targets of none, 50%, 65%
//! and 70%. Tighter targets disqualify the low-precision on-device
//! targets, costing efficiency; below the 50% threshold nothing changes
//! because every target already clears it.
//!
//! Runs on the deterministic parallel harness: one cell per
//! (accuracy target, workload); output is bit-identical for any
//! `--threads` value.

use autoscale::parallel::{run_cells, threads_from_args, Cell};
use autoscale::prelude::*;
use autoscale::scheduler::SchedulerKind;
use autoscale_bench::{autoscale_for, build_baseline, reward_fn, SuiteAccumulator, RUNS, WARMUP};

const TARGETS: [Option<f64>; 4] = [None, Some(50.0), Some(65.0), Some(70.0)];

type CellReports = Vec<(EpisodeReport, EpisodeReport)>;

fn run_cell(cell: &Cell<'_, (Option<f64>, Workload)>) -> CellReports {
    let (target, w) = *cell.spec;
    let config = EngineConfig {
        accuracy_target: target,
        ..EngineConfig::paper()
    };
    let envs = EnvironmentId::STATIC;
    let ev = Evaluator::new(Simulator::new(DeviceId::Mi8Pro), config);
    let oracle = autoscale::scheduler::OracleScheduler::new(ev.sim(), reward_fn(config));
    let mut rng = autoscale::seeded_rng(cell.seed);

    let mut sched = autoscale_for(ev.sim(), w, &envs, config, 72);
    let mut reports = Vec::new();
    for env in envs {
        let mut base = build_baseline(SchedulerKind::EdgeCpuFp32, ev.sim(), config);
        let baseline = ev.run(base.as_mut(), w, env, 0, RUNS, None, &mut rng);
        let rep = ev.run(&mut sched, w, env, WARMUP, RUNS, Some(&oracle), &mut rng);
        reports.push((rep, baseline));
    }
    reports
}

fn main() {
    let threads = threads_from_args(std::env::args().skip(1));
    println!("Figure 12: AutoScale under different inference accuracy targets (Mi8Pro)");
    let specs: Vec<(Option<f64>, Workload)> = TARGETS
        .iter()
        .flat_map(|&t| Workload::ALL.iter().map(move |&w| (t, w)))
        .collect();
    let results = run_cells(threads, 1200, &specs, run_cell);

    let per_target = Workload::ALL.len();
    for (target_idx, target) in TARGETS.into_iter().enumerate() {
        let mut acc = SuiteAccumulator::new();
        for reports in &results[target_idx * per_target..(target_idx + 1) * per_target] {
            for (rep, baseline) in reports {
                acc.record(rep, baseline);
            }
        }
        let label = match target {
            None => "no accuracy target".to_string(),
            Some(t) => format!("{t:.0}% accuracy target"),
        };
        acc.print(&format!("Fig. 12: {label}"));
    }
}
