//! Ablation studies for the design choices called out in DESIGN.md:
//! hyperparameters (the paper's Section V-C sensitivity test), the
//! state-feature ablation (Section IV-A: removing any one state degrades
//! accuracy), and the reward's accuracy guard.
//!
//! The configuration sweeps run on the deterministic parallel harness,
//! one cell per configuration, with printing deferred to the main thread
//! so output is bit-identical for any `--threads` value. The
//! tabular-vs-linear-FA comparison stays serial: the FA agent learns
//! online across its whole evaluation schedule, a single sequential
//! chain.

use autoscale::experiment;
use autoscale::parallel::{run_cells, threads_from_args};
use autoscale::prelude::*;
use autoscale::scheduler::AutoScaleScheduler;
use autoscale_bench::{build_baseline, mean, reward_fn, section, RUNS, TRAIN_RUNS, WARMUP};
use autoscale_net::Rssi;
use autoscale_rl::Hyperparameters;

fn main() {
    let threads = threads_from_args(std::env::args().skip(1));
    hyperparameter_sweep(threads);
    state_feature_ablation(threads);
    accuracy_guard_ablation(threads);
    tabular_vs_linear_fa();
}

/// Trains and scores one configuration: mean normalized PPW and QoS
/// violation over three representative workloads in a static+dynamic mix.
fn score(sim: &Simulator, config: EngineConfig) -> (f64, f64) {
    let ev = Evaluator::new(sim.clone(), config);
    let mut rng = autoscale::seeded_rng(90);
    let mut ppws = Vec::new();
    let mut qos = Vec::new();
    for w in [
        Workload::MobileNetV3,
        Workload::InceptionV1,
        Workload::ResNet50,
    ] {
        let engine = experiment::train_engine(
            ev.sim(),
            &Workload::ALL,
            &[EnvironmentId::S1, EnvironmentId::S2, EnvironmentId::S4],
            TRAIN_RUNS,
            config,
            91,
        );
        for env in [EnvironmentId::S1, EnvironmentId::S2, EnvironmentId::S4] {
            let mut base = build_baseline(
                autoscale::scheduler::SchedulerKind::EdgeCpuFp32,
                ev.sim(),
                config,
            );
            let baseline = ev.run(base.as_mut(), w, env, 0, RUNS, None, &mut rng);
            let mut sched = AutoScaleScheduler::new(engine.clone(), false);
            let rep = ev.run(&mut sched, w, env, WARMUP, RUNS, None, &mut rng);
            ppws.push(rep.normalized_ppw(&baseline));
            qos.push(rep.qos_violation_ratio);
        }
    }
    (mean(&ppws), mean(&qos) * 100.0)
}

/// Section V-C: evaluate learning rate and discount factor at 0.1/0.5/0.9.
fn hyperparameter_sweep(threads: usize) {
    section("hyperparameter sensitivity (Mi8Pro, mean PPW normalized to Edge (CPU FP32))");
    let specs: Vec<(f64, f64)> = [0.1, 0.5, 0.9]
        .iter()
        .flat_map(|&lr| [0.1, 0.5, 0.9].iter().map(move |&d| (lr, d)))
        .collect();
    let scores = run_cells(threads, 9000, &specs, |cell| {
        let (learning_rate, discount) = *cell.spec;
        let config = EngineConfig {
            hyperparameters: Hyperparameters {
                learning_rate,
                discount,
                epsilon: 0.1,
            },
            ..EngineConfig::paper()
        };
        score(&Simulator::new(DeviceId::Mi8Pro), config)
    });
    println!(
        "  {:<28} {:>10} {:>12}",
        "(learning rate, discount)", "PPW", "QoS viol."
    );
    for ((learning_rate, discount), (ppw, qos)) in specs.iter().zip(&scores) {
        println!(
            "  ({learning_rate:.1}, {discount:.1})                   {ppw:>9.2}x {qos:>10.1}%"
        );
    }
    println!("  paper's choice: learning rate 0.9, discount 0.1");
}

fn keep_all(s: &Snapshot) -> Snapshot {
    *s
}

fn blind_interference(s: &Snapshot) -> Snapshot {
    Snapshot::new(0.0, 0.0, s.wlan, s.p2p)
}

fn blind_signal(s: &Snapshot) -> Snapshot {
    Snapshot::new(s.co_cpu, s.co_mem, Rssi::STRONG, Rssi::STRONG)
}

/// Section IV-A: removing any one state feature degrades prediction
/// accuracy. We ablate the runtime-variance features by blinding the
/// engine to them (the NN features are structural and cannot be removed
/// without changing the network itself).
type StateVariant = (&'static str, fn(&Snapshot) -> Snapshot);

fn state_feature_ablation(threads: usize) {
    section("state-feature ablation (Mi8Pro, D2/D3/S4/S5 mix, prediction accuracy vs Opt)");
    let config = EngineConfig::paper();

    let variants: Vec<StateVariant> = vec![
        ("full state (none removed)", keep_all),
        ("without S_Co_CPU/S_Co_MEM", blind_interference),
        ("without S_RSSI_W/S_RSSI_P", blind_signal),
    ];
    let rows = run_cells(threads, 9100, &variants, |cell| {
        let (_, blind) = *cell.spec;
        let ev = Evaluator::new(Simulator::new(DeviceId::Mi8Pro), config);
        let oracle = autoscale::scheduler::OracleScheduler::new(ev.sim(), reward_fn(config));
        let mut matches = Vec::new();
        let mut ppws = Vec::new();
        // Train the variant under its own censored view: a feature the
        // engine cannot see at serving time must not leak in training
        // either.
        let engine = train_blinded(ev.sim(), config, blind, 91);
        let mut rng = autoscale::seeded_rng(92);
        for w in [
            Workload::MobileNetV3,
            Workload::ResNet50,
            Workload::MobileBert,
        ] {
            // Interference-heavy and signal-heavy environments, so both
            // ablated feature families have something to lose.
            for env in [
                EnvironmentId::D2,
                EnvironmentId::D3,
                EnvironmentId::S4,
                EnvironmentId::S5,
            ] {
                // A blinded scheduler decides on a censored snapshot but is
                // executed (and judged) under the true one.
                let mut sched = BlindedAutoScale {
                    inner: AutoScaleScheduler::new(engine.clone(), false),
                    blind,
                };
                let mut base = build_baseline(
                    autoscale::scheduler::SchedulerKind::EdgeCpuFp32,
                    ev.sim(),
                    config,
                );
                let baseline = ev.run(base.as_mut(), w, env, 0, RUNS, None, &mut rng);
                let rep = ev.run(&mut sched, w, env, WARMUP, RUNS, Some(&oracle), &mut rng);
                matches.push(rep.oracle_match_ratio.expect("oracle enabled"));
                ppws.push(rep.normalized_ppw(&baseline));
            }
        }
        (mean(&matches), mean(&ppws))
    });
    for ((label, _), (accuracy, ppw)) in variants.iter().zip(&rows) {
        println!(
            "  {label:<28} accuracy {:>5.1}%   PPW {:>5.2}x",
            accuracy * 100.0,
            ppw
        );
    }
}

/// Section IV's design choice made measurable: the Q-table versus a
/// linear function-approximation agent over the same features. The FA
/// agent generalizes across states but approximates; the table memorizes
/// exactly. (Decision latency is compared in `benches/overhead.rs`.)
fn tabular_vs_linear_fa() {
    section("tabular Q-learning vs linear function approximation (Mi8Pro)");
    let config = EngineConfig::paper();
    let sim = Simulator::new(DeviceId::Mi8Pro);
    let ev = Evaluator::new(sim, config);
    let envs = [EnvironmentId::S1, EnvironmentId::S2, EnvironmentId::S4];

    // Tabular: the paper's engine.
    let engine = experiment::train_engine(ev.sim(), &Workload::ALL, &envs, TRAIN_RUNS, config, 98);
    let mut tab_ppws = Vec::new();
    let mut tab_qos = Vec::new();
    let mut rng = autoscale::seeded_rng(99);
    // Linear FA: one shared agent trained over the same schedule.
    let mut fa = autoscale::scheduler::LinearFaScheduler::new(ev.sim(), true, reward_fn(config));
    for w in Workload::ALL {
        for env in envs {
            let _ = ev.run(&mut fa, w, env, 0, TRAIN_RUNS, None, &mut rng);
        }
    }
    let mut fa_ppws = Vec::new();
    let mut fa_qos = Vec::new();
    for w in Workload::ALL {
        for env in envs {
            let mut base = build_baseline(
                autoscale::scheduler::SchedulerKind::EdgeCpuFp32,
                ev.sim(),
                config,
            );
            let baseline = ev.run(base.as_mut(), w, env, 0, RUNS, None, &mut rng);
            let mut tab = AutoScaleScheduler::new(engine.clone(), false);
            let rep = ev.run(&mut tab, w, env, WARMUP, RUNS, None, &mut rng);
            tab_ppws.push(rep.normalized_ppw(&baseline));
            tab_qos.push(rep.qos_violation_ratio);
            let rep = ev.run(&mut fa, w, env, WARMUP, RUNS, None, &mut rng);
            fa_ppws.push(rep.normalized_ppw(&baseline));
            fa_qos.push(rep.qos_violation_ratio);
        }
    }
    println!(
        "  tabular Q-table:   PPW {:>5.2}x  QoS viol. {:>4.1}%  ({} KiB)",
        mean(&tab_ppws),
        mean(&tab_qos) * 100.0,
        engine.agent().store().memory_bytes() / 1024
    );
    println!(
        "  linear FA agent:   PPW {:>5.2}x  QoS viol. {:>4.1}%  ({} KiB)",
        mean(&fa_ppws),
        mean(&fa_qos) * 100.0,
        fa.agent().memory_bytes().max(1024) / 1024
    );
}

/// Trains an engine whose every observation passes through the `blind`
/// censor — the training half of the state-feature ablation.
fn train_blinded(
    sim: &Simulator,
    config: EngineConfig,
    blind: fn(&Snapshot) -> Snapshot,
    seed: u64,
) -> autoscale::AutoScaleEngine {
    let mut engine = autoscale::AutoScaleEngine::new(sim, config);
    let mut rng = autoscale::seeded_rng(seed);
    for w in Workload::ALL {
        for env_id in EnvironmentId::ALL {
            let mut env = Environment::for_id(env_id);
            for _ in 0..TRAIN_RUNS {
                let snapshot = env.sample(&mut rng);
                let censored = blind(&snapshot);
                let step = engine
                    .decide(sim, w, &censored, &mut rng)
                    .expect("feasible");
                // The inference executes under the *true* conditions.
                let outcome = sim
                    .execute_measured(w, &step.request, &snapshot, &mut rng)
                    .expect("engine decisions are feasible");
                engine.learn(sim, w, step, &outcome, &censored);
            }
        }
    }
    engine
}

/// A scheduler wrapper that censors parts of the snapshot before the
/// engine sees it — the ablation mechanism.
struct BlindedAutoScale {
    inner: AutoScaleScheduler,
    blind: fn(&Snapshot) -> Snapshot,
}

impl autoscale::scheduler::Scheduler for BlindedAutoScale {
    fn kind(&self) -> autoscale::scheduler::SchedulerKind {
        autoscale::scheduler::SchedulerKind::AutoScale
    }

    fn decide(
        &mut self,
        sim: &Simulator,
        workload: Workload,
        snapshot: &Snapshot,
        rng: &mut rand::rngs::StdRng,
    ) -> autoscale::scheduler::Decision {
        let censored = (self.blind)(snapshot);
        self.inner.decide(sim, workload, &censored, rng)
    }

    fn observe(
        &mut self,
        sim: &Simulator,
        workload: Workload,
        snapshot: &Snapshot,
        decision: &autoscale::scheduler::Decision,
        outcome: &Outcome,
    ) {
        let censored = (self.blind)(snapshot);
        self.inner
            .observe(sim, workload, &censored, decision, outcome);
    }
}

/// DESIGN.md ablation: eq. (5)'s accuracy short-circuit. Without it, the
/// engine chases cheap low-precision targets below the quality bar; with
/// it, sub-target decisions are punished out of the greedy policy.
fn accuracy_guard_ablation(threads: usize) {
    section("reward accuracy-guard ablation (Mi8Pro, judged against a 65% bar)");
    // Quantization-fragile workloads: INT8 falls below 65% on all of these.
    let probes = [
        Workload::MobileNetV3,
        Workload::InceptionV1,
        Workload::MobileNetV1,
    ];

    let variants: Vec<(&str, Option<f64>)> = vec![
        ("with accuracy guard (65%)", Some(65.0)),
        ("guard removed", None),
    ];
    let counts = run_cells(threads, 9200, &variants, |cell| {
        let (_, accuracy_target) = *cell.spec;
        let sim = Simulator::new(DeviceId::Mi8Pro);
        let calm = Snapshot::calm();
        let config = EngineConfig {
            accuracy_target,
            ..EngineConfig::paper()
        };
        // Enough runs that the optimistic sweep covers the full action
        // space and settles (66 actions on the Mi8Pro).
        let engine =
            experiment::train_engine(&sim, &Workload::ALL, &[EnvironmentId::S1], 150, config, 96);
        probes
            .iter()
            .filter(|&&w| {
                let step = engine.decide_greedy(&sim, w, &calm).expect("feasible");
                let outcome = sim
                    .execute_expected(w, &step.request, &calm)
                    .expect("feasible");
                outcome.accuracy < 65.0
            })
            .count()
    });
    for ((label, _), below) in variants.iter().zip(&counts) {
        println!(
            "  {label:<28} greedy decisions below 65% accuracy: {below}/{}",
            probes.len()
        );
    }
}
