//! Extension experiment: layer partitioning applied *on top of* AutoScale
//! (the paper's Section IV footnote 4: "model partitioning at layer
//! granularity introduces additional context switching overhead ...
//! [and] is complementary to and can be applied on top of AutoScale").
//!
//! Adds three layer-split actions per model to AutoScale's action space
//! and lets Q-learning decide whether they ever pay. On this testbed —
//! as the paper's own model-granularity choice predicts — whole-model
//! targets dominate (the compressed camera frame on the wire is smaller
//! than any mid-network FP32 activation), so the hybrid matches but does
//! not beat pure AutoScale, and learns to leave the split actions alone.

use autoscale::experiment;
use autoscale::prelude::*;
use autoscale::scheduler::{AutoScaleScheduler, HybridScheduler};
use autoscale_bench::{build_baseline, mean, reward_fn, section, RUNS, TRAIN_RUNS, WARMUP};

fn main() {
    let config = EngineConfig::paper();
    let sim = Simulator::new(DeviceId::Mi8Pro);
    let ev = Evaluator::new(sim, config);
    let envs = [EnvironmentId::S1, EnvironmentId::S3, EnvironmentId::S4];

    section("pure AutoScale vs partition-augmented AutoScale (Mi8Pro)");

    // Pure AutoScale.
    let engine =
        experiment::train_engine(ev.sim(), &Workload::ALL, &envs, TRAIN_RUNS * 4, config, 7);

    // Hybrid: same training schedule over the augmented action space.
    let mut hybrid = HybridScheduler::new(ev.sim(), 3, true, 7, reward_fn(config));
    let mut rng = autoscale::seeded_rng(9);
    for w in Workload::ALL {
        for env in envs {
            let _ = ev.run(&mut hybrid, w, env, 0, TRAIN_RUNS * 4, None, &mut rng);
        }
    }

    let mut pure_ppws = Vec::new();
    let mut hybrid_ppws = Vec::new();
    let mut pure_qos = Vec::new();
    let mut hybrid_qos = Vec::new();
    for w in Workload::ALL {
        for env in envs {
            let mut base = build_baseline(
                autoscale::scheduler::SchedulerKind::EdgeCpuFp32,
                ev.sim(),
                config,
            );
            let baseline = ev.run(base.as_mut(), w, env, 0, RUNS, None, &mut rng);
            let mut pure = AutoScaleScheduler::new(engine.clone(), false);
            let rep = ev.run(&mut pure, w, env, WARMUP, RUNS, None, &mut rng);
            pure_ppws.push(rep.normalized_ppw(&baseline));
            pure_qos.push(rep.qos_violation_ratio);
            let rep = ev.run(&mut hybrid, w, env, WARMUP, RUNS, None, &mut rng);
            hybrid_ppws.push(rep.normalized_ppw(&baseline));
            hybrid_qos.push(rep.qos_violation_ratio);
        }
    }
    println!(
        "  pure AutoScale (66 actions):        PPW {:>5.2}x  QoS viol. {:>4.1}%",
        mean(&pure_ppws),
        mean(&pure_qos) * 100.0
    );
    println!(
        "  hybrid AutoScale (66+3 actions):    PPW {:>5.2}x  QoS viol. {:>4.1}%",
        mean(&hybrid_ppws),
        mean(&hybrid_qos) * 100.0
    );
    println!(
        "  partition actions in calm greedy decisions: {:.0}%",
        hybrid.partition_share(ev.sim()) * 100.0
    );
    println!(
        "\nReading: the hybrid matches pure AutoScale and learns to ignore the\n\
         split actions — consistent with the paper's choice of model-granularity\n\
         offloading and with NeuroSurgeon/MOSAIC trailing in Fig. 9."
    );
}
