//! Figure 11: adaptability to stochastic variance — per-environment
//! results across S1–S5 and D1–D4.
//!
//! For each Table IV environment on the Mi8Pro: AutoScale (leave-one-out
//! trained, learning online) vs the four baselines and Opt, averaged
//! over the ten workloads. Prints PPW normalized to `Edge (CPU FP32)`
//! and the QoS-violation ratio per environment.
//!
//! Runs on the deterministic parallel harness: one cell per
//! (environment, workload); output is bit-identical for any `--threads`
//! value.

use autoscale::parallel::{run_cells, threads_from_args, Cell};
use autoscale::prelude::*;
use autoscale::scheduler::{Scheduler, SchedulerKind};
use autoscale_bench::{autoscale_for, build_baseline, reward_fn, SuiteAccumulator, RUNS, WARMUP};

type CellReports = Vec<(EpisodeReport, EpisodeReport)>;

fn run_cell(cell: &Cell<'_, (EnvironmentId, Workload)>) -> CellReports {
    let (env, w) = *cell.spec;
    let config = EngineConfig::paper();
    let ev = Evaluator::new(Simulator::new(DeviceId::Mi8Pro), config);
    let oracle = autoscale::scheduler::OracleScheduler::new(ev.sim(), reward_fn(config));
    let mut rng = autoscale::seeded_rng(cell.seed);

    // Train on the other nine workloads across every environment so the
    // engine has seen the variance states it will face.
    let mut autoscale_sched = autoscale_for(ev.sim(), w, &EnvironmentId::ALL, config, 62);
    let mut others: Vec<Box<dyn Scheduler>> = vec![
        build_baseline(SchedulerKind::EdgeBest, ev.sim(), config),
        build_baseline(SchedulerKind::Cloud, ev.sim(), config),
        build_baseline(SchedulerKind::ConnectedEdge, ev.sim(), config),
        build_baseline(SchedulerKind::Oracle, ev.sim(), config),
    ];
    let mut reports = Vec::new();
    let mut base = build_baseline(SchedulerKind::EdgeCpuFp32, ev.sim(), config);
    let baseline = ev.run(base.as_mut(), w, env, 0, RUNS, None, &mut rng);
    reports.push((baseline.clone(), baseline.clone()));
    let rep = ev.run(
        &mut autoscale_sched,
        w,
        env,
        WARMUP,
        RUNS,
        Some(&oracle),
        &mut rng,
    );
    reports.push((rep, baseline.clone()));
    for s in others.iter_mut() {
        let rep = ev.run(s.as_mut(), w, env, 0, RUNS, None, &mut rng);
        reports.push((rep, baseline.clone()));
    }
    reports
}

fn main() {
    let threads = threads_from_args(std::env::args().skip(1));
    let specs: Vec<(EnvironmentId, Workload)> = EnvironmentId::ALL
        .iter()
        .flat_map(|&e| Workload::ALL.iter().map(move |&w| (e, w)))
        .collect();
    let results = run_cells(threads, 1100, &specs, run_cell);

    let mut grand = SuiteAccumulator::new();
    let per_env = Workload::ALL.len();
    for (env_idx, &env) in EnvironmentId::ALL.iter().enumerate() {
        let mut acc = SuiteAccumulator::new();
        for reports in &results[env_idx * per_env..(env_idx + 1) * per_env] {
            for (rep, baseline) in reports {
                acc.record(rep, baseline);
                grand.record(rep, baseline);
            }
        }
        acc.print(&format!("Fig. 11: {env} — {}", env.description()));
    }
    grand.print("Fig. 11: average across all nine environments");
}
