//! Figure 11: adaptability to stochastic variance — per-environment
//! results across S1–S5 and D1–D4.
//!
//! For each Table IV environment on the Mi8Pro: AutoScale (leave-one-out
//! trained, learning online) vs the four baselines and Opt, averaged
//! over the ten workloads. Prints PPW normalized to `Edge (CPU FP32)`
//! and the QoS-violation ratio per environment.

use autoscale::prelude::*;
use autoscale::scheduler::{Scheduler, SchedulerKind};
use autoscale_bench::{autoscale_for, build_baseline, reward_fn, SuiteAccumulator, RUNS, WARMUP};

fn main() {
    let config = EngineConfig::paper();
    let sim = Simulator::new(DeviceId::Mi8Pro);
    let ev = Evaluator::new(sim, config);
    let oracle = autoscale::scheduler::OracleScheduler::new(ev.sim(), reward_fn(config));
    let mut grand = SuiteAccumulator::new();

    for env in EnvironmentId::ALL {
        let mut rng = autoscale::seeded_rng(1100 + env as u64);
        let mut acc = SuiteAccumulator::new();
        for w in Workload::ALL {
            // Train on the other nine workloads across every environment so
            // the engine has seen the variance states it will face.
            let mut autoscale_sched = autoscale_for(ev.sim(), w, &EnvironmentId::ALL, config, 62);
            let mut others: Vec<Box<dyn Scheduler>> = vec![
                build_baseline(SchedulerKind::EdgeBest, ev.sim(), config),
                build_baseline(SchedulerKind::Cloud, ev.sim(), config),
                build_baseline(SchedulerKind::ConnectedEdge, ev.sim(), config),
                build_baseline(SchedulerKind::Oracle, ev.sim(), config),
            ];
            let mut base = build_baseline(SchedulerKind::EdgeCpuFp32, ev.sim(), config);
            let baseline = ev.run(base.as_mut(), w, env, 0, RUNS, None, &mut rng);
            acc.record(&baseline, &baseline);
            grand.record(&baseline, &baseline);
            let rep = ev.run(&mut autoscale_sched, w, env, WARMUP, RUNS, Some(&oracle), &mut rng);
            acc.record(&rep, &baseline);
            grand.record(&rep, &baseline);
            for s in others.iter_mut() {
                let rep = ev.run(s.as_mut(), w, env, 0, RUNS, None, &mut rng);
                acc.record(&rep, &baseline);
                grand.record(&rep, &baseline);
            }
        }
        acc.print(&format!("Fig. 11: {env} — {}", env.description()));
    }
    grand.print("Fig. 11: average across all nine environments");
}
