//! Section VI-C overhead analysis: decision latency, training-step
//! latency, and Q-table memory.
//!
//! The paper reports 25.4 µs per training step, 7.3 µs per trained
//! (serving) decision, and a 0.4 MB Q-table. The Criterion benches in
//! `benches/overhead.rs` measure the same quantities rigorously; this
//! binary prints a quick wall-clock summary in the paper's format.

use std::time::Instant;

use autoscale::prelude::*;

fn main() {
    let config = EngineConfig::paper();
    let sim = Simulator::new(DeviceId::Mi8Pro);
    let mut engine = AutoScaleEngine::new(&sim, config);
    let mut rng = autoscale::seeded_rng(1);
    let snapshot = Snapshot::calm();
    let w = Workload::MobileNetV3;

    // Warm the engine so decisions exercise a populated table.
    for _ in 0..200 {
        let step = engine
            .decide(&sim, w, &snapshot, &mut rng)
            .expect("feasible");
        let outcome = sim
            .execute_measured(w, &step.request, &snapshot, &mut rng)
            .expect("feasible");
        engine.learn(&sim, w, step, &outcome, &snapshot);
    }

    const N: u32 = 100_000;

    // Serving decision: state lookup + greedy argmax.
    let t = Instant::now();
    for _ in 0..N {
        std::hint::black_box(engine.decide_greedy(&sim, w, &snapshot).expect("feasible"));
    }
    let serve_us = t.elapsed().as_secs_f64() * 1e6 / N as f64;

    // Training step: decision + reward + Q update (inference excluded,
    // as in the paper).
    let outcome = sim
        .execute_expected(
            w,
            &engine
                .decide_greedy(&sim, w, &snapshot)
                .expect("feasible")
                .request,
            &snapshot,
        )
        .expect("feasible");
    let t = Instant::now();
    for _ in 0..N {
        let step = engine
            .decide(&sim, w, &snapshot, &mut rng)
            .expect("feasible");
        std::hint::black_box(engine.learn(&sim, w, step, &outcome, &snapshot));
    }
    let train_us = t.elapsed().as_secs_f64() * 1e6 / N as f64;

    let table_mb = engine.agent().store().memory_bytes() as f64 / (1024.0 * 1024.0);
    let dram_gb = sim.host().dram_gb();

    println!("Section VI-C overhead analysis (Mi8Pro, MobileNet v3):");
    println!("  serving decision:  {serve_us:>7.2} us   (paper:  7.3 us)");
    println!("  training step:     {train_us:>7.2} us   (paper: 25.4 us)");
    println!(
        "  Q-table memory:    {table_mb:>7.2} MB   ({:.3}% of the {dram_gb:.0} GB device DRAM; paper: 0.4 MB)",
        table_mb / (dram_gb * 1024.0) * 100.0
    );
    let min_latency_ms = 5.0; // the fastest on-device inference in the testbed
    println!(
        "  training overhead vs fastest inference: {:.2}% (paper: 1.2%)",
        train_us / (min_latency_ms * 1e3) * 100.0
    );
}
