//! Table I: the state features and their discretization, including the
//! DBSCAN re-derivation of the NN-feature buckets.

use autoscale::prelude::*;
use autoscale_nn::LayerKind;

fn main() {
    let space = StateSpace::paper();
    println!(
        "Table I: state-related features ({} encoded states)",
        space.len()
    );
    println!("  S_CONV   # of CONV layers     small(<30) medium(<50) large(<90) larger(>=90)");
    println!("  S_FC     # of FC layers       small(<10) large(>=10)");
    println!("  S_RC     # of RC layers       small(<10) large(>=10)");
    println!("  S_MAC    # of MAC operations  small(<1000M) medium(<2000M) large(>=2000M)");
    println!("  S_Co_CPU co-runner CPU util.  none(0%) small(<25%) medium(<75%) large(<=100%)");
    println!("  S_Co_MEM co-runner mem usage  none(0%) small(<25%) medium(<75%) large(<=100%)");
    println!("  S_RSSI_W WLAN RSSI            regular(>-80dBm) weak(<=-80dBm)");
    println!("  S_RSSI_P P2P RSSI             regular(>-80dBm) weak(<=-80dBm)");

    // Re-derive the NN-feature buckets with DBSCAN over the Table III
    // workloads, as the paper did (Section IV-A).
    let feature = |f: &dyn Fn(&Network) -> f64| -> Vec<f64> {
        Workload::ALL
            .iter()
            .map(|&w| f(&Network::workload(w)))
            .collect()
    };
    let derived = StateSpace::from_dbscan(
        &feature(&|n| n.count(LayerKind::Conv) as f64),
        &feature(&|n| n.count(LayerKind::Fc) as f64),
        &feature(&|n| n.count(LayerKind::Rc) as f64),
        &feature(&|n| n.total_macs() as f64 / 1e6),
    );
    println!("\nDBSCAN re-derivation over the Table III workloads:");
    println!(
        "  derived state-space size: {} (paper: 3072)",
        derived.len()
    );

    println!("\nPer-workload state under calm conditions:");
    let calm = Snapshot::calm();
    for w in Workload::ALL {
        let net = Network::workload(w);
        let s = space.observe(&net, &calm);
        println!(
            "  {:<18} conv={} fc={} rc={} mac={} -> index {}",
            w.to_string(),
            s.conv,
            s.fc,
            s.rc,
            s.mac,
            space.encode(&s)
        );
    }
}
