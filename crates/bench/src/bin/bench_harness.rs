//! Timing harness for the parallel experiment sweep.
//!
//! Runs the full Figure 9 sweep (30 cells: 3 phones x 10 workloads, each
//! cell training and evaluating eight schedulers across the five static
//! environments) twice — once serially and once on the work-queue harness
//! with `--threads N` workers (default: all cores) — verifies the results
//! are bit-identical, and writes the wall-clock numbers to
//! `BENCH_harness.json` at the repository root.

use std::time::Instant;

use autoscale::parallel::{run_cells, threads_from_args};
use autoscale_bench::{fig9_cell, fig9_specs};

fn main() {
    let threads = threads_from_args(std::env::args().skip(1));
    let specs = fig9_specs();
    println!("fig9 sweep: {} cells, serial pass...", specs.len());

    let start = Instant::now();
    let serial = run_cells(1, 900, &specs, fig9_cell);
    let serial_s = start.elapsed().as_secs_f64();
    println!("serial:   {serial_s:.2} s");

    println!("parallel pass ({threads} threads)...");
    let start = Instant::now();
    let parallel = run_cells(threads, 900, &specs, fig9_cell);
    let parallel_s = start.elapsed().as_secs_f64();
    println!("parallel: {parallel_s:.2} s");

    let serial_bytes = serde_json::to_vec(&serial).expect("reports serialize");
    let parallel_bytes = serde_json::to_vec(&parallel).expect("reports serialize");
    assert_eq!(
        serial_bytes, parallel_bytes,
        "parallel results diverge from serial"
    );
    println!("results bit-identical across thread counts");

    // Speedup tracks the machine: with C cores it approaches min(threads, C),
    // so the recorded number is only meaningful next to `cores`.
    let speedup = serial_s / parallel_s;
    let cores = autoscale::parallel::default_threads();
    let json = format!(
        "{{\n  \"serial_s\": {serial_s:.3},\n  \"parallel_s\": {parallel_s:.3},\n  \"threads\": {threads},\n  \"cores\": {cores},\n  \"speedup\": {speedup:.3}\n}}\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_harness.json");
    std::fs::write(out, &json).expect("write BENCH_harness.json");
    println!("speedup:  {speedup:.2}x -> {out}");
}
