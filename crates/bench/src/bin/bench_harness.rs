//! Timing harness for the parallel experiment sweep.
//!
//! Runs the full Figure 9 sweep (30 cells: 3 phones x 10 workloads, each
//! cell training and evaluating eight schedulers across the five static
//! environments) twice — once serially and once on the work-queue harness
//! with `--threads N` workers (default: all cores) — verifies the results
//! are bit-identical, and writes the wall-clock numbers to
//! `BENCH_harness.json` at the repository root.
//!
//! The thread request is clamped to `available_parallelism` before the
//! parallel pass; when it clamps all the way down to 1 the parallel pass
//! is skipped entirely (it would re-run the serial sweep and report a
//! noise-sized "speedup"), and the recorded speedup is exactly 1.

use std::time::Instant;

use autoscale::parallel::{resolve_threads, run_cells};
use autoscale_bench::{fig9_cell, fig9_specs};

fn main() {
    // Parse the raw request ourselves so the report can record what was
    // asked for next to what actually ran — a 1-core host serving
    // `--threads 8` must not claim an 8-way measurement.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let requested: Option<usize> = args.iter().position(|a| a == "--threads").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--threads requires a count");
                std::process::exit(2);
            })
    });
    let threads = resolve_threads(requested);
    let cores = autoscale::parallel::default_threads();
    let threads_requested = match requested {
        None | Some(0) => cores,
        Some(n) => n,
    };
    let specs = fig9_specs();
    println!("fig9 sweep: {} cells, serial pass...", specs.len());

    let start = Instant::now();
    let serial = run_cells(1, 900, &specs, fig9_cell);
    let serial_s = start.elapsed().as_secs_f64();
    println!("serial:   {serial_s:.2} s");

    let (parallel_s, speedup) = if threads <= 1 {
        println!("parallel pass skipped: request of {threads_requested} threads clamps to 1 on this {cores}-core host");
        (serial_s, 1.0)
    } else {
        println!("parallel pass ({threads} threads)...");
        let start = Instant::now();
        let parallel = run_cells(threads, 900, &specs, fig9_cell);
        let parallel_s = start.elapsed().as_secs_f64();
        println!("parallel: {parallel_s:.2} s");

        let serial_bytes = serde_json::to_vec(&serial).expect("reports serialize");
        let parallel_bytes = serde_json::to_vec(&parallel).expect("reports serialize");
        assert_eq!(
            serial_bytes, parallel_bytes,
            "parallel results diverge from serial"
        );
        println!("results bit-identical across thread counts");
        (parallel_s, serial_s / parallel_s)
    };

    // Speedup tracks the machine: with C cores it approaches
    // min(threads_effective, C), so the recorded number is only
    // meaningful next to `cores`.
    let json = format!(
        "{{\n  \"serial_s\": {serial_s:.3},\n  \"parallel_s\": {parallel_s:.3},\n  \"threads_requested\": {threads_requested},\n  \"threads_effective\": {threads},\n  \"cores\": {cores},\n  \"speedup\": {speedup:.3}\n}}\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_harness.json");
    std::fs::write(out, &json).expect("write BENCH_harness.json");
    println!("speedup:  {speedup:.2}x -> {out}");
}
