//! Figure 7: prediction-based approaches leave a significant gap to Opt
//! in the presence of stochastic runtime variance.
//!
//! Part 1 reproduces the MAPE / misclassification analysis of Section
//! III-C: every predictor trained and tested with and without runtime
//! variance. Part 2 runs the predictor-driven schedulers through a
//! variance-heavy environment mix and prints PPW (normalized to
//! `Edge (CPU)`) and QoS-violation ratio against Opt.

use autoscale::characterize::{self, VarianceMode};
use autoscale::experiment;
use autoscale::prelude::*;
use autoscale::scheduler::{OracleScheduler, Scheduler};
use autoscale_bench::{build_baseline, reward_fn, section, SuiteAccumulator, RUNS};

fn main() {
    let config = EngineConfig::paper();
    let sim = Simulator::new(DeviceId::Mi8Pro);

    section("prediction error with and without runtime variance");
    for mode in [VarianceMode::Calm, VarianceMode::Stochastic] {
        let errors = experiment::predictor_errors(&sim, config, mode, 11);
        println!(
            "  {:?}: LR MAPE {:.1}%  SVR MAPE {:.1}%  BO MAPE {:.1}%  SVM misclass {:.1}%  KNN misclass {:.1}%",
            mode,
            errors.lr_mape,
            errors.svr_mape,
            errors.bo_mape,
            errors.svm_misclassification,
            errors.knn_misclassification
        );
    }

    section("scheduler comparison under stochastic variance");
    let dataset = experiment::characterization_dataset(&sim, VarianceMode::Stochastic, 21);
    let ev = Evaluator::new(sim, config);
    let oracle = OracleScheduler::new(ev.sim(), reward_fn(config));
    let mut rng = autoscale::seeded_rng(77);

    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        build_baseline(
            autoscale::scheduler::SchedulerKind::EdgeCpuFp32,
            ev.sim(),
            config,
        ),
        Box::new(characterize::train_lr_scheduler(
            ev.sim(),
            &dataset,
            reward_fn(config),
        )),
        Box::new(characterize::train_svr_scheduler(
            ev.sim(),
            &dataset,
            reward_fn(config),
        )),
        Box::new(characterize::train_svm_scheduler(
            ev.sim(),
            &dataset,
            reward_fn(config),
        )),
        Box::new(characterize::train_knn_scheduler(
            ev.sim(),
            &dataset,
            reward_fn(config),
        )),
        Box::new(autoscale::scheduler::BoScheduler::new(
            ev.sim(),
            40,
            reward_fn(config),
        )),
        build_baseline(
            autoscale::scheduler::SchedulerKind::Oracle,
            ev.sim(),
            config,
        ),
    ];

    // The variance-heavy mix: interference plus weak/random signal.
    let envs = [
        EnvironmentId::S2,
        EnvironmentId::S3,
        EnvironmentId::S4,
        EnvironmentId::D3,
    ];
    let mut acc = SuiteAccumulator::new();
    for w in Workload::ALL {
        for env in envs {
            let mut base = build_baseline(
                autoscale::scheduler::SchedulerKind::EdgeCpuFp32,
                ev.sim(),
                config,
            );
            let baseline = ev.run(base.as_mut(), w, env, 0, RUNS, None, &mut rng);
            for s in schedulers.iter_mut() {
                // BO gets its exploration budget as warm-up, like the paper's
                // BO baseline which optimizes before being measured.
                let warmup = if s.kind() == autoscale::scheduler::SchedulerKind::BayesOpt {
                    50
                } else {
                    0
                };
                let rep = ev.run(s.as_mut(), w, env, warmup, RUNS, Some(&oracle), &mut rng);
                acc.record(&rep, &baseline);
            }
        }
    }
    acc.print("Fig. 7: predictors vs Opt (PPW normalized to Edge (CPU FP32))");
}
