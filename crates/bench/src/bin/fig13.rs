//! Figure 13: AutoScale accurately selects the optimal execution target.
//!
//! For each phone, prints AutoScale's and Opt's decision distributions
//! (on-device / connected edge / cloud) and AutoScale's prediction
//! accuracy against the oracle. Then reproduces the paper's two spot
//! checks: under weak Wi-Fi (S4) decisions shift away from the cloud,
//! and under the web-browser co-runner (D2) they shift off the device.

use autoscale::experiment;
use autoscale::prelude::*;
use autoscale::scheduler::{AutoScaleScheduler, OracleScheduler, SchedulerKind};
use autoscale_bench::{build_baseline, reward_fn, section, RUNS, TRAIN_RUNS, WARMUP};

fn main() {
    let config = EngineConfig::paper();
    println!("Figure 13: decision distributions and prediction accuracy");

    for device in DeviceId::PHONES {
        let sim = Simulator::new(device);
        let ev = Evaluator::new(sim, config);
        let oracle = OracleScheduler::new(ev.sim(), reward_fn(config));
        let mut rng = autoscale::seeded_rng(1300 + device as u64);
        section(&device.to_string());

        // The decision-distribution analysis uses a fully trained engine
        // (every workload, every environment), as deployed after training.
        let engine = experiment::train_engine(
            ev.sim(),
            &Workload::ALL,
            &EnvironmentId::ALL,
            TRAIN_RUNS,
            config,
            82,
        );

        let mut shares_as = [0.0; 3];
        let mut shares_opt = [0.0; 3];
        let mut match_sum = 0.0;
        let mut cells = 0.0;
        for w in Workload::ALL {
            for env in [EnvironmentId::S1, EnvironmentId::S4, EnvironmentId::D2] {
                let mut sched = AutoScaleScheduler::new(engine.clone(), false);
                let rep = ev.run(&mut sched, w, env, WARMUP, RUNS, Some(&oracle), &mut rng);
                let mut opt = build_baseline(SchedulerKind::Oracle, ev.sim(), config);
                let opt_rep = ev.run(opt.as_mut(), w, env, 0, RUNS, None, &mut rng);
                for i in 0..3 {
                    shares_as[i] += rep.placement_shares[i];
                    shares_opt[i] += opt_rep.placement_shares[i];
                }
                match_sum += rep.oracle_match_ratio.expect("oracle tracking enabled");
                cells += 1.0;
            }
        }
        let pct = |v: f64| v / cells * 100.0;
        println!(
            "  AutoScale decisions: on-device {:.1}%  connected {:.1}%  cloud {:.1}%",
            pct(shares_as[0]),
            pct(shares_as[1]),
            pct(shares_as[2])
        );
        println!(
            "  Opt decisions:       on-device {:.1}%  connected {:.1}%  cloud {:.1}%",
            pct(shares_opt[0]),
            pct(shares_opt[1]),
            pct(shares_opt[2])
        );
        println!("  prediction accuracy: {:.1}%", match_sum / cells * 100.0);

        // Spot checks from the paper's text.
        for (env, label) in
            [(EnvironmentId::S4, "weak Wi-Fi (S4)"), (EnvironmentId::D2, "web browser (D2)")]
        {
            let mut sched = AutoScaleScheduler::new(engine.clone(), false);
            let mut on_device = 0.0;
            let mut connected = 0.0;
            let mut cloud = 0.0;
            let mut matches = 0.0;
            for w in Workload::ALL {
                let rep = ev.run(&mut sched, w, env, WARMUP, RUNS, Some(&oracle), &mut rng);
                on_device += rep.placement_shares[0];
                connected += rep.placement_shares[1];
                cloud += rep.placement_shares[2];
                matches += rep.oracle_match_ratio.expect("oracle tracking enabled");
            }
            let n = Workload::ALL.len() as f64;
            println!(
                "  {label}: on-device {:.1}%  connected {:.1}%  cloud {:.1}%  (accuracy {:.1}%)",
                on_device / n * 100.0,
                connected / n * 100.0,
                cloud / n * 100.0,
                matches / n * 100.0
            );
        }
    }
}
