//! Figure 13: AutoScale accurately selects the optimal execution target.
//!
//! For each phone, prints AutoScale's and Opt's decision distributions
//! (on-device / connected edge / cloud) and AutoScale's prediction
//! accuracy against the oracle. Then reproduces the paper's two spot
//! checks: under weak Wi-Fi (S4) decisions shift away from the cloud,
//! and under the web-browser co-runner (D2) they shift off the device.
//!
//! Runs on the deterministic parallel harness in three grids: one cell
//! per device to train the engines, one per (device, workload,
//! environment) for the decision-distribution analysis (each cell clones
//! the trained engine), and one per (device, spot-check environment) —
//! the spot checks keep one online-learning scheduler across all ten
//! workloads, a sequential chain that stays inside a single cell.

use autoscale::experiment;
use autoscale::parallel::{run_cells, threads_from_args, Cell};
use autoscale::prelude::*;
use autoscale::scheduler::{AutoScaleScheduler, OracleScheduler, SchedulerKind};
use autoscale_bench::{build_baseline, reward_fn, section, RUNS, TRAIN_RUNS, WARMUP};

const ANALYSIS_ENVS: [EnvironmentId; 3] = [EnvironmentId::S1, EnvironmentId::S4, EnvironmentId::D2];
const SPOT_CHECKS: [(EnvironmentId, &str); 2] = [
    (EnvironmentId::S4, "weak Wi-Fi (S4)"),
    (EnvironmentId::D2, "web browser (D2)"),
];

/// One analysis cell: AutoScale's and Opt's placement shares plus the
/// oracle-match ratio for one (device, workload, environment).
struct AnalysisCell {
    shares_as: [f64; 3],
    shares_opt: [f64; 3],
    oracle_match: f64,
}

fn main() {
    let threads = threads_from_args(std::env::args().skip(1));
    let config = EngineConfig::paper();
    println!("Figure 13: decision distributions and prediction accuracy");

    // Grid 1 — one fully trained engine per phone (every workload, every
    // environment), as deployed after training.
    let devices: Vec<DeviceId> = DeviceId::PHONES.to_vec();
    let engines = run_cells(threads, 1300, &devices, |cell| {
        let sim = Simulator::new(*cell.spec);
        experiment::train_engine(
            &sim,
            &Workload::ALL,
            &EnvironmentId::ALL,
            TRAIN_RUNS,
            config,
            82,
        )
    });

    // Grid 2 — decision-distribution analysis over engine clones.
    let analysis_specs: Vec<(usize, Workload, EnvironmentId)> = (0..devices.len())
        .flat_map(|d| {
            Workload::ALL
                .iter()
                .flat_map(move |&w| ANALYSIS_ENVS.iter().map(move |&e| (d, w, e)))
        })
        .collect();
    let analysis = run_cells(threads, 1310, &analysis_specs, |cell| {
        let (device_idx, w, env) = *cell.spec;
        let ev = Evaluator::new(Simulator::new(devices[device_idx]), config);
        let oracle = OracleScheduler::new(ev.sim(), reward_fn(config));
        let mut rng = autoscale::seeded_rng(cell.seed);
        let mut sched = AutoScaleScheduler::new(engines[device_idx].clone(), false);
        let rep = ev.run(&mut sched, w, env, WARMUP, RUNS, Some(&oracle), &mut rng);
        let mut opt = build_baseline(SchedulerKind::Oracle, ev.sim(), config);
        let opt_rep = ev.run(opt.as_mut(), w, env, 0, RUNS, None, &mut rng);
        AnalysisCell {
            shares_as: rep.placement_shares,
            shares_opt: opt_rep.placement_shares,
            oracle_match: rep.oracle_match_ratio.expect("oracle tracking enabled"),
        }
    });

    // Grid 3 — spot checks: one online-learning scheduler carried across
    // all ten workloads (sequential inside the cell).
    let spot_specs: Vec<(usize, EnvironmentId)> = (0..devices.len())
        .flat_map(|d| SPOT_CHECKS.iter().map(move |&(e, _)| (d, e)))
        .collect();
    let spots = run_cells(
        threads,
        1320,
        &spot_specs,
        |cell: &Cell<'_, (usize, EnvironmentId)>| {
            let (device_idx, env) = *cell.spec;
            let ev = Evaluator::new(Simulator::new(devices[device_idx]), config);
            let oracle = OracleScheduler::new(ev.sim(), reward_fn(config));
            let mut rng = autoscale::seeded_rng(cell.seed);
            let mut sched = AutoScaleScheduler::new(engines[device_idx].clone(), false);
            let mut shares = [0.0; 3];
            let mut matches = 0.0;
            for w in Workload::ALL {
                let rep = ev.run(&mut sched, w, env, WARMUP, RUNS, Some(&oracle), &mut rng);
                for (acc, share) in shares.iter_mut().zip(rep.placement_shares) {
                    *acc += share;
                }
                matches += rep.oracle_match_ratio.expect("oracle tracking enabled");
            }
            (shares, matches)
        },
    );

    // All numbers collected; print per device in figure order.
    let per_device = Workload::ALL.len() * ANALYSIS_ENVS.len();
    for (device_idx, device) in devices.iter().enumerate() {
        section(&device.to_string());
        let cells = &analysis[device_idx * per_device..(device_idx + 1) * per_device];
        let mut shares_as = [0.0; 3];
        let mut shares_opt = [0.0; 3];
        let mut match_sum = 0.0;
        for c in cells {
            for i in 0..3 {
                shares_as[i] += c.shares_as[i];
                shares_opt[i] += c.shares_opt[i];
            }
            match_sum += c.oracle_match;
        }
        let n = cells.len() as f64;
        let pct = |v: f64| v / n * 100.0;
        println!(
            "  AutoScale decisions: on-device {:.1}%  connected {:.1}%  cloud {:.1}%",
            pct(shares_as[0]),
            pct(shares_as[1]),
            pct(shares_as[2])
        );
        println!(
            "  Opt decisions:       on-device {:.1}%  connected {:.1}%  cloud {:.1}%",
            pct(shares_opt[0]),
            pct(shares_opt[1]),
            pct(shares_opt[2])
        );
        println!("  prediction accuracy: {:.1}%", match_sum / n * 100.0);

        for (check_idx, (_, label)) in SPOT_CHECKS.iter().enumerate() {
            let (shares, matches) = &spots[device_idx * SPOT_CHECKS.len() + check_idx];
            let n = Workload::ALL.len() as f64;
            println!(
                "  {label}: on-device {:.1}%  connected {:.1}%  cloud {:.1}%  (accuracy {:.1}%)",
                shares[0] / n * 100.0,
                shares[1] / n * 100.0,
                shares[2] / n * 100.0,
                matches / n * 100.0
            );
        }
    }
}
