//! Figure 3: each NN layer kind exhibits different latency on different
//! mobile processors, so the optimal target depends on layer composition.
//!
//! Prints the cumulative per-layer-kind latency of Inception v1 and
//! MobileNet v3 on the Mi8Pro's CPU, GPU and DSP, normalized to the CPU
//! total (as in the paper's stacked bars). MobileBERT is omitted exactly
//! as in the paper: no middleware runs it on co-processors.

use autoscale::prelude::*;
use autoscale_bench::section;
use autoscale_platform::{latency::layer_breakdown, ExecutionConditions};

fn main() {
    let sim = Simulator::new(DeviceId::Mi8Pro);
    println!("Figure 3: cumulative per-layer-kind latency, normalized to the CPU total");

    for w in [Workload::InceptionV1, Workload::MobileNetV3] {
        section(&w.to_string());
        let network = sim.network(w);
        let cpu = sim.host().processor(ProcessorKind::Cpu).expect("phone CPU");
        let cpu_cond = ExecutionConditions::max_frequency(cpu, Precision::Fp32);
        let cpu_total: f64 = layer_breakdown(cpu, network, &cpu_cond)
            .iter()
            .map(|k| k.total_ms)
            .sum();

        for kind in [ProcessorKind::Cpu, ProcessorKind::Gpu, ProcessorKind::Dsp] {
            let Some(proc) = sim.host().processor(kind) else {
                continue;
            };
            // Each processor runs its deployment precision, as in Fig. 3.
            let precision = match kind {
                ProcessorKind::Dsp => Precision::Int8,
                _ => Precision::Fp32,
            };
            let cond = ExecutionConditions::max_frequency(proc, precision);
            let breakdown = layer_breakdown(proc, network, &cond);
            let total: f64 = breakdown.iter().map(|k| k.total_ms).sum();
            print!("  {kind:<4} total {:>5.2}x CPU  |", total / cpu_total);
            for k in &breakdown {
                if k.total_ms / cpu_total >= 0.005 {
                    print!(" {}: {:.2}x", k.kind, k.total_ms / cpu_total);
                }
            }
            println!();
        }
    }

    println!(
        "\nReading: FC segments grow dramatically on co-processors, so FC-heavy\n\
         NNs (MobileNet v3) favour the CPU while CONV-heavy NNs (Inception v1)\n\
         favour co-processors — the paper's Fig. 3 observation."
    );
}
