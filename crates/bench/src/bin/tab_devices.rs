//! Table II: the mobile device specifications of the testbed.

use autoscale::prelude::*;

fn main() {
    println!("Table II: device specifications");
    for id in DeviceId::ALL {
        let device = Device::for_id(id);
        println!("\n{} ({:?}):", id, device.class());
        for p in device.processors() {
            println!(
                "  {:<4} {:<14} {:.2} GHz, {:>2} V/F steps, peak {:>6.0} GMAC/s, busy {:.1} W",
                p.kind().to_string(),
                p.name(),
                p.dvfs().max_step().freq_ghz,
                p.dvfs().len(),
                p.peak_gmacs(),
                p.dvfs().max_step().busy_power_w
            );
        }
        println!(
            "  base power {:.1} W, DRAM {:.0} GB, serving overhead {:.0} ms",
            device.base_power_w(),
            device.dram_gb(),
            device.serving_overhead_ms()
        );
    }
}
