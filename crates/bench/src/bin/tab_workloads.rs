//! Table III: the DNN inference workloads and their layer compositions.

use autoscale::prelude::*;
use autoscale_nn::{accuracy_for, LayerKind};

fn main() {
    println!("Table III: DNN inference workloads");
    println!(
        "{:<20} {:<22} {:>6} {:>5} {:>5} {:>9} {:>10} {:>16}",
        "DNN", "Workload", "S_CONV", "S_FC", "S_RC", "MACs (M)", "params (M)", "acc FP32/INT8"
    );
    for w in Workload::ALL {
        let net = Network::workload(w);
        let acc = accuracy_for(w);
        println!(
            "{:<20} {:<22} {:>6} {:>5} {:>5} {:>9.0} {:>10.1} {:>9.1}/{:.1}",
            w.to_string(),
            w.task().to_string(),
            net.count(LayerKind::Conv),
            net.count(LayerKind::Fc),
            net.count(LayerKind::Rc),
            net.total_macs() as f64 / 1e6,
            net.weight_bytes(Precision::Fp32) as f64 / 4e6,
            acc.fp32,
            acc.int8
        );
    }
}
