//! Figure 4: the optimal edge-cloud execution target shifts with the
//! inference accuracy target.
//!
//! Prints PPW (normalized to `Edge (CPU FP32)`) and accuracy for every
//! (target, precision) combination of Inception v1 and MobileNet v3 on
//! the Mi8Pro, then the optimal target under a 50% and a 65% accuracy
//! requirement.

use autoscale::prelude::*;
use autoscale::reward::RewardConfig;
use autoscale::scheduler::OracleScheduler;
use autoscale_bench::section;

fn main() {
    let sim = Simulator::new(DeviceId::Mi8Pro);
    let calm = Snapshot::calm();
    println!("Figure 4: PPW (normalized to Edge (CPU FP32)) and accuracy per target");

    for w in [Workload::InceptionV1, Workload::MobileNetV3] {
        section(&w.to_string());
        let base = sim
            .execute_expected(
                w,
                &Request::at_max_frequency(
                    &sim,
                    Placement::OnDevice(ProcessorKind::Cpu),
                    Precision::Fp32,
                ),
                &calm,
            )
            .expect("CPU FP32 always runs");
        for (label, placement, precision) in combos() {
            let request = Request::at_max_frequency(&sim, placement, precision);
            if let Ok(o) = sim.execute_expected(w, &request, &calm) {
                println!(
                    "  {label:<22} PPW {:>5.2}x   accuracy {:>5.1}%",
                    base.energy_mj / o.energy_mj,
                    o.accuracy
                )
            }
        }
        for target in [50.0, 65.0] {
            let oracle = OracleScheduler::new(&sim, move |w: Workload| RewardConfig {
                accuracy_target: Some(target),
                ..EngineConfig::paper().reward_for(w)
            });
            let opt = oracle.optimal_request(&sim, w, &calm);
            println!("  optimal @ {target:.0}% accuracy target: {opt}");
        }
    }
}

fn combos() -> Vec<(&'static str, Placement, Precision)> {
    vec![
        (
            "Edge (CPU FP32)",
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Fp32,
        ),
        (
            "Edge (CPU INT8)",
            Placement::OnDevice(ProcessorKind::Cpu),
            Precision::Int8,
        ),
        (
            "Edge (GPU FP32)",
            Placement::OnDevice(ProcessorKind::Gpu),
            Precision::Fp32,
        ),
        (
            "Edge (GPU FP16)",
            Placement::OnDevice(ProcessorKind::Gpu),
            Precision::Fp16,
        ),
        (
            "Edge (DSP INT8)",
            Placement::OnDevice(ProcessorKind::Dsp),
            Precision::Int8,
        ),
        (
            "Cloud (GPU FP32)",
            Placement::Cloud(ProcessorKind::Gpu),
            Precision::Fp32,
        ),
    ]
}
