//! Throughput benchmark for the multi-session decision server.
//!
//! Runs the same serving fleet (Mi8Pro, static-environment scenario mix)
//! at 1 shard, 4 shards and all-cores, verifies the per-session reports
//! are bit-identical across shard counts, and records decisions/second
//! plus p50/p99 wall-clock decision latency for each run. Shard counts
//! that clamp to an already-measured effective count are skipped (on a
//! 1-core box only one pass runs; "8 threads" there would measure the
//! same serial execution twice and report a meaningless speedup).
//!
//! It then races every [`KernelKind`] over a longer fleet with latency
//! recording off — the serving-throughput configuration — asserts the
//! fleet digests are identical across kernels, and records the winner.
//! The full run writes `BENCH_serve.json` at the repository root;
//! `--smoke` runs a small fleet and skips the file (the CI-sized check).
//!
//! `--gate PATH` is the CI perf-regression mode: it runs only the kernel
//! race, compares the best throughput against the committed
//! `best_decisions_per_sec` in PATH, and exits non-zero on a >20%
//! regression. Regenerate the committed number with
//! `cargo run --release -p autoscale-bench --bin bench_serve`.
//!
//! `--faults PROFILE` runs the fleet under a named fault profile
//! (`lossy-edge`, `chaos`, ...): the shard-invariance assertion still
//! holds — fault schedules are seeded per session — and the summary adds
//! the fleet's fault/retry/fallback counts.
//!
//! `--openloop` benchmarks the discrete-event serving core instead: an
//! overloaded open-loop fleet (bursty arrivals far above the service
//! rate, bounded queues, degrade admission) run at 1/4/all-cores shards
//! with the per-session reports *and* traffic accounting asserted
//! bit-identical, reporting sustained goodput vs offered load,
//! drop/late rates and queue-depth percentiles, plus a per-phase
//! `--timings`-style breakdown (schedule / serve / aggregate). The full
//! run writes `BENCH_openloop.json`; `--smoke` prints only.

use std::time::Instant;

use autoscale::parallel::{cell_seed, default_threads, resolve_threads};
use autoscale::prelude::*;
use autoscale::serve::session_seed;
use autoscale_rl::KernelKind;
use autoscale_sim::{ArrivalSampler, FaultProfile};

struct Run {
    shards_requested: usize,
    shards_effective: usize,
    wall_s: f64,
    decisions_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
}

struct KernelRun {
    kernel: KernelKind,
    wall_s: f64,
    decisions_per_sec: f64,
}

/// Races every decision kernel over the same fleet (latency recording
/// off, all cores) and asserts their fleet digests are identical —
/// the determinism contract, enforced on every benchmark run.
///
/// Each kernel runs `passes` times and keeps its fastest pass: the
/// throughput of interest is what the kernel can sustain, not what a
/// scheduler hiccup did to one run.
fn race_kernels(
    sim: &Simulator,
    mix: &ScenarioMix,
    sessions: usize,
    decisions: usize,
    faults: FaultProfile,
    passes: usize,
) -> Vec<KernelRun> {
    let mut runs: Vec<KernelRun> = Vec::new();
    let mut digest: Option<u64> = None;
    for kernel in KernelKind::ALL {
        let config = ServeConfig {
            sessions,
            decisions_per_session: decisions,
            shards: None,
            record_latency: false,
            faults,
            kernel,
            ..ServeConfig::fleet()
        };
        let mut best: Option<KernelRun> = None;
        for _ in 0..passes.max(1) {
            let start = Instant::now();
            let report = autoscale::serve::serve(sim, mix, &config, None).expect("no warm start");
            let wall_s = start.elapsed().as_secs_f64();
            match digest {
                None => digest = Some(report.digest()),
                Some(reference) => assert_eq!(
                    report.digest(),
                    reference,
                    "kernel {kernel} changed the decision traces"
                ),
            }
            let decisions_per_sec = report.total_decisions() as f64 / wall_s;
            if best
                .as_ref()
                .is_none_or(|b| decisions_per_sec > b.decisions_per_sec)
            {
                best = Some(KernelRun {
                    kernel,
                    wall_s,
                    decisions_per_sec,
                });
            }
        }
        runs.push(best.expect("at least one pass"));
    }
    runs
}

fn best_of(runs: &[KernelRun]) -> &KernelRun {
    runs.iter()
        .reduce(|best, r| {
            if r.decisions_per_sec > best.decisions_per_sec {
                r
            } else {
                best
            }
        })
        .expect("at least one kernel raced")
}

/// Extracts a committed numeric field from a previously written
/// `BENCH_serve.json` without a JSON parser dependency.
fn committed_number(text: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let at = text.find(&marker)?;
    let rest = text[at + marker.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a committed string field (`"key": "value"`) the same way.
fn committed_string(text: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let at = text.find(&marker)?;
    let rest = text[at + marker.len()..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn committed_best(text: &str, path: &str) -> f64 {
    committed_number(text, "best_decisions_per_sec").unwrap_or_else(|| {
        eprintln!("--gate: {path} has no best_decisions_per_sec (regenerate it with `cargo run --release -p autoscale-bench --bin bench_serve`)");
        std::process::exit(2);
    })
}

/// The open-loop serving benchmark: overload a fleet, verify the
/// discrete-event core is shard-invariant, and record what it sustains.
///
/// Three phases, each timed for the `--timings`-style breakdown:
/// *schedule* generates every session's arrival schedule standalone
/// (the pure traffic-generation cost), *serve* runs the fleet at each
/// shard count, *aggregate* folds the traffic metrics.
fn openloop_bench(sim: &Simulator, mix: &ScenarioMix, smoke: bool, faults: FaultProfile) {
    let sessions = if smoke { 4 } else { 16 };
    let horizon_ms = if smoke { 500.0 } else { 4_000.0 };
    // λ far above any edge device's service rate — the overload regime
    // this core exists to measure. Degrade admission keeps serving (no
    // deadline drops), so goodput reflects the device, not the policy.
    let open = OpenLoopConfig {
        arrivals: ArrivalProcess::bursty(2_000.0),
        churn: ChurnConfig::none(),
        horizon_ms,
        queue_capacity: 16,
        admission: AdmissionPolicy::Degrade,
    };
    let cores = default_threads();
    println!(
        "open-loop benchmark: {sessions} sessions, bursty {:.0} req/s over {horizon_ms:.0} ms, \
         queue {}, {} admission ({cores} cores{}{})",
        open.arrivals.rate_hz,
        open.queue_capacity,
        open.admission,
        if smoke { ", smoke" } else { "" },
        if faults.is_none() { "" } else { ", faults on" },
    );

    // Phase 1: schedule — arrival generation alone, no serving.
    let schedule_start = Instant::now();
    let mut scheduled = 0u64;
    for i in 0..sessions {
        let mut sampler =
            ArrivalSampler::new(open.arrivals, cell_seed(session_seed(0xf1ee7, i), 3));
        loop {
            let arrival = sampler.next_arrival();
            // The driver's exact `!(<)` window check (NaN/∞-safe).
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(arrival.at_ms < horizon_ms) {
                break;
            }
            scheduled += 1;
        }
    }
    let schedule_s = schedule_start.elapsed().as_secs_f64();

    // Phase 2: serve — the fleet at 1, 4 and all-cores shards, with the
    // deterministic outputs asserted identical across shard counts.
    let serve_start = Instant::now();
    let mut shard_counts: Vec<usize> = Vec::new();
    let mut seen_effective: Vec<usize> = Vec::new();
    for requested in [1, 4, cores] {
        let effective = resolve_threads(Some(requested));
        if !seen_effective.contains(&effective) {
            shard_counts.push(requested);
            seen_effective.push(effective);
        }
    }
    let mut reference: Option<ServeReport> = None;
    let mut best_decisions_per_sec = 0.0f64;
    for &shards in &shard_counts {
        let config = ServeConfig {
            sessions,
            shards: Some(shards),
            faults,
            openloop: Some(open),
            ..ServeConfig::fleet()
        };
        let start = Instant::now();
        let report = autoscale::serve::serve(sim, mix, &config, None).expect("no warm start");
        let wall_s = start.elapsed().as_secs_f64();
        let decisions_per_sec = report.total_decisions() as f64 / wall_s;
        best_decisions_per_sec = best_decisions_per_sec.max(decisions_per_sec);
        println!(
            "  shards {:>2} (effective {:>2}): {:>8.0} decisions/s ({:.2} s)",
            shards,
            resolve_threads(Some(shards)),
            decisions_per_sec,
            wall_s
        );
        match &reference {
            None => reference = Some(report),
            Some(reference) => {
                assert_eq!(
                    report.sessions, reference.sessions,
                    "shard count {shards} changed the open-loop session reports"
                );
                assert_eq!(
                    report.traffic, reference.traffic,
                    "shard count {shards} changed the open-loop traffic accounting"
                );
            }
        }
    }
    let serve_s = serve_start.elapsed().as_secs_f64();
    println!("open-loop reports and traffic bit-identical across shard counts");

    // Phase 3: aggregate — fold the headline traffic metrics.
    let aggregate_start = Instant::now();
    let report = reference.expect("at least one shard count ran");
    let traffic = report.traffic.as_ref().expect("open-loop sets traffic");
    assert_eq!(
        traffic.offered as u64, scheduled,
        "the serve phase must see exactly the schedule phase's arrivals"
    );
    assert_eq!(
        traffic.offered,
        traffic.served + traffic.dropped,
        "offered == served + dropped"
    );
    assert!(
        traffic.dropped > 0,
        "an overloaded fleet must shed load (offered {}, served {})",
        traffic.offered,
        traffic.served
    );
    let offered_hz = traffic.offered_load_hz();
    let goodput_hz = traffic.goodput_hz();
    let p50_depth = traffic.queue_depth_percentile(50.0);
    let p99_depth = traffic.queue_depth_percentile(99.0);
    let aggregate_s = aggregate_start.elapsed().as_secs_f64();

    println!(
        "  offered {offered_hz:.0} req/s/session, sustained goodput {goodput_hz:.1} req/s/session \
         ({:.1}% dropped, {:.1}% late, utilization {:.0}%)",
        traffic.drop_rate() * 100.0,
        traffic.violation_rate() * 100.0,
        traffic.utilization() * 100.0
    );
    println!(
        "  queue depth p50 {p50_depth} / p99 {p99_depth} (peak {}, bound {})",
        traffic.peak_queue_depth, open.queue_capacity
    );
    println!(
        "timings: schedule {:.1} ms ({:.0} arrivals/s), serve {:.1} ms, aggregate {:.1} ms",
        schedule_s * 1e3,
        scheduled as f64 / schedule_s.max(1e-9),
        serve_s * 1e3,
        aggregate_s * 1e3
    );

    if smoke {
        println!("smoke run: not writing BENCH_openloop.json");
        return;
    }
    let json = format!(
        "{{\n  \"sessions\": {sessions},\n  \"horizon_ms\": {horizon_ms:.1},\n  \"rate_hz\": {:.1},\n  \"queue_capacity\": {},\n  \"cores\": {cores},\n  \"offered\": {},\n  \"served\": {},\n  \"dropped\": {},\n  \"offered_load_hz\": {offered_hz:.1},\n  \"goodput_hz\": {goodput_hz:.1},\n  \"drop_rate\": {:.4},\n  \"violation_rate\": {:.4},\n  \"utilization\": {:.4},\n  \"queue_depth_p50\": {p50_depth},\n  \"queue_depth_p99\": {p99_depth},\n  \"peak_queue_depth\": {},\n  \"best_decisions_per_sec\": {best_decisions_per_sec:.1},\n  \"timings_ms\": {{\"schedule\": {:.3}, \"serve\": {:.3}, \"aggregate\": {:.3}}}\n}}\n",
        open.arrivals.rate_hz,
        open.queue_capacity,
        traffic.offered,
        traffic.served,
        traffic.dropped,
        traffic.drop_rate(),
        traffic.violation_rate(),
        traffic.utilization(),
        traffic.peak_queue_depth,
        schedule_s * 1e3,
        serve_s * 1e3,
        aggregate_s * 1e3,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_openloop.json");
    std::fs::write(out, &json).expect("write BENCH_openloop.json");
    println!("wrote {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate = args.iter().position(|a| a == "--gate").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--gate needs the path of the committed BENCH_serve.json");
            std::process::exit(2);
        })
    });
    let faults = match args.iter().position(|a| a == "--faults") {
        None => FaultProfile::none(),
        Some(i) => {
            let name = args.get(i + 1).unwrap_or_else(|| {
                eprintln!(
                    "--faults needs a profile name ({})",
                    FaultProfile::NAMES.join("|")
                );
                std::process::exit(2);
            });
            FaultProfile::parse(name).unwrap_or_else(|| {
                eprintln!(
                    "unknown fault profile `{name}` ({})",
                    FaultProfile::NAMES.join("|")
                );
                std::process::exit(2);
            })
        }
    };
    let (sessions, decisions) = if smoke { (4, 50) } else { (32, 400) };
    // The race measures serving throughput, so it runs longer sessions:
    // most decisions happen after convergence freezes the policy, which
    // is the regime a deployed fleet spends its life in.
    let (race_sessions, race_decisions) = if smoke { (4, 200) } else { (16, 25_000) };

    let sim = Simulator::new(DeviceId::Mi8Pro);
    let mix = ScenarioMix::static_envs();
    let cores = default_threads();

    if args.iter().any(|a| a == "--openloop") {
        openloop_bench(&sim, &mix, smoke, faults);
        return;
    }

    if let Some(path) = gate {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("--gate: cannot read {path}: {e}");
            std::process::exit(2);
        });
        let committed = committed_best(&text, &path);
        if let Some(committed_cores) = committed_number(&text, "cores") {
            println!("cores: {cores} here vs {committed_cores:.0} when the baseline was committed");
        }
        let runs = race_kernels(
            &sim,
            &mix,
            race_sessions,
            race_decisions,
            faults,
            if smoke { 1 } else { 2 },
        );
        let best = best_of(&runs);
        for r in &runs {
            println!(
                "  kernel {:>6}: {:>9.0} decisions/s ({:.2} s)",
                r.kernel, r.decisions_per_sec, r.wall_s
            );
        }
        let floor = committed * 0.8;
        if best.decisions_per_sec < floor {
            eprintln!(
                "perf gate FAILED: best kernel ({}) served {:.0} decisions/s, \
                 below 80% of the committed {:.0} (floor {:.0}).\n\
                 If this regression is intended, regenerate the baseline with\n\
                 `cargo run --release -p autoscale-bench --bin bench_serve` and commit {path}.",
                best.kernel, best.decisions_per_sec, committed, floor
            );
            std::process::exit(1);
        }
        // The committed winner must still be competitive in a fresh race:
        // if another kernel now beats it by more than the gate tolerance,
        // the ranking regressed (e.g. a fast path was lost) even though
        // absolute throughput may still clear the floor.
        if let Some(name) = committed_string(&text, "best_kernel") {
            match runs.iter().find(|r| r.kernel.to_string() == name) {
                None => {
                    eprintln!("--gate: committed best_kernel `{name}` is not a known kernel");
                    std::process::exit(2);
                }
                Some(recorded) => {
                    let kernel_floor = best.decisions_per_sec * 0.8;
                    if recorded.decisions_per_sec < kernel_floor {
                        eprintln!(
                            "perf gate FAILED: committed best kernel ({name}) served {:.0} \
                             decisions/s, below 80% of the fresh best ({} at {:.0}).\n\
                             The kernel ranking regressed; if intended, regenerate {path}.",
                            recorded.decisions_per_sec, best.kernel, best.decisions_per_sec
                        );
                        std::process::exit(1);
                    }
                    println!(
                        "kernel ranking holds: committed winner {name} at {:.0} decisions/s \
                         vs fresh best {} at {:.0}",
                        recorded.decisions_per_sec, best.kernel, best.decisions_per_sec
                    );
                }
            }
        }
        println!(
            "perf gate passed: best kernel ({}) at {:.0} decisions/s vs committed {:.0} (floor {:.0})",
            best.kernel, best.decisions_per_sec, committed, floor
        );
        return;
    }

    println!(
        "serve benchmark: {sessions} sessions x {decisions} decisions on {} ({cores} cores{}{})",
        sim.host().id(),
        if smoke { ", smoke" } else { "" },
        if faults.is_none() {
            String::new()
        } else {
            ", faults on".to_string()
        }
    );

    // 1, 4 and all-cores shards, skipping requests that clamp to an
    // effective count already measured (on a 1-core box everything
    // collapses to one serial pass; re-running it would only measure
    // noise and suggest a fake speedup).
    let mut shard_counts: Vec<usize> = Vec::new();
    let mut seen_effective: Vec<usize> = Vec::new();
    for requested in [1, 4, cores] {
        let effective = resolve_threads(Some(requested));
        if !seen_effective.contains(&effective) {
            shard_counts.push(requested);
            seen_effective.push(effective);
        }
    }

    let mut runs: Vec<Run> = Vec::new();
    let mut digest: Option<u64> = None;
    for &shards in &shard_counts {
        let config = ServeConfig {
            sessions,
            decisions_per_session: decisions,
            shards: Some(shards),
            record_latency: true,
            faults,
            ..ServeConfig::fleet()
        };
        let start = Instant::now();
        let report = autoscale::serve::serve(&sim, &mix, &config, None).expect("no warm start");
        let wall_s = start.elapsed().as_secs_f64();
        match digest {
            None => digest = Some(report.digest()),
            Some(reference) => assert_eq!(
                report.digest(),
                reference,
                "shard count {shards} changed the decision traces"
            ),
        }
        let total = report.total_decisions();
        let run = Run {
            shards_requested: shards,
            shards_effective: resolve_threads(Some(shards)),
            wall_s,
            decisions_per_sec: total as f64 / wall_s,
            p50_ns: report
                .latency_percentile_ns(50.0)
                .expect("latencies recorded"),
            p99_ns: report
                .latency_percentile_ns(99.0)
                .expect("latencies recorded"),
        };
        println!(
            "  shards {:>2} (effective {:>2}): {:>8.0} decisions/s, decide p50 {:.1} us, p99 {:.1} us ({:.2} s)",
            run.shards_requested,
            run.shards_effective,
            run.decisions_per_sec,
            run.p50_ns as f64 / 1e3,
            run.p99_ns as f64 / 1e3,
            run.wall_s
        );
        if !faults.is_none() {
            println!(
                "    faults: {} faulted requests, {} retries, {} local fallbacks",
                report.total_faulted(),
                report.total_retries(),
                report.total_fallbacks()
            );
        }
        runs.push(run);
    }
    println!("per-session reports bit-identical across shard counts");

    // On a single-core box every requested shard count clamps to the
    // same serial pass, so there is exactly one run and "speedup" has no
    // measurement behind it — report null rather than a fake 1.00x.
    let single_core = runs.len() == 1;
    let speedup = if single_core {
        None
    } else {
        let base = runs[0].decisions_per_sec;
        let best_shards = runs
            .iter()
            .map(|r| r.decisions_per_sec)
            .fold(f64::MIN, f64::max);
        Some(best_shards / base)
    };
    match speedup {
        Some(x) => println!("speedup (best vs 1 shard): {x:.2}x"),
        None => println!("speedup (best vs 1 shard): n/a (single effective shard)"),
    }

    println!("kernel race: {race_sessions} sessions x {race_decisions} decisions, all kernels");
    let kernel_runs = race_kernels(
        &sim,
        &mix,
        race_sessions,
        race_decisions,
        faults,
        if smoke { 1 } else { 2 },
    );
    for r in &kernel_runs {
        println!(
            "  kernel {:>6}: {:>9.0} decisions/s ({:.2} s)",
            r.kernel, r.decisions_per_sec, r.wall_s
        );
    }
    println!("fleet digests bit-identical across kernels");
    let best = best_of(&kernel_runs);
    println!(
        "best kernel: {} at {:.0} decisions/s",
        best.kernel, best.decisions_per_sec
    );

    if smoke {
        println!("smoke run: not writing BENCH_serve.json");
        return;
    }

    let mut entries = String::new();
    for (i, r) in runs.iter().enumerate() {
        entries.push_str(&format!(
            "    {{\"shards_requested\": {}, \"shards_effective\": {}, \"wall_s\": {:.3}, \"decisions_per_sec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
            r.shards_requested,
            r.shards_effective,
            r.wall_s,
            r.decisions_per_sec,
            r.p50_ns,
            r.p99_ns,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    let mut kernel_entries = String::new();
    for (i, r) in kernel_runs.iter().enumerate() {
        kernel_entries.push_str(&format!(
            "      {{\"kernel\": \"{}\", \"wall_s\": {:.3}, \"decisions_per_sec\": {:.1}}}{}\n",
            r.kernel,
            r.wall_s,
            r.decisions_per_sec,
            if i + 1 < kernel_runs.len() { "," } else { "" }
        ));
    }
    let speedup_json = match speedup {
        Some(x) => format!("{x:.3}"),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"sessions\": {sessions},\n  \"decisions_per_session\": {decisions},\n  \"cores\": {cores},\n  \"fleet_digest\": {},\n  \"speedup_best_vs_1\": {speedup_json},\n  \"single_core\": {single_core},\n  \"runs\": [\n{entries}  ],\n  \"kernel_race\": {{\n    \"sessions\": {race_sessions},\n    \"decisions_per_session\": {race_decisions},\n    \"cores\": {cores},\n    \"kernels\": [\n{kernel_entries}    ],\n    \"best_kernel\": \"{}\",\n    \"best_decisions_per_sec\": {:.1}\n  }}\n}}\n",
        digest.expect("at least one run"),
        best.kernel,
        best.decisions_per_sec
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, &json).expect("write BENCH_serve.json");
    println!("wrote {out}");
}
