//! Throughput benchmark for the multi-session decision server.
//!
//! Runs the same serving fleet (Mi8Pro, static-environment scenario mix)
//! at 1 shard, 4 shards and all-cores, verifies the per-session reports
//! are bit-identical across shard counts, and records decisions/second
//! plus p50/p99 wall-clock decision latency for each run. The full run
//! writes `BENCH_serve.json` at the repository root; `--smoke` runs a
//! small fleet and skips the file (the CI-sized check).
//!
//! `--faults PROFILE` runs the fleet under a named fault profile
//! (`lossy-edge`, `chaos`, ...): the shard-invariance assertion still
//! holds — fault schedules are seeded per session — and the summary adds
//! the fleet's fault/retry/fallback counts.

use std::time::Instant;

use autoscale::parallel::{default_threads, resolve_threads};
use autoscale::prelude::*;
use autoscale_sim::FaultProfile;

struct Run {
    shards_requested: usize,
    shards_effective: usize,
    wall_s: f64,
    decisions_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let faults = match args.iter().position(|a| a == "--faults") {
        None => FaultProfile::none(),
        Some(i) => {
            let name = args.get(i + 1).unwrap_or_else(|| {
                eprintln!(
                    "--faults needs a profile name ({})",
                    FaultProfile::NAMES.join("|")
                );
                std::process::exit(2);
            });
            FaultProfile::parse(name).unwrap_or_else(|| {
                eprintln!(
                    "unknown fault profile `{name}` ({})",
                    FaultProfile::NAMES.join("|")
                );
                std::process::exit(2);
            })
        }
    };
    let (sessions, decisions) = if smoke { (4, 50) } else { (32, 400) };

    let sim = Simulator::new(DeviceId::Mi8Pro);
    let mix = ScenarioMix::static_envs();
    let cores = default_threads();
    println!(
        "serve benchmark: {sessions} sessions x {decisions} decisions on {} ({cores} cores{}{})",
        sim.host().id(),
        if smoke { ", smoke" } else { "" },
        if faults.is_none() {
            String::new()
        } else {
            ", faults on".to_string()
        }
    );

    // 1, 4 and all-cores shards, skipping duplicates once clamped (on a
    // 4-core box "4" and "all" are the same run).
    let mut shard_counts: Vec<usize> = Vec::new();
    for requested in [1, 4, cores] {
        if !shard_counts.contains(&requested) {
            shard_counts.push(requested);
        }
    }

    let mut runs: Vec<Run> = Vec::new();
    let mut digest: Option<u64> = None;
    for &shards in &shard_counts {
        let config = ServeConfig {
            sessions,
            decisions_per_session: decisions,
            shards: Some(shards),
            record_latency: true,
            faults,
            ..ServeConfig::fleet()
        };
        let start = Instant::now();
        let report = autoscale::serve::serve(&sim, &mix, &config, None).expect("no warm start");
        let wall_s = start.elapsed().as_secs_f64();
        match digest {
            None => digest = Some(report.digest()),
            Some(reference) => assert_eq!(
                report.digest(),
                reference,
                "shard count {shards} changed the decision traces"
            ),
        }
        let total = report.total_decisions();
        let run = Run {
            shards_requested: shards,
            shards_effective: resolve_threads(Some(shards)),
            wall_s,
            decisions_per_sec: total as f64 / wall_s,
            p50_ns: report
                .latency_percentile_ns(50.0)
                .expect("latencies recorded"),
            p99_ns: report
                .latency_percentile_ns(99.0)
                .expect("latencies recorded"),
        };
        println!(
            "  shards {:>2} (effective {:>2}): {:>8.0} decisions/s, decide p50 {:.1} us, p99 {:.1} us ({:.2} s)",
            run.shards_requested,
            run.shards_effective,
            run.decisions_per_sec,
            run.p50_ns as f64 / 1e3,
            run.p99_ns as f64 / 1e3,
            run.wall_s
        );
        if !faults.is_none() {
            println!(
                "    faults: {} faulted requests, {} retries, {} local fallbacks",
                report.total_faulted(),
                report.total_retries(),
                report.total_fallbacks()
            );
        }
        runs.push(run);
    }
    println!("per-session reports bit-identical across shard counts");

    let base = runs[0].decisions_per_sec;
    let best = runs
        .iter()
        .map(|r| r.decisions_per_sec)
        .fold(f64::MIN, f64::max);
    println!("speedup (best vs 1 shard): {:.2}x", best / base);

    if smoke {
        println!("smoke run: not writing BENCH_serve.json");
        return;
    }

    let mut entries = String::new();
    for (i, r) in runs.iter().enumerate() {
        entries.push_str(&format!(
            "    {{\"shards_requested\": {}, \"shards_effective\": {}, \"wall_s\": {:.3}, \"decisions_per_sec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
            r.shards_requested,
            r.shards_effective,
            r.wall_s,
            r.decisions_per_sec,
            r.p50_ns,
            r.p99_ns,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    let json = format!(
        "{{\n  \"sessions\": {sessions},\n  \"decisions_per_session\": {decisions},\n  \"cores\": {cores},\n  \"fleet_digest\": {},\n  \"speedup_best_vs_1\": {:.3},\n  \"runs\": [\n{entries}  ]\n}}\n",
        digest.expect("at least one run"),
        best / base
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, &json).expect("write BENCH_serve.json");
    println!("wrote {out}");
}
