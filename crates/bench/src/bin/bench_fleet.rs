//! Fleet-scale memory benchmark: dense private Q-tables vs shared-base
//! copy-on-write overlays.
//!
//! A deployed AutoScale host serves many sessions whose Q-tables are
//! mostly identical — every session starts from the same trained policy
//! and each one only rewrites the handful of states its own trace
//! visits. This benchmark quantifies what the copy-on-write backend
//! ([`autoscale_rl::CowQTable`]) buys at fleet scale: it trains one
//! donor policy, then serves the same warm-started fleet twice per size
//! — once with `--qstore dense` semantics (a private table per session)
//! and once with `cow` (one shared base + per-session sparse overlays) —
//! asserting the two fleets are bit-identical before comparing them.
//!
//! For each fleet size (1k, 10k, 100k sessions; 1M behind `--huge`) it
//! records sustained decisions/second, bytes/session from the store
//! accounting ([`autoscale::serve::FleetStoreStats`]), overlay occupancy
//! (written rows per session over the 3072-state table), and the
//! headline ratios: `reduction_x` (dense bytes/session over cow) and
//! `cow_throughput_ratio` (cow decisions/s over dense). The full run
//! asserts the PR's targets — ≥20x memory reduction, ≤15% throughput
//! loss — and writes `BENCH_fleet.json` at the repository root.
//!
//! `--smoke` runs the 1k fleet only, asserts digest equality and a cow
//! bytes/session ceiling, and skips the file (the CI-sized check).
//!
//! `--gate PATH` is the CI perf-regression mode: it reruns the gate
//! fleet and exits non-zero if cow throughput fell below 80% of the
//! committed number or the memory reduction dropped under 20x.
//!
//! With `--features alloc-count` the global allocator is wrapped in a
//! byte counter and each run also reports peak live heap — an
//! allocator-level cross-check of the store accounting (it tracks the
//! *live* fleet, so with sequential shards it bounds one resident
//! session, not the sum).
//!
//! `--openloop` switches the fleet to the open-loop discrete-event core
//! under sustained overload (Poisson arrivals far above the service
//! rate, bounded queues): both backends serve the identical arrival
//! schedules, the reports and traffic accounting are asserted
//! bit-identical, and the summary records the sustained goodput and
//! drop rate the fleet held beside the usual memory numbers.

use std::time::Instant;

use autoscale::experiment;
use autoscale::parallel::default_threads;
use autoscale::prelude::*;
use autoscale::serve::serve;
use autoscale_rl::QStoreKind;

/// A feature-gated counting wrapper over the system allocator. Lives in
/// the binary (the library crates forbid `unsafe`); counting every
/// allocation costs a few percent, which is why it is opt-in.
#[cfg(feature = "alloc-count")]
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    // lint:allow(shared-mutable-hot-state): allocator byte counters are bench diagnostics, printed only — never digested
    static CURRENT: AtomicU64 = AtomicU64::new(0);
    // lint:allow(shared-mutable-hot-state): allocator byte counters are bench diagnostics, printed only — never digested
    static PEAK: AtomicU64 = AtomicU64::new(0);

    struct CountingAllocator;

    fn grow(bytes: usize) {
        let now = CURRENT.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
        PEAK.fetch_max(now, Ordering::Relaxed);
    }

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                grow(layout.size());
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc_zeroed(layout) };
            if !p.is_null() {
                grow(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            CURRENT.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                CURRENT.fetch_sub(layout.size() as u64, Ordering::Relaxed);
                grow(new_size);
            }
            p
        }
    }

    #[global_allocator]
    static COUNTER: CountingAllocator = CountingAllocator;

    /// Restarts peak tracking from the currently live bytes.
    pub fn reset_peak() {
        PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub fn peak_bytes() -> u64 {
        PEAK.load(Ordering::Relaxed)
    }
}

/// Decisions per session: fleet serving is many short sessions, and the
/// memory story is independent of session length.
const DECISIONS: usize = 25;
/// The gate fleet: large enough that the shared base is amortized and
/// the sustained rate is stable, small enough for CI.
const GATE_SESSIONS: usize = 10_000;

struct BackendRun {
    qstore: QStoreKind,
    wall_s: f64,
    decisions_per_sec: f64,
    bytes_per_session: f64,
    overlay_rows_per_session: f64,
    digest: u64,
    peak_alloc_bytes: Option<u64>,
    /// Open-loop traffic accounting; `None` for closed-loop runs.
    traffic: Option<FleetTraffic>,
}

/// The open-loop fleet configuration `--openloop` serves: deliberate
/// overload, so the recorded goodput is what the devices sustain, not
/// what the arrival rate happens to be.
fn openloop_overload() -> OpenLoopConfig {
    OpenLoopConfig {
        queue_capacity: 8,
        admission: AdmissionPolicy::Degrade,
        ..OpenLoopConfig::poisson(1_000.0, 250.0)
    }
}

fn run_fleet(
    sim: &Simulator,
    mix: &ScenarioMix,
    warm: &autoscale_rl::QLearningAgent,
    sessions: usize,
    qstore: QStoreKind,
    openloop: Option<OpenLoopConfig>,
) -> BackendRun {
    let config = ServeConfig {
        sessions,
        decisions_per_session: DECISIONS,
        shards: None,
        base_seed: 0xf1ee7,
        qstore,
        openloop,
        ..ServeConfig::fleet()
    };
    #[cfg(feature = "alloc-count")]
    alloc_count::reset_peak();
    let start = Instant::now();
    let report = serve(sim, mix, &config, Some(warm)).expect("warm fleets never error");
    let wall_s = start.elapsed().as_secs_f64();
    #[cfg(feature = "alloc-count")]
    let peak_alloc_bytes = Some(alloc_count::peak_bytes());
    #[cfg(not(feature = "alloc-count"))]
    let peak_alloc_bytes = None;
    BackendRun {
        qstore,
        wall_s,
        decisions_per_sec: report.total_decisions() as f64 / wall_s,
        bytes_per_session: report.store.bytes_per_session(sessions),
        overlay_rows_per_session: report.store.overlay_rows as f64 / sessions as f64,
        digest: report.digest(),
        peak_alloc_bytes,
        traffic: report.traffic,
    }
}

fn print_run(r: &BackendRun, states: usize) {
    let occupancy = r.overlay_rows_per_session / states as f64 * 100.0;
    println!(
        "    {:<5} {:>9.0} decisions/s, {:>9.1} KiB/session, {:>5.1} overlay rows/session ({:.2}% of {} states), {:.2} s{}",
        r.qstore.to_string(),
        r.decisions_per_sec,
        r.bytes_per_session / 1024.0,
        r.overlay_rows_per_session,
        occupancy,
        states,
        r.wall_s,
        match r.peak_alloc_bytes {
            Some(b) => format!(", peak heap {:.1} MiB", b as f64 / (1024.0 * 1024.0)),
            None => String::new(),
        }
    );
}

/// Extracts a committed numeric field from `BENCH_fleet.json` without a
/// JSON parser dependency.
fn committed_number(text: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let at = text.find(&marker)?;
    let rest = text[at + marker.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let huge = args.iter().any(|a| a == "--huge");
    let openloop = args
        .iter()
        .any(|a| a == "--openloop")
        .then(openloop_overload);
    let gate = args.iter().position(|a| a == "--gate").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--gate needs the path of the committed BENCH_fleet.json");
            std::process::exit(2);
        })
    });

    let sim = Simulator::new(DeviceId::Mi8Pro);
    let mix = ScenarioMix::static_envs();
    let cores = default_threads();
    let states = StateSpace::paper().len();

    // One donor policy, trained once: every fleet below — dense or cow —
    // warm-starts from it, so the backends are comparable byte for byte.
    println!("training the donor policy (Mi8Pro, static environments)...");
    let donor = experiment::train_engine(
        &sim,
        &[Workload::MobileNetV1, Workload::InceptionV1],
        &EnvironmentId::STATIC,
        40,
        EngineConfig::paper(),
        17,
    );
    let warm = donor.agent();

    if let Some(path) = gate {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("--gate: cannot read {path}: {e}");
            std::process::exit(2);
        });
        let committed_dps = committed_number(&text, "gate_cow_decisions_per_sec");
        let committed_reduction = committed_number(&text, "gate_reduction_x");
        let (Some(committed_dps), Some(committed_reduction)) = (committed_dps, committed_reduction)
        else {
            eprintln!("--gate: {path} has no gate_cow_decisions_per_sec / gate_reduction_x (regenerate it with `cargo run --release -p autoscale-bench --bin bench_fleet`)");
            std::process::exit(2);
        };
        // The gate measures the committed closed-loop numbers; --openloop
        // does not apply to it.
        let dense = run_fleet(&sim, &mix, warm, GATE_SESSIONS, QStoreKind::Dense, None);
        let cow = run_fleet(&sim, &mix, warm, GATE_SESSIONS, QStoreKind::Cow, None);
        assert_eq!(
            cow.digest, dense.digest,
            "cow fleet diverged from the dense fleet"
        );
        print_run(&dense, states);
        print_run(&cow, states);
        let reduction = dense.bytes_per_session / cow.bytes_per_session;
        let floor = committed_dps * 0.8;
        let mut failed = false;
        if cow.decisions_per_sec < floor {
            eprintln!(
                "perf gate FAILED: cow fleet served {:.0} decisions/s, below 80% of the \
                 committed {committed_dps:.0} (floor {floor:.0}).",
                cow.decisions_per_sec
            );
            failed = true;
        }
        if reduction < 20.0 {
            eprintln!(
                "perf gate FAILED: cow bytes/session reduction is {reduction:.1}x, \
                 below the 20x target (committed {committed_reduction:.1}x).",
            );
            failed = true;
        }
        if failed {
            eprintln!(
                "If this regression is intended, regenerate the baseline with\n\
                 `cargo run --release -p autoscale-bench --bin bench_fleet` and commit {path}."
            );
            std::process::exit(1);
        }
        println!(
            "perf gate passed: cow at {:.0} decisions/s (committed {committed_dps:.0}, floor \
             {floor:.0}), {reduction:.1}x bytes/session reduction",
            cow.decisions_per_sec
        );
        return;
    }

    let sizes: Vec<usize> = if smoke {
        vec![1_000]
    } else if huge {
        vec![1_000, 10_000, 100_000, 1_000_000]
    } else {
        vec![1_000, 10_000, 100_000]
    };
    println!(
        "fleet benchmark: {DECISIONS} decisions/session on {} ({cores} cores{})",
        sim.host().id(),
        if smoke { ", smoke" } else { "" }
    );

    struct SizeResult {
        sessions: usize,
        dense: BackendRun,
        cow: BackendRun,
        reduction_x: f64,
        cow_throughput_ratio: f64,
    }
    let mut results: Vec<SizeResult> = Vec::new();
    for &sessions in &sizes {
        println!("  {sessions} sessions:");
        let dense = run_fleet(&sim, &mix, warm, sessions, QStoreKind::Dense, openloop);
        let cow = run_fleet(&sim, &mix, warm, sessions, QStoreKind::Cow, openloop);
        assert_eq!(
            cow.digest, dense.digest,
            "cow fleet diverged from the dense fleet at {sessions} sessions"
        );
        assert_eq!(
            cow.traffic, dense.traffic,
            "cow fleet's open-loop traffic diverged at {sessions} sessions"
        );
        print_run(&dense, states);
        print_run(&cow, states);
        if let Some(traffic) = &dense.traffic {
            println!(
                "    open-loop: offered {:.0} req/s/session, sustained goodput {:.1} req/s/session, \
                 {:.1}% dropped, queue depth p99 {}",
                traffic.offered_load_hz(),
                traffic.goodput_hz(),
                traffic.drop_rate() * 100.0,
                traffic.queue_depth_percentile(99.0)
            );
        }
        let reduction_x = dense.bytes_per_session / cow.bytes_per_session;
        let cow_throughput_ratio = cow.decisions_per_sec / dense.decisions_per_sec;
        println!(
            "    cow vs dense: {reduction_x:.1}x less memory/session, {:.0}% throughput",
            cow_throughput_ratio * 100.0
        );
        results.push(SizeResult {
            sessions,
            dense,
            cow,
            reduction_x,
            cow_throughput_ratio,
        });
    }
    println!("fleet digests bit-identical across backends at every size");

    if smoke {
        // The CI-sized contract: the overlays stay sparse. 128 KiB is
        // ~14x headroom over the observed few-KiB overlays while still
        // an order of magnitude under the ~1.8 MiB dense table.
        let cow = &results[0].cow;
        assert!(
            cow.bytes_per_session < 128.0 * 1024.0,
            "cow bytes/session {:.0} exceeds the 128 KiB smoke ceiling",
            cow.bytes_per_session
        );
        println!("smoke run: not writing BENCH_fleet.json");
        return;
    }

    if openloop.is_some() {
        // Open-loop runs serve a different (overload-shaped) workload than
        // the committed closed-loop numbers, so the headline targets and
        // the committed JSON don't apply to them.
        println!("open-loop run: not writing BENCH_fleet.json");
        return;
    }

    // The PR's headline targets, asserted where the base is amortized
    // (the smallest fleet pays the shared table across only 1k sessions).
    for r in &results {
        if r.sessions >= 10_000 {
            assert!(
                r.reduction_x >= 20.0,
                "{} sessions: only {:.1}x bytes/session reduction (target ≥20x)",
                r.sessions,
                r.reduction_x
            );
            assert!(
                r.cow_throughput_ratio >= 0.85,
                "{} sessions: cow throughput fell to {:.0}% of dense (target ≥85%)",
                r.sessions,
                r.cow_throughput_ratio * 100.0
            );
        }
    }

    let gate_entry = results
        .iter()
        .find(|r| r.sessions == GATE_SESSIONS)
        .expect("the sweep includes the gate size");
    let mut entries = String::new();
    for (i, r) in results.iter().enumerate() {
        let backend = |b: &BackendRun| {
            format!(
                "{{\"wall_s\": {:.3}, \"decisions_per_sec\": {:.1}, \"bytes_per_session\": {:.1}, \"overlay_rows_per_session\": {:.2}, \"peak_alloc_bytes\": {}}}",
                b.wall_s,
                b.decisions_per_sec,
                b.bytes_per_session,
                b.overlay_rows_per_session,
                match b.peak_alloc_bytes {
                    Some(bytes) => bytes.to_string(),
                    None => "null".to_string(),
                }
            )
        };
        entries.push_str(&format!(
            "    {{\"sessions\": {}, \"fleet_digest\": {}, \"dense\": {}, \"cow\": {}, \"reduction_x\": {:.1}, \"cow_throughput_ratio\": {:.3}}}{}\n",
            r.sessions,
            r.dense.digest,
            backend(&r.dense),
            backend(&r.cow),
            r.reduction_x,
            r.cow_throughput_ratio,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    let json = format!(
        "{{\n  \"decisions_per_session\": {DECISIONS},\n  \"cores\": {cores},\n  \"states\": {states},\n  \"sizes\": [\n{entries}  ],\n  \"gate_sessions\": {GATE_SESSIONS},\n  \"gate_cow_decisions_per_sec\": {:.1},\n  \"gate_reduction_x\": {:.1}\n}}\n",
        gate_entry.cow.decisions_per_sec, gate_entry.reduction_x
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(out, &json).expect("write BENCH_fleet.json");
    println!("wrote {out}");
}
