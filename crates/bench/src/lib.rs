//! Shared harness code for the per-figure experiment binaries.
//!
//! Every figure and table of the paper's evaluation has a binary in
//! `src/bin` (`fig2` … `fig14`, `tab_states`, `tab_devices`,
//! `tab_workloads`, `tab_overhead`) that regenerates the corresponding
//! rows/series. This library holds what they share: scheduler
//! construction, suite execution, aggregation and table printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use autoscale::experiment;
use autoscale::parallel::Cell;
use autoscale::prelude::*;
use autoscale::reward::RewardConfig;
use autoscale::scheduler::{
    AutoScaleScheduler, FixedScheduler, OracleScheduler, Scheduler, SchedulerKind,
};

/// Default per-episode measurement length (inference runs).
pub const RUNS: usize = 100;
/// Default warm-up runs for learning schedulers.
pub const WARMUP: usize = 100;
/// Default per-(workload, environment) training runs, mirroring the
/// paper's "100 times for each NN in each runtime variance-related state".
pub const TRAIN_RUNS: usize = 30;

/// A closure mapping workloads to their reward configuration under an
/// engine configuration (needed in many constructor signatures).
pub fn reward_fn(
    config: EngineConfig,
) -> impl Fn(Workload) -> RewardConfig + Send + Clone + 'static {
    move |w| config.reward_for(w)
}

/// Builds one of the non-learning comparison schedulers.
pub fn build_baseline(
    kind: SchedulerKind,
    sim: &Simulator,
    config: EngineConfig,
) -> Box<dyn autoscale::scheduler::Scheduler> {
    match kind {
        SchedulerKind::EdgeCpuFp32 => Box::new(FixedScheduler::edge_cpu_fp32(sim)),
        SchedulerKind::EdgeBest => Box::new(FixedScheduler::edge_best(sim, reward_fn(config))),
        SchedulerKind::Cloud => Box::new(FixedScheduler::cloud(sim, reward_fn(config))),
        SchedulerKind::ConnectedEdge => {
            Box::new(FixedScheduler::connected_edge(sim, reward_fn(config)))
        }
        SchedulerKind::Oracle => Box::new(OracleScheduler::new(sim, reward_fn(config))),
        other => panic!("{other} is not a fixed baseline"),
    }
}

/// Trains an AutoScale engine with leave-one-out cross-validation and
/// wraps it as an evaluation scheduler (greedy serving + online learning,
/// the paper's deployment mode).
pub fn autoscale_for(
    sim: &Simulator,
    held_out: Workload,
    environments: &[EnvironmentId],
    config: EngineConfig,
    seed: u64,
) -> AutoScaleScheduler {
    let engine =
        experiment::train_leave_one_out(sim, held_out, environments, TRAIN_RUNS, config, seed);
    AutoScaleScheduler::new(engine, false)
}

/// (report, baseline-of-the-same-cell) pairs in recording order, the
/// result type of one figure-sweep cell.
pub type CellReports = Vec<(EpisodeReport, EpisodeReport)>;

/// The Figure 9 sweep grid: one cell per (phone, workload), device-major.
pub fn fig9_specs() -> Vec<(DeviceId, Workload)> {
    DeviceId::PHONES
        .iter()
        .flat_map(|&d| Workload::ALL.iter().map(move |&w| (d, w)))
        .collect()
}

/// Runs one Figure 9 cell: leave-one-out-trained AutoScale plus the four
/// fixed baselines, Opt, MOSAIC and NeuroSurgeon across the five static
/// environments. Shared between the `fig9` binary and the timing harness
/// (`bench_harness`) so both measure exactly the same work.
pub fn fig9_cell(cell: &Cell<'_, (DeviceId, Workload)>) -> CellReports {
    let (device, w) = *cell.spec;
    let config = EngineConfig::paper();
    let envs = EnvironmentId::STATIC;
    let ev = Evaluator::new(Simulator::new(device), config);
    let oracle = OracleScheduler::new(ev.sim(), reward_fn(config));
    let mut rng = autoscale::seeded_rng(cell.seed);

    // Leave-one-out: AutoScale's Q-table is trained on the other nine
    // workloads (Section V-C), then keeps learning online.
    let mut autoscale_sched = autoscale_for(ev.sim(), w, &envs, config, 42);
    let mut prior_rng = autoscale::seeded_rng(43);
    let qos = config.scenario_for(w).qos_ms();
    let mut others: Vec<Box<dyn Scheduler>> = vec![
        build_baseline(SchedulerKind::EdgeBest, ev.sim(), config),
        build_baseline(SchedulerKind::Cloud, ev.sim(), config),
        build_baseline(SchedulerKind::ConnectedEdge, ev.sim(), config),
        build_baseline(SchedulerKind::Oracle, ev.sim(), config),
        Box::new(experiment::build_mosaic(ev.sim(), qos, &mut prior_rng)),
        Box::new(experiment::build_neurosurgeon(ev.sim(), &mut prior_rng)),
    ];
    let mut reports = Vec::new();
    for env in envs {
        let mut base = build_baseline(SchedulerKind::EdgeCpuFp32, ev.sim(), config);
        let baseline = ev.run(base.as_mut(), w, env, 0, RUNS, None, &mut rng);
        reports.push((baseline.clone(), baseline.clone()));
        let rep = ev.run(
            &mut autoscale_sched,
            w,
            env,
            WARMUP,
            RUNS,
            Some(&oracle),
            &mut rng,
        );
        reports.push((rep, baseline.clone()));
        for s in others.iter_mut() {
            let rep = ev.run(s.as_mut(), w, env, 0, RUNS, None, &mut rng);
            reports.push((rep, baseline.clone()));
        }
    }
    reports
}

/// Mean of a slice.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Geometric mean of a slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Accumulates per-scheduler averages across (workload, environment)
/// cells, normalizing PPW to a baseline scheduler cell-by-cell as the
/// paper's figures do.
#[derive(Debug, Default)]
pub struct SuiteAccumulator {
    rows: Vec<SchedulerRow>,
}

/// One scheduler's accumulated cells: name, normalized PPW, QoS-violation
/// ratio and oracle-match ratio per cell.
type SchedulerRow = (String, Vec<f64>, Vec<f64>, Vec<f64>);

impl SuiteAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        SuiteAccumulator::default()
    }

    /// Records one cell: a scheduler's report plus the baseline report of
    /// the same cell.
    pub fn record(&mut self, report: &EpisodeReport, baseline: &EpisodeReport) {
        let entry = match self.rows.iter_mut().find(|r| r.0 == report.scheduler) {
            Some(e) => e,
            None => {
                self.rows
                    .push((report.scheduler.clone(), Vec::new(), Vec::new(), Vec::new()));
                self.rows.last_mut().expect("just pushed")
            }
        };
        entry.1.push(report.normalized_ppw(baseline));
        entry.2.push(report.qos_violation_ratio);
        if let Some(m) = report.oracle_match_ratio {
            entry.3.push(m);
        }
    }

    /// Prints the aggregate table: normalized PPW (mean across cells),
    /// QoS-violation ratio, and oracle-match ratio where tracked.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        println!(
            "{:<18} {:>14} {:>14} {:>12}",
            "scheduler", "PPW (norm)", "QoS viol.", "opt match"
        );
        for (name, ppw, qos, opt) in &self.rows {
            let opt_s = if opt.is_empty() {
                "-".to_string()
            } else {
                format!("{:.1}%", mean(opt) * 100.0)
            };
            println!(
                "{:<18} {:>13.2}x {:>13.1}% {:>12}",
                name,
                mean(ppw),
                mean(qos) * 100.0,
                opt_s
            );
        }
    }

    /// The mean normalized PPW of a scheduler, if recorded.
    pub fn mean_ppw(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.0 == name).map(|r| mean(&r.1))
    }

    /// The mean QoS-violation ratio of a scheduler, if recorded.
    pub fn mean_qos(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.0 == name).map(|r| mean(&r.2))
    }

    /// The mean oracle-match ratio of a scheduler, if recorded.
    pub fn mean_opt_match(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.0 == name).and_then(|r| {
            if r.3.is_empty() {
                None
            } else {
                Some(mean(&r.3))
            }
        })
    }
}

/// Prints a labelled section header for figure output.
pub fn section(title: &str) {
    println!("\n--- {title} ---");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_groups_by_scheduler() {
        let mk = |name: &str, eff: f64, qos: f64| EpisodeReport {
            scheduler: name.into(),
            workload: Workload::MobileNetV1,
            environment: EnvironmentId::S1,
            runs: 1,
            mean_energy_mj: 1.0,
            mean_efficiency_ipj: eff,
            mean_latency_ms: 1.0,
            qos_violation_ratio: qos,
            accuracy_violation_ratio: 0.0,
            placement_shares: [1.0, 0.0, 0.0],
            oracle_match_ratio: None,
        };
        let base = mk("Edge (CPU FP32)", 10.0, 0.5);
        let mut acc = SuiteAccumulator::new();
        acc.record(&mk("AutoScale", 90.0, 0.0), &base);
        acc.record(&mk("AutoScale", 110.0, 0.1), &base);
        acc.record(&base.clone(), &base);
        assert!((acc.mean_ppw("AutoScale").unwrap() - 10.0).abs() < 1e-12);
        assert!((acc.mean_qos("AutoScale").unwrap() - 0.05).abs() < 1e-12);
        assert_eq!(acc.mean_ppw("Edge (CPU FP32)"), Some(1.0));
        assert_eq!(acc.mean_opt_match("AutoScale"), None);
    }
}
